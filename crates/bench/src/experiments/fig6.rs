//! Figure 6 — text-similarity estimation on a 20-Newsgroups-like corpus.
//!
//! Documents are represented as unit-norm TF-IDF vectors over unigrams and bigrams;
//! the experiment estimates the cosine similarity (= inner product of the normalized
//! vectors) for many document pairs at several storage budgets and reports the average
//! error, (a) over all document pairs and (b) restricted to pairs where both documents
//! are longer than 700 words — the regime where the paper shows WMH clearly winning
//! and unweighted MinHash degrading.

use super::Scale;
use crate::report::{fmt_f64, TextTable};
use crate::runner::{default_threads, parallel_map};
use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_core::traits::Sketcher;
use ipsketch_data::text::CorpusConfig;
use ipsketch_data::tfidf::{TfIdfConfig, TfIdfVectorizer};
use ipsketch_hash::rng::Xoshiro256PlusPlus;

/// Configuration of the Figure-6 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Config {
    /// The corpus shape.
    pub corpus: CorpusConfig,
    /// Storage budgets (x-axis).
    pub storage_sizes: Vec<usize>,
    /// The methods to compare.
    pub methods: Vec<SketchMethod>,
    /// Maximum number of document pairs to evaluate per panel (the paper evaluates all
    /// ~200k pairs of its 700 documents; `Quick` subsamples).
    pub max_pairs: usize,
    /// Word-count threshold for the "long documents" panel (paper: 700).
    pub long_document_words: usize,
    /// Base random seed.
    pub seed: u64,
}

impl Fig6Config {
    /// The configuration for a given scale.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self {
                corpus: CorpusConfig::default(),
                storage_sizes: vec![100, 200, 300, 400],
                methods: SketchMethod::paper_baselines().to_vec(),
                max_pairs: usize::MAX,
                long_document_words: 700,
                seed: 0xF166,
            },
            Scale::Quick => Self {
                corpus: CorpusConfig {
                    documents: 120,
                    vocabulary: 3_000,
                    topics: 8,
                    ..CorpusConfig::default()
                },
                storage_sizes: vec![100, 400],
                methods: SketchMethod::paper_baselines().to_vec(),
                max_pairs: 1_500,
                long_document_words: 700,
                seed: 0xF166,
            },
        }
    }
}

/// One measured series point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Cell {
    /// Which panel: `false` = all documents, `true` = only long documents.
    pub long_documents_only: bool,
    /// Storage budget.
    pub storage: usize,
    /// Method.
    pub method: SketchMethod,
    /// Average scaled estimation error over the evaluated pairs.
    pub mean_error: f64,
    /// Number of evaluated pairs.
    pub pairs: usize,
}

/// Runs the Figure-6 experiment.
#[must_use]
pub fn run(config: &Fig6Config) -> Vec<Fig6Cell> {
    // Build the corpus and its TF-IDF vectors once.
    let corpus = config
        .corpus
        .generate(config.seed)
        .expect("corpus configuration is valid");
    let tokenized: Vec<Vec<String>> = corpus.documents.iter().map(|d| d.tokens.clone()).collect();
    let vectorizer = TfIdfVectorizer::fit(&tokenized, TfIdfConfig::default())
        .expect("generated corpora have non-empty vocabularies");
    let vectors = vectorizer.vectorize_all(&tokenized);
    let lengths: Vec<usize> = corpus.documents.iter().map(|d| d.len()).collect();

    // Candidate pairs per panel.
    let all_pairs = sample_pairs(vectors.len(), config.max_pairs, config.seed, |_, _| true);
    let long_pairs = sample_pairs(vectors.len(), config.max_pairs, config.seed ^ 1, |i, j| {
        lengths[i] > config.long_document_words && lengths[j] > config.long_document_words
    });

    let mut items = Vec::new();
    for &(long_only, pairs) in &[(false, &all_pairs), (true, &long_pairs)] {
        for &storage in &config.storage_sizes {
            for &method in &config.methods {
                items.push((long_only, pairs.clone(), storage, method));
            }
        }
    }
    parallel_map(
        &items,
        default_threads(),
        |(long_only, pairs, storage, method)| {
            let sketcher = AnySketcher::for_budget(*method, *storage as f64, config.seed ^ 0xD0C)
                .expect("storage budgets fit all methods");
            // Sketch each referenced document once, then estimate all pairs from the cache.
            let mut doc_ids: Vec<usize> = pairs.iter().flat_map(|&(i, j)| [i, j]).collect();
            doc_ids.sort_unstable();
            doc_ids.dedup();
            let sketches: std::collections::HashMap<usize, _> = doc_ids
                .iter()
                .filter_map(|&i| sketcher.sketch(&vectors[i]).ok().map(|s| (i, s)))
                .collect();
            let mut total = 0.0;
            let mut count = 0usize;
            for &(i, j) in pairs.iter() {
                let (Some(sa), Some(sb)) = (sketches.get(&i), sketches.get(&j)) else {
                    continue; // skip degenerate (empty) documents
                };
                let estimate = sketcher
                    .estimate_inner_product(sa, sb)
                    .expect("sketches come from the same sketcher");
                let exact = ipsketch_vector::inner_product(&vectors[i], &vectors[j]);
                total += ipsketch_vector::scaled_absolute_error(
                    estimate,
                    exact,
                    vectors[i].norm(),
                    vectors[j].norm(),
                );
                count += 1;
            }
            Fig6Cell {
                long_documents_only: *long_only,
                storage: *storage,
                method: *method,
                mean_error: if count == 0 {
                    0.0
                } else {
                    total / count as f64
                },
                pairs: count,
            }
        },
    )
}

/// Samples up to `max_pairs` distinct document pairs satisfying `filter`, or all of
/// them when `max_pairs` is large enough.
fn sample_pairs<F>(documents: usize, max_pairs: usize, seed: u64, filter: F) -> Vec<(usize, usize)>
where
    F: Fn(usize, usize) -> bool,
{
    let mut all: Vec<(usize, usize)> = Vec::new();
    for i in 0..documents {
        for j in (i + 1)..documents {
            if filter(i, j) {
                all.push((i, j));
            }
        }
    }
    if all.len() <= max_pairs {
        return all;
    }
    let mut rng = Xoshiro256PlusPlus::from_seed_and_stream(seed, 0x9A12);
    rng.shuffle(&mut all);
    all.truncate(max_pairs);
    all
}

/// Formats the two panels as text tables (one row per storage size, one column per
/// method), mirroring Figure 6.
#[must_use]
pub fn format(config: &Fig6Config, cells: &[Fig6Cell]) -> String {
    let mut out = String::new();
    for (title, long_only) in [
        ("Figure 6(a) — all documents", false),
        ("Figure 6(b) — documents > 700 words", true),
    ] {
        let pairs = cells
            .iter()
            .find(|c| c.long_documents_only == long_only)
            .map_or(0, |c| c.pairs);
        out.push_str(&format!(
            "{title} (average scaled error over {pairs} pairs)\n"
        ));
        let mut header = vec!["storage".to_string()];
        header.extend(config.methods.iter().map(|m| m.label().to_string()));
        let mut table = TextTable::new(header);
        for &storage in &config.storage_sizes {
            let mut row = vec![storage.to_string()];
            for &method in &config.methods {
                let cell = cells
                    .iter()
                    .find(|c| {
                        c.long_documents_only == long_only
                            && c.storage == storage
                            && c.method == method
                    })
                    .expect("cell exists for every configuration");
                row.push(fmt_f64(cell.mean_error));
            }
            table.push_row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Converts the cells to a flat CSV-ready table.
#[must_use]
pub fn to_table(cells: &[Fig6Cell]) -> TextTable {
    let mut table = TextTable::new(["panel", "storage", "method", "mean_error", "pairs"]);
    for cell in cells {
        table.push_row([
            if cell.long_documents_only {
                "long"
            } else {
                "all"
            }
            .to_string(),
            cell.storage.to_string(),
            cell.method.label().to_string(),
            format!("{}", cell.mean_error),
            cell.pairs.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig6Config {
        Fig6Config {
            corpus: CorpusConfig {
                documents: 60,
                vocabulary: 1_500,
                topics: 5,
                ..CorpusConfig::default()
            },
            storage_sizes: vec![100, 400],
            methods: SketchMethod::paper_baselines().to_vec(),
            max_pairs: 300,
            long_document_words: 700,
            seed: 3,
        }
    }

    #[test]
    fn produces_cells_for_both_panels() {
        let config = tiny_config();
        let cells = run(&config);
        assert_eq!(cells.len(), 2 * 2 * 5);
        assert!(cells
            .iter()
            .all(|c| c.mean_error.is_finite() && c.mean_error >= 0.0));
        // The all-documents panel evaluates the requested number of pairs.
        let all_panel = cells.iter().find(|c| !c.long_documents_only).unwrap();
        assert!(all_panel.pairs > 0 && all_panel.pairs <= 300);
    }

    #[test]
    fn sampling_based_methods_beat_linear_sketches_on_tfidf_vectors() {
        // The paper: "linear projection sketches have poor performance for small
        // sketches" on this workload while sampling-based sketches do well.
        let config = tiny_config();
        let cells = run(&config);
        let get = |method: SketchMethod| {
            cells
                .iter()
                .find(|c| !c.long_documents_only && c.storage == 100 && c.method == method)
                .unwrap()
                .mean_error
        };
        let wmh = get(SketchMethod::WeightedMinHash);
        let jl = get(SketchMethod::Jl);
        assert!(
            wmh < jl,
            "WMH ({wmh}) should beat JL ({jl}) on sparse TF-IDF vectors at storage 100"
        );
    }

    #[test]
    fn error_decreases_with_storage_for_wmh() {
        let config = tiny_config();
        let cells = run(&config);
        let get = |storage: usize| {
            cells
                .iter()
                .find(|c| {
                    !c.long_documents_only
                        && c.storage == storage
                        && c.method == SketchMethod::WeightedMinHash
                })
                .unwrap()
                .mean_error
        };
        assert!(
            get(400) <= get(100) * 1.2,
            "error at 400 ({}) should not exceed error at 100 ({})",
            get(400),
            get(100)
        );
    }

    #[test]
    fn pair_sampling_respects_filter_and_limit() {
        let pairs = sample_pairs(20, 50, 1, |i, j| i % 2 == 0 && j % 2 == 0);
        assert!(pairs.len() <= 50);
        assert!(pairs
            .iter()
            .all(|&(i, j)| i % 2 == 0 && j % 2 == 0 && i < j));
        let all = sample_pairs(10, usize::MAX, 1, |_, _| true);
        assert_eq!(all.len(), 45);
    }

    #[test]
    fn formatting_mentions_both_panels() {
        let config = tiny_config();
        let cells = run(&config);
        let text = format(&config, &cells);
        assert!(text.contains("all documents"));
        assert!(text.contains("700 words"));
        assert_eq!(to_table(&cells).len(), cells.len());
    }
}
