//! Ablation A3 — effect of the hash family on MinHash / Weighted MinHash accuracy.
//!
//! The paper uses a 2-wise independent Carter–Wegman hash over a 31-bit prime
//! (Section 5, "Choice of Hash Function") and notes that idealized fully random hashing
//! is assumed by the analysis.  This experiment runs unweighted MinHash with every hash
//! family implemented in `ipsketch-hash` (31-bit and 61-bit Carter–Wegman, SplitMix64,
//! tabulation, multiply-shift) on the same workload and reports the mean error per
//! family — empirically confirming that the choice has little effect, i.e. the cheap
//! 2-wise independent hash is adequate in practice.

use super::Scale;
use crate::report::{fmt_f64, TextTable};
use ipsketch_core::minhash::MinHasher;
use ipsketch_core::traits::Sketcher;
use ipsketch_data::SyntheticPairConfig;
use ipsketch_hash::family::HashFamilyKind;
use ipsketch_hash::mix::mix2;
use ipsketch_vector::{inner_product, scaled_absolute_error};

/// Configuration of the hash-family ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct HashSweepConfig {
    /// Number of MinHash samples.
    pub samples: usize,
    /// Number of trials per family.
    pub trials: usize,
    /// Synthetic data parameters (outliers disabled — MinHash assumes bounded entries).
    pub data: SyntheticPairConfig,
    /// Base random seed.
    pub seed: u64,
}

impl HashSweepConfig {
    /// The configuration for a given scale.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        let data = SyntheticPairConfig {
            outlier_fraction: 0.0,
            overlap: 0.2,
            ..match scale {
                Scale::Paper => SyntheticPairConfig::default(),
                Scale::Quick => SyntheticPairConfig {
                    dimension: 4_000,
                    nonzeros: 800,
                    ..SyntheticPairConfig::default()
                },
            }
        };
        Self {
            samples: 256,
            trials: if scale == Scale::Paper { 20 } else { 6 },
            data,
            seed: 0x4A5E,
        }
    }
}

/// One row of the ablation: a hash family and its mean error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HashSweepRow {
    /// The hash family.
    pub family: HashFamilyKind,
    /// Mean scaled error over the trials.
    pub mean_error: f64,
}

/// Runs the ablation.
#[must_use]
pub fn run(config: &HashSweepConfig) -> Vec<HashSweepRow> {
    HashFamilyKind::all()
        .into_iter()
        .map(|family| {
            let mut total = 0.0;
            for trial in 0..config.trials {
                let seed = mix2(config.seed, trial as u64);
                let pair = config.data.generate(seed).expect("valid configuration");
                let sketcher =
                    MinHasher::with_hash_kind(config.samples, seed, family).expect("samples >= 1");
                let sa = sketcher.sketch(&pair.a).expect("sketchable");
                let sb = sketcher.sketch(&pair.b).expect("sketchable");
                let estimate = sketcher
                    .estimate_inner_product(&sa, &sb)
                    .expect("compatible");
                total += scaled_absolute_error(
                    estimate,
                    inner_product(&pair.a, &pair.b),
                    pair.a.norm(),
                    pair.b.norm(),
                );
            }
            HashSweepRow {
                family,
                mean_error: total / config.trials as f64,
            }
        })
        .collect()
}

/// Formats the ablation rows.
#[must_use]
pub fn format(config: &HashSweepConfig, rows: &[HashSweepRow]) -> String {
    let mut out = format!(
        "Ablation — MinHash error by hash family (m = {}, {} trials)\n",
        config.samples, config.trials
    );
    let mut table = TextTable::new(["hash family", "mean error"]);
    for row in rows {
        table.push_row([row.family.label().to_string(), fmt_f64(row.mean_error)]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_family_and_errors_are_comparable() {
        let config = HashSweepConfig {
            trials: 4,
            ..HashSweepConfig::for_scale(Scale::Quick)
        };
        let rows = run(&config);
        assert_eq!(rows.len(), HashFamilyKind::all().len());
        let min = rows
            .iter()
            .map(|r| r.mean_error)
            .fold(f64::INFINITY, f64::min);
        let max = rows.iter().map(|r| r.mean_error).fold(0.0, f64::max);
        assert!(min > 0.0);
        // All practical hash families should land within a small factor of each other.
        assert!(
            max < 3.0 * min,
            "hash families disagree too much: min {min}, max {max}"
        );
    }

    #[test]
    fn formatting_lists_every_family() {
        let config = HashSweepConfig {
            trials: 2,
            ..HashSweepConfig::for_scale(Scale::Quick)
        };
        let rows = run(&config);
        let text = format(&config, &rows);
        for family in HashFamilyKind::all() {
            assert!(text.contains(family.label()));
        }
    }
}
