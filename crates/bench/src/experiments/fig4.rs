//! Figure 4 — inner-product estimation error on synthetic data.
//!
//! For each overlap ratio (the paper's subplots (a)–(d): 1%, 5%, 10%, 50%), each
//! storage budget and each method, the experiment generates fresh synthetic vector
//! pairs (Section 5.1 parameters), sketches them, and reports the average scaled error
//! over the trials — the series plotted in Figure 4.

use super::{sketched_error, Scale};
use crate::report::{fmt_f64, TextTable};
use crate::runner::{default_threads, parallel_map};
use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_data::SyntheticPairConfig;
use ipsketch_hash::mix::mix3;

/// Configuration of the Figure-4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Config {
    /// Overlap ratios, one per subplot (paper: 0.01, 0.05, 0.10, 0.50).
    pub overlaps: Vec<f64>,
    /// Storage budgets in 64-bit-double equivalents (x-axis of the plots).
    pub storage_sizes: Vec<usize>,
    /// Number of independent trials per configuration (paper: 10).
    pub trials: usize,
    /// The methods to compare.
    pub methods: Vec<SketchMethod>,
    /// The synthetic data parameters (dimension, non-zeros, outliers).
    pub data: SyntheticPairConfig,
    /// Base random seed.
    pub seed: u64,
}

impl Fig4Config {
    /// The configuration for a given scale: `Paper` uses the paper's parameters,
    /// `Quick` shrinks the vectors and trial count so the run finishes in seconds.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self {
                overlaps: vec![0.01, 0.05, 0.10, 0.50],
                storage_sizes: vec![100, 200, 300, 400],
                trials: 10,
                methods: SketchMethod::paper_baselines().to_vec(),
                data: SyntheticPairConfig::default(),
                seed: 0xF164,
            },
            Scale::Quick => Self {
                overlaps: vec![0.01, 0.05, 0.10, 0.50],
                storage_sizes: vec![100, 200, 400],
                trials: 4,
                methods: SketchMethod::paper_baselines().to_vec(),
                data: SyntheticPairConfig {
                    dimension: 4_000,
                    nonzeros: 800,
                    ..SyntheticPairConfig::default()
                },
                seed: 0xF164,
            },
        }
    }
}

/// One cell of the Figure-4 result grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Cell {
    /// The overlap ratio of the subplot this cell belongs to.
    pub overlap: f64,
    /// The storage budget (doubles).
    pub storage: usize,
    /// The method.
    pub method: SketchMethod,
    /// Average scaled estimation error over the trials.
    pub mean_error: f64,
}

/// Runs the Figure-4 experiment.
///
/// # Panics
///
/// Panics if the synthetic-data configuration is invalid (the built-in configurations
/// are always valid).
#[must_use]
pub fn run(config: &Fig4Config) -> Vec<Fig4Cell> {
    // One work item per (overlap, storage, method); trials run inside the item.
    let mut items = Vec::new();
    for &overlap in &config.overlaps {
        for &storage in &config.storage_sizes {
            for &method in &config.methods {
                items.push((overlap, storage, method));
            }
        }
    }
    parallel_map(&items, default_threads(), |&(overlap, storage, method)| {
        let data_config = SyntheticPairConfig {
            overlap,
            ..config.data
        };
        let mut total = 0.0;
        for trial in 0..config.trials {
            let pair_seed = mix3(config.seed, (overlap * 1e6) as u64, trial as u64);
            let pair = data_config
                .generate(pair_seed)
                .expect("synthetic configuration is valid");
            let sketcher = AnySketcher::for_budget(method, storage as f64, pair_seed ^ 0xA5)
                .expect("storage budgets are large enough for every method");
            total += sketched_error(&sketcher, &pair.a, &pair.b)
                .expect("synthetic vectors are sketchable");
        }
        Fig4Cell {
            overlap,
            storage,
            method,
            mean_error: total / config.trials as f64,
        }
    })
}

/// Formats the result grid as one text table per subplot (overlap ratio), with one row
/// per storage size and one column per method — the same series Figure 4 plots.
#[must_use]
pub fn format(config: &Fig4Config, cells: &[Fig4Cell]) -> String {
    let mut out = String::new();
    for &overlap in &config.overlaps {
        out.push_str(&format!(
            "Figure 4 — synthetic data, {:.0}% overlap (average scaled error, {} trials)\n",
            overlap * 100.0,
            config.trials
        ));
        let mut header = vec!["storage".to_string()];
        header.extend(config.methods.iter().map(|m| m.label().to_string()));
        let mut table = TextTable::new(header);
        for &storage in &config.storage_sizes {
            let mut row = vec![storage.to_string()];
            for &method in &config.methods {
                let cell = cells
                    .iter()
                    .find(|c| c.overlap == overlap && c.storage == storage && c.method == method)
                    .expect("cell exists for every configuration");
                row.push(fmt_f64(cell.mean_error));
            }
            table.push_row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Converts the cells to a flat CSV-ready table.
#[must_use]
pub fn to_table(cells: &[Fig4Cell]) -> TextTable {
    let mut table = TextTable::new(["overlap", "storage", "method", "mean_error"]);
    for cell in cells {
        table.push_row([
            format!("{}", cell.overlap),
            cell.storage.to_string(),
            cell.method.label().to_string(),
            format!("{}", cell.mean_error),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig4Config {
        Fig4Config {
            overlaps: vec![0.01, 0.5],
            storage_sizes: vec![100, 400],
            trials: 3,
            methods: SketchMethod::paper_baselines().to_vec(),
            data: SyntheticPairConfig {
                dimension: 2_000,
                nonzeros: 400,
                ..SyntheticPairConfig::default()
            },
            seed: 7,
        }
    }

    #[test]
    fn produces_a_cell_per_configuration() {
        let config = tiny_config();
        let cells = run(&config);
        assert_eq!(cells.len(), 2 * 2 * 5);
        assert!(cells
            .iter()
            .all(|c| c.mean_error.is_finite() && c.mean_error >= 0.0));
    }

    #[test]
    fn wmh_beats_linear_sketches_at_low_overlap() {
        // The paper's headline qualitative claim (Figure 4(a)): at 1% overlap WMH has
        // clearly lower error than JL and CountSketch at the same storage.
        let config = tiny_config();
        let cells = run(&config);
        let get = |method, overlap, storage| {
            cells
                .iter()
                .find(|c| c.method == method && c.overlap == overlap && c.storage == storage)
                .unwrap()
                .mean_error
        };
        let wmh = get(SketchMethod::WeightedMinHash, 0.01, 400);
        let jl = get(SketchMethod::Jl, 0.01, 400);
        let cs = get(SketchMethod::CountSketch, 0.01, 400);
        assert!(wmh < jl, "WMH {wmh} should beat JL {jl} at 1% overlap");
        assert!(wmh < cs, "WMH {wmh} should beat CS {cs} at 1% overlap");
    }

    #[test]
    fn gap_narrows_at_high_overlap() {
        // Figure 4(d): at 50% overlap linear sketching is comparable to WMH — the ratio
        // of errors should be much closer to 1 than at 1% overlap.
        let config = tiny_config();
        let cells = run(&config);
        let get = |method, overlap| {
            cells
                .iter()
                .find(|c| c.method == method && c.overlap == overlap && c.storage == 400)
                .unwrap()
                .mean_error
        };
        let ratio_low = get(SketchMethod::Jl, 0.01) / get(SketchMethod::WeightedMinHash, 0.01);
        let ratio_high = get(SketchMethod::Jl, 0.5) / get(SketchMethod::WeightedMinHash, 0.5);
        assert!(
            ratio_low > ratio_high,
            "JL/WMH error ratio should shrink as overlap grows: {ratio_low} vs {ratio_high}"
        );
    }

    #[test]
    fn formatting_contains_every_subplot_and_method() {
        let config = tiny_config();
        let cells = run(&config);
        let text = format(&config, &cells);
        assert!(text.contains("1% overlap"));
        assert!(text.contains("50% overlap"));
        for method in &config.methods {
            assert!(text.contains(method.label()));
        }
        let table = to_table(&cells);
        assert_eq!(table.len(), cells.len());
    }
}
