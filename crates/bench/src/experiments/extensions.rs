//! Extension A4 — SimHash and ICWS added to the Figure-4 comparison.
//!
//! The paper's related-work section discusses SimHash (a 1-bit quantized random
//! projection) and the Consistent Weighted Sampling family as alternatives.  This
//! experiment repeats the Figure-4 synthetic sweep with those two extension methods
//! included, so the repository answers the natural follow-up question: how do they fare
//! under the same storage accounting?

use super::fig4::{self, Fig4Cell, Fig4Config};
use super::Scale;
use ipsketch_core::method::SketchMethod;

/// Builds the extended Figure-4 configuration (all seven methods).
#[must_use]
pub fn config_for_scale(scale: Scale) -> Fig4Config {
    let mut config = Fig4Config::for_scale(scale);
    config.methods = SketchMethod::all().to_vec();
    config
}

/// Runs the extended sweep.
#[must_use]
pub fn run(config: &Fig4Config) -> Vec<Fig4Cell> {
    fig4::run(config)
}

/// Formats the extended sweep.
#[must_use]
pub fn format(config: &Fig4Config, cells: &[Fig4Cell]) -> String {
    let mut out = String::from("Extension — Figure-4 sweep including SimHash and ICWS\n\n");
    out.push_str(&fig4::format(config, cells));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsketch_data::SyntheticPairConfig;

    fn tiny_config() -> Fig4Config {
        let mut config = config_for_scale(Scale::Quick);
        config.overlaps = vec![0.05];
        config.storage_sizes = vec![200];
        config.trials = 3;
        config.data = SyntheticPairConfig {
            dimension: 2_000,
            nonzeros: 400,
            ..SyntheticPairConfig::default()
        };
        config
    }

    #[test]
    fn includes_the_extension_methods() {
        let config = tiny_config();
        assert!(config.methods.contains(&SketchMethod::SimHash));
        assert!(config.methods.contains(&SketchMethod::Icws));
        let cells = run(&config);
        assert_eq!(cells.len(), config.methods.len());
        assert!(cells
            .iter()
            .any(|c| c.method == SketchMethod::SimHash && c.mean_error.is_finite()));
    }

    #[test]
    fn extension_methods_are_sane_and_wmh_still_beats_linear_sketching() {
        // The extensions are not expected to dominate (SimHash in particular packs 64
        // sign bits per double, so it is surprisingly competitive under the storage
        // accounting); the robust claims are that every method produces a sane error
        // and that the paper's headline comparison (WMH vs JL) is unaffected by adding
        // the extensions to the sweep.
        let config = tiny_config();
        let cells = run(&config);
        let get = |method| {
            cells
                .iter()
                .find(|c| c.method == method)
                .unwrap()
                .mean_error
        };
        for method in SketchMethod::all() {
            let err = get(method);
            assert!(
                err.is_finite() && (0.0..1.0).contains(&err),
                "{method:?}: {err}"
            );
        }
        assert!(
            get(SketchMethod::WeightedMinHash) < get(SketchMethod::Jl),
            "WMH {} should beat JL {} at 5% overlap",
            get(SketchMethod::WeightedMinHash),
            get(SketchMethod::Jl)
        );
    }

    #[test]
    fn format_mentions_extensions() {
        let config = tiny_config();
        let cells = run(&config);
        let text = format(&config, &cells);
        assert!(text.contains("SimHash"));
        assert!(text.contains("ICWS"));
    }
}
