//! Merge-throughput experiment — the cost of distributed (chunk-and-merge) sketching
//! relative to one-shot sketching, per method.
//!
//! The mergeable-sketch layer (PR 2) lets a column be sketched as `k` independently
//! built row-chunks folded with `merge`; a sharded deployment pays exactly this path.
//! This experiment measures, for every mergeable method, the wall-clock cost of
//! (a) one-shot sketching and (b) chunked sketching including all merges, together with
//! the estimate drift between the two paths — verifying that distribution costs little
//! and changes estimates not at all (sampling methods) or only within grid-rounding
//! tolerance (WMH).

use super::Scale;
use crate::report::{fmt_f64, TextTable};
use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_core::traits::Sketcher;
use ipsketch_data::SyntheticPairConfig;
use ipsketch_hash::mix::mix2;
use ipsketch_vector::scaled_absolute_error;
use std::time::Instant;

/// Configuration of the merge-throughput experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeConfig {
    /// Partition counts to measure.
    pub partitions: Vec<usize>,
    /// Storage budget per sketch (doubles).
    pub storage: usize,
    /// Number of vector pairs per (method, partitions) cell.
    pub trials: usize,
    /// Synthetic data parameters.
    pub data: SyntheticPairConfig,
    /// Base random seed.
    pub seed: u64,
}

impl MergeConfig {
    /// The configuration for a given scale.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self {
                partitions: vec![2, 4, 8, 16],
                storage: 400,
                trials: 10,
                data: SyntheticPairConfig::default(),
                seed: 0x4D_52_47,
            },
            Scale::Quick => Self {
                partitions: vec![2, 4, 8],
                storage: 300,
                trials: 3,
                data: SyntheticPairConfig {
                    dimension: 2_000,
                    nonzeros: 400,
                    ..SyntheticPairConfig::default()
                },
                seed: 0x4D_52_47,
            },
        }
    }
}

/// One measured cell of the experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeRow {
    /// The sketching method.
    pub method: SketchMethod,
    /// Number of row-chunks the vector was split into.
    pub partitions: usize,
    /// Mean one-shot sketching time per vector, in microseconds.
    pub one_shot_micros: f64,
    /// Mean chunk-and-merge sketching time per vector (all chunk sketches plus all
    /// merges), in microseconds.
    pub partitioned_micros: f64,
    /// `partitioned_micros / one_shot_micros` — the price of distribution.
    pub overhead: f64,
    /// Mean scaled difference `|est_partitioned − est_one_shot| / (‖a‖‖b‖)` between the
    /// two paths (zero for the sampling methods, grid-rounding noise for WMH).
    pub estimate_drift: f64,
}

/// The methods measured: every mergeable method (SimHash cannot merge).
#[must_use]
pub fn mergeable_methods() -> [SketchMethod; 6] {
    [
        SketchMethod::Jl,
        SketchMethod::CountSketch,
        SketchMethod::MinHash,
        SketchMethod::Kmv,
        SketchMethod::WeightedMinHash,
        SketchMethod::Icws,
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &MergeConfig) -> Vec<MergeRow> {
    let mut rows = Vec::new();
    for method in mergeable_methods() {
        let Ok(sketcher) = AnySketcher::for_budget(method, config.storage as f64, config.seed)
        else {
            continue;
        };
        for &partitions in &config.partitions {
            let mut one_shot_total = 0.0;
            let mut partitioned_total = 0.0;
            let mut drift_total = 0.0;
            let mut sketched_vectors = 0u32;
            for trial in 0..config.trials {
                let pair = config
                    .data
                    .generate(mix2(config.seed, trial as u64))
                    .expect("valid configuration");
                let (a, b) = (&pair.a, &pair.b);
                let start = Instant::now();
                let one_a = sketcher.sketch(a).expect("sketchable");
                let one_b = sketcher.sketch(b).expect("sketchable");
                one_shot_total += start.elapsed().as_secs_f64() * 1e6;
                let start = Instant::now();
                let part_a = sketcher.sketch_chunked(a, partitions).expect("mergeable");
                let part_b = sketcher.sketch_chunked(b, partitions).expect("mergeable");
                partitioned_total += start.elapsed().as_secs_f64() * 1e6;
                sketched_vectors += 2;
                let est_one = sketcher
                    .estimate_inner_product(&one_a, &one_b)
                    .expect("compatible");
                let est_part = sketcher
                    .estimate_inner_product(&part_a, &part_b)
                    .expect("compatible");
                drift_total += scaled_absolute_error(est_part, est_one, a.norm(), b.norm());
            }
            let per_vector = f64::from(sketched_vectors);
            rows.push(MergeRow {
                method,
                partitions,
                one_shot_micros: one_shot_total / per_vector,
                partitioned_micros: partitioned_total / per_vector,
                overhead: partitioned_total / one_shot_total,
                estimate_drift: drift_total / f64::from(config.trials as u32),
            });
        }
    }
    rows
}

/// Formats the report.
#[must_use]
pub fn format(config: &MergeConfig, rows: &[MergeRow]) -> String {
    let mut out = format!(
        "Merge throughput — chunk-and-merge vs one-shot sketching \
         (n = {}, nnz = {}, budget = {} doubles, {} trials)\n",
        config.data.dimension, config.data.nonzeros, config.storage, config.trials
    );
    let mut table = TextTable::new([
        "method",
        "partitions",
        "one-shot (µs)",
        "partitioned (µs)",
        "overhead",
        "estimate drift",
    ]);
    for row in rows {
        table.push_row([
            row.method.label().to_string(),
            row.partitions.to_string(),
            fmt_f64(row.one_shot_micros),
            fmt_f64(row.partitioned_micros),
            fmt_f64(row.overhead),
            fmt_f64(row.estimate_drift),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MergeConfig {
        MergeConfig {
            partitions: vec![2, 4],
            storage: 100,
            trials: 1,
            data: SyntheticPairConfig {
                dimension: 500,
                nonzeros: 100,
                ..SyntheticPairConfig::default()
            },
            seed: 7,
        }
    }

    #[test]
    fn covers_every_mergeable_method_and_partition_count() {
        let config = tiny_config();
        let rows = run(&config);
        assert_eq!(
            rows.len(),
            mergeable_methods().len() * config.partitions.len()
        );
        for row in &rows {
            assert!(row.one_shot_micros > 0.0);
            assert!(row.partitioned_micros > 0.0);
            assert!(row.overhead.is_finite() && row.overhead > 0.0);
            assert!(row.estimate_drift.is_finite());
        }
    }

    #[test]
    fn sampling_methods_drift_nothing_and_wmh_little() {
        let rows = run(&tiny_config());
        for row in &rows {
            match row.method {
                SketchMethod::MinHash | SketchMethod::Kmv | SketchMethod::Icws => {
                    assert_eq!(row.estimate_drift, 0.0, "{:?}", row.method);
                }
                SketchMethod::WeightedMinHash => {
                    assert!(row.estimate_drift < 0.5, "{:?}", row.method);
                }
                _ => assert!(row.estimate_drift < 1e-6, "{:?}", row.method),
            }
        }
    }

    #[test]
    fn formatting_contains_all_methods() {
        let config = tiny_config();
        let text = format(&config, &run(&config));
        for method in mergeable_methods() {
            assert!(text.contains(method.label()), "missing {method:?}");
        }
    }
}
