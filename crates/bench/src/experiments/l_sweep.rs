//! Ablation A2 — effect of the discretization parameter `L` on WMH accuracy.
//!
//! The paper (Section 5, "Choice of L") observes that `L` does not affect the sketch
//! size, that it must be at least larger than `n` (otherwise small entries of the
//! normalized vector round to zero), and that values 100–1000× larger are ideal.  This
//! experiment sweeps `L` from far-too-small to comfortably large at a fixed sketch size
//! and reports the mean error, reproducing that qualitative behaviour.

use super::{sketched_error, Scale};
use crate::report::{fmt_f64, TextTable};
use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_data::SyntheticPairConfig;
use ipsketch_hash::mix::mix2;

/// Configuration of the L-sweep ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct LSweepConfig {
    /// The discretization values to sweep.
    pub discretizations: Vec<u64>,
    /// Storage budget (doubles).
    pub storage: usize,
    /// Number of trials per value.
    pub trials: usize,
    /// Synthetic data parameters.
    pub data: SyntheticPairConfig,
    /// Base random seed.
    pub seed: u64,
}

impl LSweepConfig {
    /// The configuration for a given scale.  The sweep is expressed relative to the
    /// number of non-zeros `n` of the vectors: `L ∈ {n/10, n, 10n, 100n, 1000n}`.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        // Outliers are disabled for this ablation: with heavy outliers the inner
        // product is dominated by a handful of entries that survive any L, which hides
        // the effect the sweep is meant to show (rounding of the *small* entries).
        let data = match scale {
            Scale::Paper => SyntheticPairConfig {
                outlier_fraction: 0.0,
                ..SyntheticPairConfig::default()
            },
            Scale::Quick => SyntheticPairConfig {
                dimension: 4_000,
                nonzeros: 800,
                outlier_fraction: 0.0,
                ..SyntheticPairConfig::default()
            },
        };
        let n = data.nonzeros as u64;
        Self {
            discretizations: vec![n / 10, n, 10 * n, 100 * n, 1000 * n],
            storage: 400,
            trials: if scale == Scale::Paper { 10 } else { 4 },
            data,
            seed: 0x15EE,
        }
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LSweepPoint {
    /// The discretization parameter `L`.
    pub discretization: u64,
    /// Mean scaled error at this `L`.
    pub mean_error: f64,
}

/// Runs the sweep.
#[must_use]
pub fn run(config: &LSweepConfig) -> Vec<LSweepPoint> {
    config
        .discretizations
        .iter()
        .map(|&l| {
            let mut total = 0.0;
            for trial in 0..config.trials {
                let seed = mix2(config.seed, trial as u64);
                let pair = config.data.generate(seed).expect("valid configuration");
                // Use positive values of comparable magnitude so the true inner product
                // is substantial and the effect of rounding small entries to zero is
                // visible (with zero-mean values the true inner product is itself near
                // zero and every L looks equally "accurate").
                let a = pair.a.mapped(|_, v| v.abs() + 0.1).expect("finite values");
                let b = pair.b.mapped(|_, v| v.abs() + 0.1).expect("finite values");
                let sketcher = AnySketcher::for_budget_with_discretization(
                    SketchMethod::WeightedMinHash,
                    config.storage as f64,
                    seed,
                    l.max(1),
                )
                .expect("storage budget is large enough");
                total += sketched_error(&sketcher, &a, &b).expect("sketchable");
            }
            LSweepPoint {
                discretization: l,
                mean_error: total / config.trials as f64,
            }
        })
        .collect()
}

/// Formats the sweep results.
#[must_use]
pub fn format(config: &LSweepConfig, points: &[LSweepPoint]) -> String {
    let mut out = format!(
        "Ablation — WMH error vs. discretization L (storage {}, nnz {}, {} trials)\n",
        config.storage, config.data.nonzeros, config.trials
    );
    let mut table = TextTable::new(["L", "L / nnz", "mean error"]);
    for p in points {
        table.push_row([
            p.discretization.to_string(),
            format!(
                "{:.1}",
                p.discretization as f64 / config.data.nonzeros as f64
            ),
            fmt_f64(p.mean_error),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LSweepConfig {
        let data = SyntheticPairConfig {
            dimension: 2_000,
            nonzeros: 400,
            overlap: 0.1,
            outlier_fraction: 0.0,
            ..SyntheticPairConfig::default()
        };
        LSweepConfig {
            discretizations: vec![40, 400, 4_000, 400_000],
            storage: 300,
            trials: 4,
            data,
            seed: 3,
        }
    }

    #[test]
    fn produces_one_point_per_l() {
        let config = tiny_config();
        let points = run(&config);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.mean_error.is_finite()));
    }

    #[test]
    fn too_small_l_hurts_accuracy() {
        // L = nnz/10 rounds most entries to zero; the error must be clearly worse than
        // with a generous L (the paper's "necessary to at least ensure that L > n").
        let config = tiny_config();
        let points = run(&config);
        let tiny_l = points[0].mean_error;
        let large_l = points.last().unwrap().mean_error;
        assert!(
            tiny_l > 1.5 * large_l,
            "error at L=nnz/10 ({tiny_l}) should be much worse than at large L ({large_l})"
        );
    }

    #[test]
    fn large_l_values_plateau() {
        let config = tiny_config();
        let points = run(&config);
        let l_100n = points[2].mean_error;
        let l_1000n = points[3].mean_error;
        assert!(
            (l_100n - l_1000n).abs() < 0.5 * l_100n.max(l_1000n).max(1e-6),
            "accuracy should plateau once L is large: {l_100n} vs {l_1000n}"
        );
    }

    #[test]
    fn formatting_lists_every_l() {
        let config = tiny_config();
        let points = run(&config);
        let text = format(&config, &points);
        for p in &points {
            assert!(text.contains(&p.discretization.to_string()));
        }
    }
}
