//! Experiment drivers, one per evaluation artifact of the paper.
//!
//! | Module | Artifact |
//! |---|---|
//! | [`table1`] | Table 1 — error-bound comparison (empirical check) |
//! | [`fig4`] | Figure 4(a–d) — synthetic vectors, error vs. storage for four overlap ratios |
//! | [`fig5`] | Figure 5(a–b) — World-Bank-like column pairs, winning tables binned by overlap × kurtosis |
//! | [`fig6`] | Figure 6(a–b) — text similarity, error vs. storage for all / long documents |
//! | [`storage`] | Section 5 "Storage Size" accounting check |
//! | [`l_sweep`] | Ablation A2 — WMH accuracy vs. discretization parameter `L` |
//! | [`hash_sweep`] | Ablation A3 — accuracy vs. hash family |
//! | [`extensions`] | Extension A4 — SimHash and ICWS added to the Figure-4 sweep |
//! | [`merge`] | Mergeable sketches — chunk-and-merge cost vs. one-shot sketching |

pub mod extensions;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod hash_sweep;
pub mod l_sweep;
pub mod merge;
pub mod storage;
pub mod table1;

use ipsketch_core::method::AnySketcher;
use ipsketch_core::traits::Sketcher;
use ipsketch_core::SketchError;
use ipsketch_vector::{inner_product, scaled_absolute_error, SparseVector};

/// How large an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters that finish in seconds; used by default, by tests and by the
    /// Criterion benches.
    Quick,
    /// The paper's full parameters (5000 column pairs, all document pairs, 10 trials).
    Paper,
}

impl Scale {
    /// Parses `--full` / `--paper` style flags from command-line arguments.
    #[must_use]
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        for arg in args {
            if arg == "--full" || arg == "--paper" {
                return Scale::Paper;
            }
        }
        Scale::Quick
    }
}

/// Sketches both vectors with `sketcher` and returns the paper's scaled estimation
/// error `|est − ⟨a,b⟩| / (‖a‖‖b‖)`.
///
/// # Errors
///
/// Propagates any sketching/estimation error.
pub fn sketched_error(
    sketcher: &AnySketcher,
    a: &SparseVector,
    b: &SparseVector,
) -> Result<f64, SketchError> {
    let sa = sketcher.sketch(a)?;
    let sb = sketcher.sketch(b)?;
    let estimate = sketcher.estimate_inner_product(&sa, &sb)?;
    Ok(scaled_absolute_error(
        estimate,
        inner_product(a, b),
        a.norm(),
        b.norm(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsketch_core::method::SketchMethod;

    #[test]
    fn scale_from_args() {
        assert_eq!(Scale::from_args(Vec::<String>::new()), Scale::Quick);
        assert_eq!(Scale::from_args(vec!["--full".to_string()]), Scale::Paper);
        assert_eq!(Scale::from_args(vec!["--paper".to_string()]), Scale::Paper);
        assert_eq!(Scale::from_args(vec!["other".to_string()]), Scale::Quick);
    }

    #[test]
    fn sketched_error_is_small_for_identical_vectors_at_large_budget() {
        let v = SparseVector::from_pairs((0..200u64).map(|i| (i, 1.0 + (i % 3) as f64))).unwrap();
        let sketcher = AnySketcher::for_budget(SketchMethod::Jl, 600.0, 1).unwrap();
        let err = sketched_error(&sketcher, &v, &v).unwrap();
        assert!(err < 0.2, "error {err}");
    }
}
