//! Table 1 — empirical check of the error-bound comparison.
//!
//! Table 1 of the paper compares the additive-error guarantees of the sketching methods
//! for a size-`O(1/ε²)` sketch:
//!
//! * linear sketches (JL / AMS / CountSketch): `ε·‖a‖‖b‖`;
//! * unweighted MinHash (binary vectors): `ε·c²·√(max(|A|,|B|)·|A∩B|)`;
//! * Weighted MinHash (any vectors): `ε·max(‖a_I‖‖b‖, ‖a‖‖b_I‖)`.
//!
//! The experiment sketches synthetic vector pairs at a fixed sample budget `m`, sets
//! `ε = 1/√m`, and reports, per method: the data-dependent bound term, the bound value
//! `ε·term`, the measured mean absolute error, and the ratio measured/bound.  The
//! qualitative reproduction of Table 1 is that (i) each method's measured error is of
//! the order of its bound (ratio `O(1)`), and (ii) the WMH bound — and its measured
//! error — is far below the linear-sketching bound on sparse, low-overlap inputs.

use super::Scale;
use crate::report::{fmt_f64, TextTable};
use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_core::traits::Sketcher;
use ipsketch_data::SyntheticPairConfig;
use ipsketch_hash::mix::mix2;
use ipsketch_vector::{inner_product, BoundTerms};

/// Configuration of the Table-1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Config {
    /// Number of samples `m` per sketch (so `ε = 1/√m`).
    pub samples: usize,
    /// Number of vector pairs / trials averaged per row.
    pub trials: usize,
    /// Overlap of the synthetic pairs (kept low — the regime Table 1 is about).
    pub overlap: f64,
    /// The synthetic data parameters.
    pub data: SyntheticPairConfig,
    /// Base random seed.
    pub seed: u64,
}

impl Table1Config {
    /// The configuration for a given scale.
    #[must_use]
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self {
                samples: 400,
                trials: 20,
                overlap: 0.05,
                data: SyntheticPairConfig::default(),
                seed: 0x7AB1,
            },
            Scale::Quick => Self {
                samples: 256,
                trials: 8,
                overlap: 0.05,
                data: SyntheticPairConfig {
                    dimension: 4_000,
                    nonzeros: 800,
                    ..SyntheticPairConfig::default()
                },
                seed: 0x7AB1,
            },
        }
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The method.
    pub method: SketchMethod,
    /// Which bound the method is covered by, as printed in the paper's Table 1.
    pub bound_formula: &'static str,
    /// Mean data-dependent bound term over the trials.
    pub bound_term: f64,
    /// Mean bound value `ε·term`.
    pub bound_value: f64,
    /// Mean measured absolute error.
    pub measured_error: f64,
    /// measured / bound (should be `O(1)`, typically well below 1).
    pub ratio: f64,
}

/// Runs the Table-1 experiment.
#[must_use]
pub fn run(config: &Table1Config) -> Vec<Table1Row> {
    let epsilon = 1.0 / (config.samples as f64).sqrt();
    let methods = [
        (SketchMethod::Jl, "eps * |a| * |b|"),
        (SketchMethod::CountSketch, "eps * |a| * |b|"),
        (
            SketchMethod::MinHash,
            "eps * c^2 * sqrt(max(|A|,|B|) * |A n B|)",
        ),
        (
            SketchMethod::Kmv,
            "eps * c^2 * sqrt(max(|A|,|B|) * |A n B|)",
        ),
        (
            SketchMethod::WeightedMinHash,
            "eps * max(|a_I| |b|, |a| |b_I|)",
        ),
    ];
    let data_config = SyntheticPairConfig {
        overlap: config.overlap,
        ..config.data
    };

    methods
        .iter()
        .map(|&(method, bound_formula)| {
            let mut bound_term_total = 0.0;
            let mut error_total = 0.0;
            for trial in 0..config.trials {
                let seed = mix2(config.seed, trial as u64);
                let pair = data_config.generate(seed).expect("valid configuration");
                let terms = BoundTerms::compute(&pair.a, &pair.b);
                let bound_term = match method {
                    SketchMethod::Jl | SketchMethod::CountSketch => terms.linear,
                    SketchMethod::MinHash | SketchMethod::Kmv => terms.minhash,
                    _ => terms.weighted_minhash,
                };
                // Hold the *sample count* fixed across methods (this experiment checks
                // bounds at a given m, unlike the figures which fix storage).
                let sketcher = build_with_samples(method, config.samples, seed ^ 0x7A);
                let sa = sketcher.sketch(&pair.a).expect("sketchable");
                let sb = sketcher.sketch(&pair.b).expect("sketchable");
                let estimate = sketcher
                    .estimate_inner_product(&sa, &sb)
                    .expect("compatible");
                bound_term_total += bound_term;
                error_total += (estimate - inner_product(&pair.a, &pair.b)).abs();
            }
            let bound_term = bound_term_total / config.trials as f64;
            let measured_error = error_total / config.trials as f64;
            let bound_value = epsilon * bound_term;
            Table1Row {
                method,
                bound_formula,
                bound_term,
                bound_value,
                measured_error,
                ratio: if bound_value > 0.0 {
                    measured_error / bound_value
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Builds a sketcher with a fixed sample/row count (rather than a storage budget).
fn build_with_samples(method: SketchMethod, samples: usize, seed: u64) -> AnySketcher {
    use ipsketch_core::countsketch::CountSketcher;
    use ipsketch_core::jl::JlSketcher;
    use ipsketch_core::kmv::KmvSketcher;
    use ipsketch_core::method::DEFAULT_WMH_DISCRETIZATION;
    use ipsketch_core::minhash::MinHasher;
    use ipsketch_core::wmh::WeightedMinHasher;
    match method {
        SketchMethod::Jl => AnySketcher::Jl(JlSketcher::new(samples, seed).expect("samples >= 1")),
        SketchMethod::CountSketch => {
            AnySketcher::CountSketch(CountSketcher::new(samples / 5, seed).expect("samples >= 5"))
        }
        SketchMethod::MinHash => {
            AnySketcher::MinHash(MinHasher::new(samples, seed).expect("samples >= 1"))
        }
        SketchMethod::Kmv => {
            AnySketcher::Kmv(KmvSketcher::new(samples, seed).expect("samples >= 2"))
        }
        SketchMethod::WeightedMinHash => AnySketcher::WeightedMinHash(
            WeightedMinHasher::new(samples, seed, DEFAULT_WMH_DISCRETIZATION)
                .expect("samples >= 1"),
        ),
        SketchMethod::SimHash => AnySketcher::SimHash(
            ipsketch_core::simhash::SimHashSketcher::new(samples, seed).expect("samples >= 1"),
        ),
        SketchMethod::Icws => AnySketcher::Icws(
            ipsketch_core::icws::IcwsSketcher::new(samples, seed).expect("samples >= 1"),
        ),
    }
}

/// Formats the reproduced Table 1.
#[must_use]
pub fn format(config: &Table1Config, rows: &[Table1Row]) -> String {
    let epsilon = 1.0 / (config.samples as f64).sqrt();
    let mut out = format!(
        "Table 1 — error bounds vs. measured error (m = {} samples, eps = 1/sqrt(m) = {:.4}, \
         {} trials, overlap {:.0}%)\n",
        config.samples,
        epsilon,
        config.trials,
        config.overlap * 100.0
    );
    let mut table = TextTable::new([
        "method",
        "bound formula",
        "bound term",
        "bound (eps*term)",
        "measured error",
        "measured/bound",
    ]);
    for row in rows {
        table.push_row([
            row.method.label().to_string(),
            row.bound_formula.to_string(),
            fmt_f64(row.bound_term),
            fmt_f64(row.bound_value),
            fmt_f64(row.measured_error),
            fmt_f64(row.ratio),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Table1Config {
        Table1Config {
            samples: 256,
            trials: 4,
            overlap: 0.05,
            data: SyntheticPairConfig {
                dimension: 2_000,
                nonzeros: 400,
                ..SyntheticPairConfig::default()
            },
            seed: 1,
        }
    }

    #[test]
    fn produces_one_row_per_method() {
        let rows = run(&tiny_config());
        assert_eq!(rows.len(), 5);
        assert!(rows
            .iter()
            .all(|r| r.bound_term > 0.0 && r.measured_error >= 0.0));
    }

    #[test]
    fn wmh_bound_is_smaller_than_linear_bound_for_sparse_pairs() {
        let rows = run(&tiny_config());
        let linear = rows.iter().find(|r| r.method == SketchMethod::Jl).unwrap();
        let wmh = rows
            .iter()
            .find(|r| r.method == SketchMethod::WeightedMinHash)
            .unwrap();
        assert!(
            wmh.bound_term < 0.6 * linear.bound_term,
            "WMH bound term {} should be well below the linear bound term {}",
            wmh.bound_term,
            linear.bound_term
        );
    }

    #[test]
    fn measured_errors_are_within_a_constant_of_the_bounds() {
        // The bounds hold with constant probability for m = O(1/eps^2) with unspecified
        // constants; empirically the measured error should not exceed a small multiple
        // of the bound, and the WMH/JL estimators typically sit well below it.
        let rows = run(&tiny_config());
        for row in &rows {
            assert!(
                row.ratio < 5.0,
                "{:?}: measured error {} is more than 5x its bound {}",
                row.method,
                row.measured_error,
                row.bound_value
            );
        }
    }

    #[test]
    fn wmh_measured_error_beats_linear_sketching_measured_error() {
        let rows = run(&tiny_config());
        let jl = rows.iter().find(|r| r.method == SketchMethod::Jl).unwrap();
        let wmh = rows
            .iter()
            .find(|r| r.method == SketchMethod::WeightedMinHash)
            .unwrap();
        assert!(
            wmh.measured_error < jl.measured_error,
            "WMH {} should beat JL {} on low-overlap sparse vectors",
            wmh.measured_error,
            jl.measured_error
        );
    }

    #[test]
    fn formatting_lists_every_method_and_formula() {
        let config = tiny_config();
        let rows = run(&config);
        let text = format(&config, &rows);
        for row in &rows {
            assert!(text.contains(row.method.label()));
        }
        assert!(text.contains("max(|a_I| |b|, |a| |b_I|)"));
        assert!(text.contains("Table 1"));
    }
}
