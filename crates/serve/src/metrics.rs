//! Lock-free server observability: per-op latency histograms, request/error
//! counters, and connection/queue gauges.
//!
//! Everything here is plain atomics — recording a latency is one relaxed
//! `fetch_add` on a log-bucketed histogram, so workers never contend on a lock for
//! bookkeeping.  Like `protocol`, the module is pure data: it compiles and is
//! tested without the `server` feature; the server merely owns one
//! [`ServerMetrics`] and calls [`record`](ServerMetrics::record) around each
//! request.  Snapshots surface on the wire through the `info` op's optional
//! `server` member ([`crate::protocol::WireServerStats`]).
//!
//! Histogram design: bucket `i` holds latencies in `[2^(i-1), 2^i)` nanoseconds
//! (bucket 0 holds `0..2` ns), i.e. `i = bit_length(ns)`.  Sixty-four buckets
//! cover every representable `u64` nanosecond value, quantiles walk the
//! cumulative counts and report the matched bucket's upper bound — a ≤2×
//! overestimate, which is the right bias for tail-latency gates.

use crate::protocol::{WireOpStats, WireServerStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: one per possible `u64` bit length.
const BUCKETS: usize = 64;

/// The op labels the server tracks, in the stable order they appear in wire
/// snapshots.  The final `"invalid"` slot absorbs requests whose op could not be
/// decoded (bad JSON, unknown op, oversized lines).
pub const OP_LABELS: [&str; 12] = [
    "info",
    "query",
    "batch-query",
    "ingest",
    "ingest-begin",
    "ingest-announce",
    "ingest-submit",
    "ingest-finish",
    "drop-column",
    "export-column",
    "import-column",
    "invalid",
];

/// Index of the `"invalid"` slot in [`OP_LABELS`].
pub const INVALID_OP: usize = OP_LABELS.len() - 1;

/// Maps an op label onto its [`OP_LABELS`] slot; unknown labels land on
/// [`INVALID_OP`].
#[must_use]
pub fn op_index(op: &str) -> usize {
    OP_LABELS
        .iter()
        .position(|&l| l == op)
        .unwrap_or(INVALID_OP)
}

/// A lock-free log-bucketed latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket index for a nanosecond value: its bit length, with the top two
    /// powers sharing the last bucket so 64-bit values cannot wrap.
    fn bucket(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// The exclusive upper bound of bucket `i` in nanoseconds (`u64::MAX` for the
    /// last bucket).
    fn upper_bound_ns(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound (ns) of the bucket containing the `q`-quantile observation,
    /// or 0 when the histogram is empty.  `q` is clamped into `[0, 1]`.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based: ceil(q * total), clamped.
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::upper_bound_ns(i);
            }
        }
        u64::MAX
    }
}

/// Counters and a latency histogram for one op.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Requests handled.
    pub count: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Handling latency (decode + execute + encode, as measured by the worker).
    pub latency: LatencyHistogram,
}

/// All server observability state; one instance per server, shared by reference.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    ops: [OpMetrics; OP_LABELS.len()],
    /// Currently open client connections.
    pub connections_open: AtomicU64,
    /// Connections refused at the configured connection cap.
    pub connections_rejected: AtomicU64,
    /// Requests currently queued for a worker.
    pub queue_depth: AtomicU64,
    /// Requests answered `overloaded` at the configured queue-depth cap.
    pub queue_rejected: AtomicU64,
}

impl ServerMetrics {
    /// Records one handled request under `op` (an `"op"` token, or anything else
    /// for the `"invalid"` slot).
    pub fn record(&self, op: &str, latency: Duration, is_error: bool) {
        let slot = &self.ops[op_index(op)];
        slot.count.fetch_add(1, Ordering::Relaxed);
        if is_error {
            slot.errors.fetch_add(1, Ordering::Relaxed);
        }
        slot.latency.record(latency);
    }

    /// The metrics for one op label (unknown labels alias the `"invalid"` slot).
    #[must_use]
    pub fn op(&self, op: &str) -> &OpMetrics {
        &self.ops[op_index(op)]
    }

    /// A wire-ready snapshot.  Ops never called are omitted; the rest appear in
    /// [`OP_LABELS`] order.  Latency quantiles are reported in whole microseconds
    /// (bucket upper bound, rounded up).
    #[must_use]
    pub fn snapshot(&self) -> WireServerStats {
        let ops = OP_LABELS
            .iter()
            .zip(&self.ops)
            .filter_map(|(&label, m)| {
                let count = m.count.load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                Some(WireOpStats {
                    op: label.to_string(),
                    count,
                    errors: m.errors.load(Ordering::Relaxed),
                    p50_us: m.latency.quantile_ns(0.50).div_ceil(1_000),
                    p99_us: m.latency.quantile_ns(0.99).div_ceil(1_000),
                })
            })
            .collect();
        WireServerStats {
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_rejected: self.queue_rejected.load(Ordering::Relaxed),
            ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range_in_order() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(1024), 11);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn max_value_lands_in_the_last_bucket_with_max_upper_bound() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_secs(u64::MAX / 1_000_000_000));
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_ns(0.99), u64::MAX);
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(Duration::from_nanos(700)); // bucket 10, upper bound 1024
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(700)); // bucket 20, upper bound ~1.05 ms
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.50), 1 << 10);
        assert_eq!(h.quantile_ns(0.90), 1 << 10);
        assert_eq!(h.quantile_ns(0.99), 1 << 20);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        assert_eq!(h.quantile_ns(0.0), 1 << 10);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }

    #[test]
    fn snapshot_omits_untouched_ops_and_keeps_stable_order() {
        let m = ServerMetrics::default();
        m.record("query", Duration::from_micros(100), false);
        m.record("query", Duration::from_micros(200), true);
        m.record("info", Duration::from_micros(1), false);
        m.record("no-such-op", Duration::from_micros(5), true);
        let snap = m.snapshot();
        let labels: Vec<&str> = snap.ops.iter().map(|o| o.op.as_str()).collect();
        assert_eq!(labels, vec!["info", "query", "invalid"]);
        let query = &snap.ops[1];
        assert_eq!((query.count, query.errors), (2, 1));
        assert!(query.p99_us >= query.p50_us);
        assert!(
            query.p50_us >= 100,
            "upper bounds round up: {}",
            query.p50_us
        );
    }

    #[test]
    fn gauges_are_plain_atomics() {
        let m = ServerMetrics::default();
        m.connections_open.fetch_add(3, Ordering::Relaxed);
        m.connections_open.fetch_sub(1, Ordering::Relaxed);
        m.queue_rejected.fetch_add(2, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.connections_open, 2);
        assert_eq!(snap.queue_rejected, 2);
        assert!(snap.ops.is_empty());
    }

    #[test]
    fn every_protocol_op_has_a_slot() {
        use crate::protocol::{Mode, RequestBody, WireQuery};
        let q = WireQuery {
            table: "t".into(),
            column: "c".into(),
            keys: vec![1],
            values: vec![1.0],
        };
        let t = crate::protocol::WireTable {
            name: "t".into(),
            keys: vec![1],
            columns: vec![],
        };
        let bodies = [
            RequestBody::Info { server: false },
            RequestBody::Query {
                mode: Mode::Joinable,
                k: 1,
                min_join_size: 0.0,
                cascade: false,
                query: q.clone(),
            },
            RequestBody::BatchQuery {
                mode: Mode::Joinable,
                k: 1,
                min_join_size: 0.0,
                cascade: false,
                queries: vec![q],
            },
            RequestBody::Ingest {
                table: t.clone(),
                partitions: None,
            },
            RequestBody::IngestBegin { table: "t".into() },
            RequestBody::IngestAnnounce {
                session: 1,
                shard: t.clone(),
            },
            RequestBody::IngestSubmit {
                session: 1,
                shard: t,
            },
            RequestBody::IngestFinish { session: 1 },
            RequestBody::DropColumn {
                table: "t".into(),
                column: "c".into(),
            },
            RequestBody::ExportColumn {
                table: "t".into(),
                column: "c".into(),
            },
            RequestBody::ImportColumn {
                sketch: crate::protocol::WireSketch {
                    table: "t".into(),
                    column: "c".into(),
                    rows: 1,
                    bytes: vec![0],
                },
            },
        ];
        for body in &bodies {
            assert_ne!(
                op_index(body.op()),
                INVALID_OP,
                "op `{}` has no metrics slot",
                body.op()
            );
        }
    }
}
