//! The on-disk sketch catalog.
//!
//! A catalog is a directory:
//!
//! ```text
//! <root>/
//!   MANIFEST.ipsk      — versioned manifest: sketcher spec + column entries
//!   sketches/
//!     000000.col       — one SketchedColumn blob per registered column
//!     000001.col
//! ```
//!
//! Sketches are computed once and outlive the process that built them — the paper's
//! data-lake workflow.  The manifest records the full sketcher configuration
//! ([`SketcherSpec`]), so a reopened catalog rebuilds the exact sketcher, and every
//! blob is validated against that spec *at load time*: an incompatible or corrupt
//! sketch is a typed [`CatalogError`] when it is read, never a wrong estimate later.
//! All writes go through a temp-file-then-rename so a crash mid-write cannot corrupt
//! a previously valid catalog.

use crate::error::{corrupt, io_error, CatalogError};
use crate::manifest::{fnv64, CompanionRef, Manifest, ManifestEntry};
use ipsketch_core::{FormatVersion, SketcherKind, SketcherSpec};
use ipsketch_join::SketchedColumn;
use std::fs;
use std::path::{Path, PathBuf};

/// File name of the manifest inside the catalog root.
pub const MANIFEST_FILE: &str = "MANIFEST.ipsk";
/// Subdirectory holding the column blobs.
pub const SKETCH_DIR: &str = "sketches";

/// A persistent store of sketched columns, keyed by `(table, column)`.
#[derive(Debug)]
pub struct Catalog {
    root: PathBuf,
    manifest: Manifest,
}

impl Catalog {
    /// Initializes a fresh catalog at `root` (creating the directory if needed) that
    /// will store sketches built by the `spec` configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::NotACatalog`] if `root` already holds a manifest,
    /// [`CatalogError::Incompatible`] if `spec` carries the read-only v1 format
    /// (new catalogs are always written in the current format — v1 exists only so
    /// old catalogs keep loading), and [`CatalogError::Io`] for filesystem failures.
    pub fn init(root: impl Into<PathBuf>, spec: SketcherSpec) -> Result<Self, CatalogError> {
        Self::init_with_companion(root, spec, None)
    }

    /// [`init`](Self::init), optionally declaring a companion (cheap-tier) sketcher
    /// configuration: every subsequently registered column may carry a companion
    /// sketch built by it, which the query cascade's prefilter scores.
    ///
    /// # Errors
    ///
    /// As for [`init`](Self::init), plus [`CatalogError::Incompatible`] if the
    /// companion spec's format disagrees with the primary's or its method has no
    /// Table-1 prefilter bound (only CountSketch and KMV qualify).
    pub fn init_with_companion(
        root: impl Into<PathBuf>,
        spec: SketcherSpec,
        companion_spec: Option<SketcherSpec>,
    ) -> Result<Self, CatalogError> {
        if let Some(companion) = &companion_spec {
            if companion.format != spec.format {
                return Err(CatalogError::Incompatible {
                    detail: format!(
                        "companion spec format {} disagrees with catalog format {}",
                        companion.format.label(),
                        spec.format.label()
                    ),
                });
            }
            if companion.prefilter_epsilon().is_none() {
                return Err(CatalogError::Incompatible {
                    detail: format!(
                        "companion sketcher `{companion}` is not prefilter-eligible \
                         (use a CountSketch or KMV configuration)"
                    ),
                });
            }
        }
        if spec.format < FormatVersion::CURRENT {
            return Err(CatalogError::Incompatible {
                detail: format!(
                    "cannot initialize a catalog in read-only format {}; new catalogs use format {}",
                    spec.format.label(),
                    FormatVersion::CURRENT.label()
                ),
            });
        }
        let root = root.into();
        let manifest_path = root.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(CatalogError::NotACatalog {
                path: root.display().to_string(),
                detail: "directory already holds a catalog manifest".to_string(),
            });
        }
        fs::create_dir_all(root.join(SKETCH_DIR)).map_err(|e| io_error(&root, &e))?;
        let mut manifest = Manifest::new(spec);
        manifest.companion_spec = companion_spec;
        let catalog = Self { root, manifest };
        catalog.write_manifest()?;
        Ok(catalog)
    }

    /// The default companion (cheap-tier) configuration for a catalog whose primary
    /// sketcher is `spec`: a CountSketch sized well below the primary's cost (its
    /// per-pair estimate is one counter-array product instead of the primary's six
    /// sampler products) whose Table-1 bound `ε = 1/√(buckets·repetitions)` sizes
    /// the cascade pruning margin.  Shares the primary's seed so a catalog's whole
    /// configuration stays one number.
    #[must_use]
    pub fn default_companion_spec(spec: SketcherSpec) -> SketcherSpec {
        SketcherSpec::new(
            spec.format,
            SketcherKind::CountSketch {
                buckets: 256,
                repetitions: 5,
                seed: spec.seed(),
            },
        )
    }

    /// Opens an existing catalog, decoding and validating its manifest.  Blobs are not
    /// read here — they are validated individually on [`load`](Self::load), so opening
    /// a large catalog is cheap.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::NotACatalog`] if no manifest exists at `root`,
    /// [`CatalogError::Corrupt`] if the manifest does not decode, and
    /// [`CatalogError::Io`] for filesystem failures.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CatalogError> {
        let root = root.into();
        let manifest_path = root.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Err(CatalogError::NotACatalog {
                path: root.display().to_string(),
                detail: format!("no `{MANIFEST_FILE}` found (run `catalog init` first)"),
            });
        }
        let bytes = fs::read(&manifest_path).map_err(|e| io_error(&manifest_path, &e))?;
        // Manifest decode failures gain the file path here, so "unsupported manifest
        // version …" always says *which* manifest.
        let manifest = Manifest::decode(&bytes).map_err(|e| match e {
            CatalogError::Corrupt { detail } => CatalogError::Corrupt {
                detail: format!("`{}`: {detail}", manifest_path.display()),
            },
            other => other,
        })?;
        Ok(Self { root, manifest })
    }

    /// The catalog's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The sketcher configuration every stored sketch was built with.
    #[must_use]
    pub fn spec(&self) -> SketcherSpec {
        self.manifest.spec
    }

    /// The companion (cheap-tier) sketcher configuration, when this catalog stores
    /// companion sketches for the query cascade.
    #[must_use]
    pub fn companion_spec(&self) -> Option<SketcherSpec> {
        self.manifest.companion_spec
    }

    /// The catalog's on-disk format version.  [`FormatVersion::V1`] catalogs are
    /// read-only (load/estimate work; register/drop refuse) until migrated with
    /// `ipsketch catalog migrate`.
    #[must_use]
    pub fn format(&self) -> FormatVersion {
        self.manifest.format()
    }

    /// All manifest entries in registration order, **including** tombstoned ones.
    /// Most callers want [`live_entries`](Self::live_entries); the raw view exists
    /// for migration and diagnostics.
    #[must_use]
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.manifest.entries
    }

    /// The live (non-dropped) columns, in registration order.
    pub fn live_entries(&self) -> impl Iterator<Item = &ManifestEntry> {
        self.manifest.live_entries()
    }

    /// Number of live (non-dropped) columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.manifest.live_len()
    }

    /// Whether the catalog holds no live columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a sketched column: validates its three sketches against the catalog
    /// spec, writes the blob, and commits the updated manifest.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateColumn`] if the `(table, column)` key is
    /// taken, [`CatalogError::Incompatible`] if the sketches were not built by the
    /// catalog's sketcher configuration, and [`CatalogError::Io`] for filesystem
    /// failures.
    pub fn register(&mut self, column: &SketchedColumn) -> Result<(), CatalogError> {
        self.register_all(std::slice::from_ref(column))
    }

    /// Registers a batch of sketched columns with **one** manifest commit at the end —
    /// the path table-level ingest takes, so registering an n-column table rewrites
    /// the manifest once instead of n times.  All columns are validated (spec match,
    /// no duplicates against the catalog or within the batch) before any bytes are
    /// written, so a failed batch changes nothing.
    ///
    /// # Errors
    ///
    /// As for [`register`](Self::register); on error no entry from the batch is
    /// committed (blob files already written by the failing batch are orphaned until
    /// the same slots are reused, but are never referenced by the manifest).
    pub fn register_all(&mut self, columns: &[SketchedColumn]) -> Result<(), CatalogError> {
        self.register_batch(columns, None)
    }

    /// [`register_all`](Self::register_all) with one optional companion (cheap-tier)
    /// sketch per column, stored alongside the primary blob and later served to the
    /// query cascade's prefilter.  `companions` must be the same length as `columns`;
    /// a `None` slot registers the column companion-less (it is then never pruned by
    /// the cascade).
    ///
    /// # Errors
    ///
    /// As for [`register_all`](Self::register_all), plus
    /// [`CatalogError::Incompatible`] if a companion is supplied but the catalog
    /// declares no companion spec, a companion was not built by that spec, or a
    /// companion's identity/row count disagrees with its primary.
    pub fn register_all_with_companions(
        &mut self,
        columns: &[SketchedColumn],
        companions: &[Option<SketchedColumn>],
    ) -> Result<(), CatalogError> {
        if columns.len() != companions.len() {
            return Err(CatalogError::Incompatible {
                detail: format!(
                    "{} columns but {} companion slots",
                    columns.len(),
                    companions.len()
                ),
            });
        }
        self.register_batch(columns, Some(companions))
    }

    /// Shared implementation of the registration paths.
    fn register_batch(
        &mut self,
        columns: &[SketchedColumn],
        companions: Option<&[Option<SketchedColumn>]>,
    ) -> Result<(), CatalogError> {
        self.check_writable()?;
        for (i, column) in columns.iter().enumerate() {
            let in_batch_dup = columns[..i]
                .iter()
                .any(|c| c.table == column.table && c.column == column.column);
            if in_batch_dup || self.manifest.find(&column.table, &column.column).is_some() {
                return Err(CatalogError::DuplicateColumn {
                    table: column.table.clone(),
                    column: column.column.clone(),
                });
            }
            self.validate_column(column)?;
            if let Some(Some(companion)) = companions.map(|c| &c[i]) {
                self.validate_companion(column, companion)?;
            }
        }
        if columns.is_empty() {
            return Ok(());
        }
        // Blob slots are numbered by raw entry count (tombstones included), so a
        // dropped column's file name is never reused before compaction reclaims it.
        let base = self.manifest.entries.len();
        let mut new_entries = Vec::with_capacity(columns.len());
        for (offset, column) in columns.iter().enumerate() {
            let file = format!("{:06}.col", base + offset);
            let blob = column.encode(self.manifest.format());
            let blob_path = self.root.join(SKETCH_DIR).join(&file);
            write_atomic(&blob_path, &blob)?;
            let companion = match companions.map(|c| &c[offset]) {
                Some(Some(companion)) => {
                    let companion_file = format!("{:06}.cmp", base + offset);
                    let companion_blob = companion.encode(self.manifest.format());
                    write_atomic(
                        &self.root.join(SKETCH_DIR).join(&companion_file),
                        &companion_blob,
                    )?;
                    Some(CompanionRef {
                        file: companion_file,
                        blob_len: companion_blob.len() as u64,
                        checksum: fnv64(&companion_blob),
                    })
                }
                _ => None,
            };
            new_entries.push(ManifestEntry {
                table: column.table.clone(),
                column: column.column.clone(),
                rows: column.rows as u64,
                file,
                blob_len: blob.len() as u64,
                checksum: fnv64(&blob),
                dropped: false,
                companion,
            });
        }
        self.manifest.entries.extend(new_entries);
        if let Err(e) = self.write_manifest() {
            // Keep the in-memory view consistent with the (unchanged) on-disk
            // manifest if the commit itself failed.
            self.manifest.entries.truncate(base);
            return Err(e);
        }
        Ok(())
    }

    /// Loads a registered column, verifying the blob's length and checksum before
    /// decoding and the decoded sketches against the catalog spec after — so a foreign
    /// or corrupt sketch is rejected here, not at estimate time.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::NotFound`] for unknown keys, [`CatalogError::Corrupt`]
    /// for damaged blobs, [`CatalogError::Incompatible`] for spec mismatches, and
    /// [`CatalogError::Io`] for filesystem failures.
    pub fn load(&self, table: &str, column: &str) -> Result<SketchedColumn, CatalogError> {
        let entry = self
            .manifest
            .find(table, column)
            .ok_or_else(|| CatalogError::NotFound {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        self.load_entry(entry)
    }

    /// Loads the column described by a manifest entry (see [`load`](Self::load)).
    ///
    /// # Errors
    ///
    /// As for [`load`](Self::load), minus the key lookup.
    pub fn load_entry(&self, entry: &ManifestEntry) -> Result<SketchedColumn, CatalogError> {
        let path = self.root.join(SKETCH_DIR).join(&entry.file);
        let blob = fs::read(&path).map_err(|e| io_error(&path, &e))?;
        if blob.len() as u64 != entry.blob_len {
            return Err(corrupt(format!(
                "blob `{}` is {} bytes, manifest records {}",
                entry.file,
                blob.len(),
                entry.blob_len
            )));
        }
        if fnv64(&blob) != entry.checksum {
            return Err(corrupt(format!(
                "blob `{}` fails its checksum (truncated or bit-rotted)",
                entry.file
            )));
        }
        let (column, blob_format) =
            SketchedColumn::from_bytes_versioned(&blob).map_err(|e| match e {
                ipsketch_join::JoinError::Sketch(s) => {
                    corrupt(format!("blob `{}`: {s}", entry.file))
                }
                other => CatalogError::Join(other),
            })?;
        if blob_format != self.manifest.format() {
            return Err(corrupt(format!(
                "blob `{}` is format {}, catalog is format {}",
                entry.file,
                blob_format.label(),
                self.manifest.format().label()
            )));
        }
        if column.table != entry.table || column.column != entry.column {
            return Err(corrupt(format!(
                "blob `{}` names column `{}.{}`, manifest records `{}.{}`",
                entry.file, column.table, column.column, entry.table, entry.column
            )));
        }
        self.validate_column(&column)?;
        Ok(column)
    }

    /// Reads a registered column's raw blob bytes for node-to-node transfer,
    /// running the full verification chain of [`load`](Self::load) first so a
    /// damaged or foreign blob is never exported.  Returns the entry's row count
    /// and the blob exactly as stored — a peer that registers these bytes holds a
    /// byte-identical copy of the sketch.
    ///
    /// # Errors
    ///
    /// As for [`load`](Self::load).
    pub fn export_blob(&self, table: &str, column: &str) -> Result<(u64, Vec<u8>), CatalogError> {
        let entry = self
            .manifest
            .find(table, column)
            .ok_or_else(|| CatalogError::NotFound {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        self.load_entry(entry)?;
        let path = self.root.join(SKETCH_DIR).join(&entry.file);
        let blob = fs::read(&path).map_err(|e| io_error(&path, &e))?;
        if blob.len() as u64 != entry.blob_len || fnv64(&blob) != entry.checksum {
            return Err(corrupt(format!(
                "blob `{}` changed between verification and export",
                entry.file
            )));
        }
        Ok((entry.rows, blob))
    }

    /// Loads a registered column's companion (cheap-tier) sketch, with the same
    /// verification chain as [`load`](Self::load) but against the companion spec.
    /// Returns `Ok(None)` when the entry stores no companion — the caller's cascade
    /// then treats the column as unprunable rather than failing.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::NotFound`] for unknown keys; otherwise as for
    /// [`load`](Self::load).
    pub fn load_companion(
        &self,
        table: &str,
        column: &str,
    ) -> Result<Option<SketchedColumn>, CatalogError> {
        let entry = self
            .manifest
            .find(table, column)
            .ok_or_else(|| CatalogError::NotFound {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        self.load_companion_entry(entry)
    }

    /// Loads the companion sketch described by a manifest entry, or `None` if the
    /// entry carries no companion (see [`load_companion`](Self::load_companion)).
    ///
    /// # Errors
    ///
    /// As for [`load_companion`](Self::load_companion), minus the key lookup.
    pub fn load_companion_entry(
        &self,
        entry: &ManifestEntry,
    ) -> Result<Option<SketchedColumn>, CatalogError> {
        let Some(companion_ref) = &entry.companion else {
            return Ok(None);
        };
        let path = self.root.join(SKETCH_DIR).join(&companion_ref.file);
        let blob = fs::read(&path).map_err(|e| io_error(&path, &e))?;
        if blob.len() as u64 != companion_ref.blob_len {
            return Err(corrupt(format!(
                "companion blob `{}` is {} bytes, manifest records {}",
                companion_ref.file,
                blob.len(),
                companion_ref.blob_len
            )));
        }
        if fnv64(&blob) != companion_ref.checksum {
            return Err(corrupt(format!(
                "companion blob `{}` fails its checksum (truncated or bit-rotted)",
                companion_ref.file
            )));
        }
        let (companion, blob_format) =
            SketchedColumn::from_bytes_versioned(&blob).map_err(|e| match e {
                ipsketch_join::JoinError::Sketch(s) => {
                    corrupt(format!("companion blob `{}`: {s}", companion_ref.file))
                }
                other => CatalogError::Join(other),
            })?;
        if blob_format != self.manifest.format() {
            return Err(corrupt(format!(
                "companion blob `{}` is format {}, catalog is format {}",
                companion_ref.file,
                blob_format.label(),
                self.manifest.format().label()
            )));
        }
        if companion.table != entry.table || companion.column != entry.column {
            return Err(corrupt(format!(
                "companion blob `{}` names column `{}.{}`, manifest records `{}.{}`",
                companion_ref.file, companion.table, companion.column, entry.table, entry.column
            )));
        }
        let primary = self.load_entry(entry)?;
        self.validate_companion(&primary, &companion)?;
        Ok(Some(companion))
    }

    /// Validates all three sketches of a column against the catalog spec.
    fn validate_column(&self, column: &SketchedColumn) -> Result<(), CatalogError> {
        for sketch in [
            column.key_indicator(),
            column.values(),
            column.squared_values(),
        ] {
            self.manifest
                .spec
                .validate_sketch(sketch)
                .map_err(|e| CatalogError::Incompatible {
                    detail: format!("column `{}.{}`: {e}", column.table, column.column),
                })?;
        }
        Ok(())
    }

    /// Validates a companion sketch against the catalog's companion spec and its
    /// primary column's identity.
    fn validate_companion(
        &self,
        primary: &SketchedColumn,
        companion: &SketchedColumn,
    ) -> Result<(), CatalogError> {
        let Some(spec) = &self.manifest.companion_spec else {
            return Err(CatalogError::Incompatible {
                detail: format!(
                    "companion sketch supplied for `{}.{}` but this catalog declares \
                     no companion spec",
                    primary.table, primary.column
                ),
            });
        };
        if companion.table != primary.table
            || companion.column != primary.column
            || companion.rows != primary.rows
        {
            return Err(CatalogError::Incompatible {
                detail: format!(
                    "companion sketch identifies `{}.{}` ({} rows), primary is \
                     `{}.{}` ({} rows)",
                    companion.table,
                    companion.column,
                    companion.rows,
                    primary.table,
                    primary.column,
                    primary.rows
                ),
            });
        }
        for sketch in [
            companion.key_indicator(),
            companion.values(),
            companion.squared_values(),
        ] {
            spec.validate_sketch(sketch)
                .map_err(|e| CatalogError::Incompatible {
                    detail: format!(
                        "companion for `{}.{}`: {e}",
                        companion.table, companion.column
                    ),
                })?;
        }
        Ok(())
    }

    /// Rejects mutation of a read-only (format-v1) catalog.
    fn check_writable(&self) -> Result<(), CatalogError> {
        if self.manifest.format() < FormatVersion::CURRENT {
            return Err(CatalogError::Incompatible {
                detail: format!(
                    "catalog at `{}` is format {} and read-only; run `ipsketch catalog \
                     migrate` to upgrade it to format {}",
                    self.root.display(),
                    self.manifest.format().label(),
                    FormatVersion::CURRENT.label()
                ),
            });
        }
        Ok(())
    }

    /// Drops a column by writing a deletion tombstone into the manifest.  The blob
    /// file stays on disk (the write is one atomic manifest rewrite, nothing else)
    /// until [`compact`](Self::compact) reclaims it; the column stops resolving
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::NotFound`] for unknown (or already dropped) keys,
    /// [`CatalogError::Incompatible`] for read-only v1 catalogs (the v1 manifest
    /// layout cannot carry a tombstone), and [`CatalogError::Io`] for filesystem
    /// failures — the in-memory view is rolled back if the commit fails.
    pub fn drop_column(&mut self, table: &str, column: &str) -> Result<(), CatalogError> {
        self.check_writable()?;
        let entry =
            self.manifest
                .find_mut(table, column)
                .ok_or_else(|| CatalogError::NotFound {
                    table: table.to_string(),
                    column: column.to_string(),
                })?;
        entry.dropped = true;
        if let Err(e) = self.write_manifest() {
            if let Some(entry) = self
                .manifest
                .entries
                .iter_mut()
                .find(|e| e.table == table && e.column == column)
            {
                entry.dropped = false;
            }
            return Err(e);
        }
        Ok(())
    }

    /// Rewrites the manifest atomically.
    fn write_manifest(&self) -> Result<(), CatalogError> {
        write_atomic(&self.root.join(MANIFEST_FILE), &self.manifest.encode())
    }

    /// Compacts the catalog: purges tombstoned entries from the manifest, then
    /// deletes files in `sketches/` that no surviving entry references — reclaiming
    /// dropped columns' blobs along with blobs orphaned by failed batch
    /// registrations and stray temp files from interrupted atomic writes.  The
    /// manifest rewrite happens **before** any file deletion, so a crash mid-compact
    /// leaves at worst unreferenced files for the next pass, never a manifest entry
    /// pointing at a deleted blob.  Registration and dropping keep the catalog
    /// *correct* without this — tombstones and orphans are never served — but a
    /// long-running service accumulates them, so its maintenance thread calls this
    /// periodically.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Io`] for filesystem failures; on error the manifest
    /// on disk is unchanged or already purged (both are valid states).
    pub fn compact(&mut self) -> Result<CompactionReport, CatalogError> {
        let dir = self.root.join(SKETCH_DIR);
        let had_tombstones = self.manifest.live_len() != self.manifest.entries.len();
        if had_tombstones {
            let purged: Vec<ManifestEntry> = self
                .manifest
                .entries
                .iter()
                .filter(|e| !e.dropped)
                .cloned()
                .collect();
            let saved = std::mem::replace(&mut self.manifest.entries, purged);
            if let Err(e) = self.write_manifest() {
                self.manifest.entries = saved;
                return Err(e);
            }
        }
        let referenced: std::collections::HashSet<&str> = self
            .manifest
            .entries
            .iter()
            .flat_map(|e| {
                std::iter::once(e.file.as_str())
                    .chain(e.companion.as_ref().map(|c| c.file.as_str()))
            })
            .collect();
        let mut removed = Vec::new();
        for entry in fs::read_dir(&dir).map_err(|e| io_error(&dir, &e))? {
            let entry = entry.map_err(|e| io_error(&dir, &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue; // Never ours: all catalog file names are ASCII.
            };
            if referenced.contains(name) {
                continue;
            }
            fs::remove_file(entry.path()).map_err(|e| io_error(&entry.path(), &e))?;
            removed.push(name.to_string());
        }
        removed.sort_unstable();
        self.write_manifest()?;
        Ok(CompactionReport {
            removed_files: removed,
            live_columns: self.manifest.entries.len(),
        })
    }
}

/// What a [`Catalog::compact`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Names of unreferenced files removed from `sketches/`, sorted.
    pub removed_files: Vec<String>,
    /// Number of columns the rewritten manifest holds.
    pub live_columns: usize,
}

/// Writes `bytes` to `path` via a sibling temp file, fsync, and rename, so readers
/// only ever observe either the old or the new complete contents — including across a
/// crash.  Without the `sync_all` before the rename, journaling filesystems may
/// persist the rename before the data blocks, resurrecting a zero-length file after
/// power loss.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CatalogError> {
    use std::io::Write;
    let tmp = path.with_extension("tmp");
    let mut file = fs::File::create(&tmp).map_err(|e| io_error(&tmp, &e))?;
    file.write_all(bytes).map_err(|e| io_error(&tmp, &e))?;
    file.sync_all().map_err(|e| io_error(&tmp, &e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_error(path, &e))?;
    // Make the rename itself durable by flushing the parent directory entry.  Best
    // effort: not every platform supports opening a directory for sync.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsketch_core::method::{AnySketcher, SketchMethod};
    use ipsketch_data::{Column, Table};
    use ipsketch_join::JoinEstimator;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ipsketch-catalog-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_table() -> Table {
        Table::new(
            "taxi",
            (0..200).collect(),
            vec![
                Column::new("rides", (0..200).map(|i| f64::from(i) + 1.0).collect()),
                Column::new("tips", (0..200).map(|i| f64::from(i % 13) - 4.0).collect()),
            ],
        )
        .expect("well-formed table")
    }

    fn estimator(seed: u64) -> JoinEstimator {
        JoinEstimator::new(
            AnySketcher::for_budget(SketchMethod::Kmv, 128.0, seed).expect("budget fits"),
        )
    }

    #[test]
    fn init_register_reopen_load_round_trip() {
        let root = temp_root("roundtrip");
        let est = estimator(7);
        let mut catalog = Catalog::init(&root, est.sketcher().spec()).expect("init");
        assert!(catalog.is_empty());
        let table = sample_table();
        let rides = est.sketch_column(&table, "rides").expect("sketch");
        let tips = est.sketch_column(&table, "tips").expect("sketch");
        catalog.register(&rides).expect("register rides");
        catalog.register(&tips).expect("register tips");
        assert_eq!(catalog.len(), 2);

        // Reopen from disk: identical spec, identical sketches bit-for-bit.
        let reopened = Catalog::open(&root).expect("open");
        assert_eq!(reopened.spec(), est.sketcher().spec());
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.load("taxi", "rides").expect("load"), rides);
        assert_eq!(reopened.load("taxi", "tips").expect("load"), tips);
        assert!(matches!(
            reopened.load("taxi", "missing"),
            Err(CatalogError::NotFound { .. })
        ));
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn init_refuses_existing_catalog_and_open_refuses_plain_dirs() {
        let root = temp_root("guards");
        let spec = estimator(1).sketcher().spec();
        Catalog::init(&root, spec).expect("first init");
        assert!(matches!(
            Catalog::init(&root, spec),
            Err(CatalogError::NotACatalog { .. })
        ));
        let plain = temp_root("plain");
        fs::create_dir_all(&plain).expect("mkdir");
        assert!(matches!(
            Catalog::open(&plain),
            Err(CatalogError::NotACatalog { .. })
        ));
        fs::remove_dir_all(&root).expect("cleanup");
        fs::remove_dir_all(&plain).expect("cleanup");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let root = temp_root("dup");
        let est = estimator(3);
        let mut catalog = Catalog::init(&root, est.sketcher().spec()).expect("init");
        let sketched = est.sketch_column(&sample_table(), "rides").expect("sketch");
        catalog.register(&sketched).expect("first");
        assert!(matches!(
            catalog.register(&sketched),
            Err(CatalogError::DuplicateColumn { .. })
        ));
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn foreign_sketches_are_rejected_at_registration() {
        let root = temp_root("foreign");
        let mut catalog = Catalog::init(&root, estimator(3).sketcher().spec()).expect("init");
        // Same method, different seed.
        let reseeded = estimator(4)
            .sketch_column(&sample_table(), "rides")
            .expect("sketch");
        assert!(matches!(
            catalog.register(&reseeded),
            Err(CatalogError::Incompatible { .. })
        ));
        // Different method entirely.
        let other = JoinEstimator::new(
            AnySketcher::for_budget(SketchMethod::Jl, 128.0, 3).expect("budget fits"),
        )
        .sketch_column(&sample_table(), "rides")
        .expect("sketch");
        assert!(matches!(
            catalog.register(&other),
            Err(CatalogError::Incompatible { .. })
        ));
        assert!(catalog.is_empty());
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn damaged_blobs_surface_typed_corruption_at_load() {
        let root = temp_root("damage");
        let est = estimator(9);
        let mut catalog = Catalog::init(&root, est.sketcher().spec()).expect("init");
        let sketched = est.sketch_column(&sample_table(), "rides").expect("sketch");
        catalog.register(&sketched).expect("register");
        let blob_path = root.join(SKETCH_DIR).join(&catalog.entries()[0].file);
        let original = fs::read(&blob_path).expect("read blob");

        // Truncation: length check fires.
        fs::write(&blob_path, &original[..original.len() - 3]).expect("truncate");
        assert!(matches!(
            catalog.load("taxi", "rides"),
            Err(CatalogError::Corrupt { .. })
        ));
        // Same length, flipped byte: checksum fires.
        let mut flipped = original.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        fs::write(&blob_path, &flipped).expect("flip");
        assert!(matches!(
            catalog.load("taxi", "rides"),
            Err(CatalogError::Corrupt { .. })
        ));
        // Deleted blob: typed I/O error.
        fs::remove_file(&blob_path).expect("delete");
        assert!(matches!(
            catalog.load("taxi", "rides"),
            Err(CatalogError::Io { .. })
        ));
        // Restored blob loads again.
        fs::write(&blob_path, &original).expect("restore");
        assert_eq!(catalog.load("taxi", "rides").expect("load"), sketched);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn compaction_removes_orphans_and_keeps_live_blobs() {
        let root = temp_root("compact");
        let est = estimator(5);
        let mut catalog = Catalog::init(&root, est.sketcher().spec()).expect("init");
        let table = sample_table();
        let rides = est.sketch_column(&table, "rides").expect("sketch");
        catalog.register(&rides).expect("register");

        // Plant the two kinds of garbage compaction exists for: an orphaned blob
        // slot (as left by a failed batch) and a stray temp file from an
        // interrupted atomic write.
        let sketch_dir = root.join(SKETCH_DIR);
        fs::write(sketch_dir.join("000007.col"), b"orphan").expect("orphan");
        fs::write(sketch_dir.join("000001.tmp"), b"stray").expect("stray");

        let report = catalog.compact().expect("compact");
        assert_eq!(
            report.removed_files,
            vec!["000001.tmp".to_string(), "000007.col".to_string()]
        );
        assert_eq!(report.live_columns, 1);
        // The live blob is untouched and still loads bit-for-bit.
        assert_eq!(catalog.load("taxi", "rides").expect("load"), rides);
        // A second pass is a no-op.
        assert_eq!(catalog.compact().expect("compact").removed_files.len(), 0);
        // The rewritten manifest still opens.
        assert_eq!(Catalog::open(&root).expect("open").len(), 1);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn drop_column_tombstones_and_compact_reclaims_the_blob() {
        let root = temp_root("drop");
        let est = estimator(11);
        let mut catalog = Catalog::init(&root, est.sketcher().spec()).expect("init");
        let table = sample_table();
        let rides = est.sketch_column(&table, "rides").expect("sketch");
        let tips = est.sketch_column(&table, "tips").expect("sketch");
        catalog
            .register_all(&[rides.clone(), tips])
            .expect("register");
        let dropped_file = catalog.entries()[1].file.clone();

        catalog.drop_column("taxi", "tips").expect("drop");
        // The column stops resolving immediately; the blob file lingers.
        assert!(matches!(
            catalog.load("taxi", "tips"),
            Err(CatalogError::NotFound { .. })
        ));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.entries().len(), 2);
        assert!(root.join(SKETCH_DIR).join(&dropped_file).exists());
        // Dropping twice (or an unknown column) is NotFound.
        assert!(matches!(
            catalog.drop_column("taxi", "tips"),
            Err(CatalogError::NotFound { .. })
        ));
        // The tombstone survives reopen.
        let mut reopened = Catalog::open(&root).expect("open");
        assert_eq!(reopened.len(), 1);
        assert!(reopened.entries()[1].dropped);
        // A new registration must NOT reuse the tombstoned blob slot.
        let more = Table::new(
            "other",
            (0..50).collect(),
            vec![Column::new("x", (0..50).map(f64::from).collect())],
        )
        .expect("table");
        let x = est.sketch_column(&more, "x").expect("sketch");
        reopened.register(&x).expect("register post-drop");
        assert_eq!(reopened.entries()[2].file, "000002.col");

        // Compaction purges the tombstone and reclaims its blob.
        let report = reopened.compact().expect("compact");
        assert_eq!(report.removed_files, vec![dropped_file.clone()]);
        assert_eq!(report.live_columns, 2);
        assert!(!root.join(SKETCH_DIR).join(&dropped_file).exists());
        assert_eq!(reopened.entries().len(), 2);
        assert_eq!(reopened.load("taxi", "rides").expect("load"), rides);
        assert_eq!(Catalog::open(&root).expect("reopen").entries().len(), 2);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn init_refuses_the_read_only_v1_format() {
        let root = temp_root("init-v1");
        let spec = estimator(2).sketcher().spec();
        let err = Catalog::init(&root, spec.with_format(ipsketch_core::FormatVersion::V1))
            .expect_err("v1 init");
        assert!(matches!(err, CatalogError::Incompatible { .. }));
        assert!(err.to_string().contains("read-only"), "{err}");
    }

    #[test]
    fn corrupt_manifest_is_rejected_on_open() {
        let root = temp_root("manifest");
        Catalog::init(&root, estimator(1).sketcher().spec()).expect("init");
        let manifest_path = root.join(MANIFEST_FILE);
        let mut bytes = fs::read(&manifest_path).expect("read");
        bytes[0] ^= 0xFF;
        fs::write(&manifest_path, &bytes).expect("corrupt");
        assert!(matches!(
            Catalog::open(&root),
            Err(CatalogError::Corrupt { .. })
        ));
        fs::remove_dir_all(&root).expect("cleanup");
    }
}
