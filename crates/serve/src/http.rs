//! The HTTP/1.1 binding of the protocol: framing, routing, and status mapping.
//!
//! Normative rules live in `docs/PROTOCOL.md` § "HTTP/1.1 binding"; this module is
//! their executable counterpart, and — like [`crate::protocol`] — it is pure data:
//! no sockets, no feature gate, tier-1 tested.  The server (feature `server`) wires
//! [`try_frame`] into its reactor as a second framer next to the line-delimited one
//! and [`encode_response`] into its workers; any HTTP client (curl included) gets
//! the exact bytes a raw-TCP client would read, wrapped in an HTTP envelope:
//!
//! * `POST /v1/<op>` carries one request document as the body.  The route names
//!   the op, so the body may omit `"op"` (it is injected); a body that *does* name
//!   an op must agree with the route.
//! * `GET /v1/info` (optionally `?server=1`) needs no body at all.
//! * The response body is exactly the line the TCP framer would send — same JSON,
//!   same trailing `\n` — with the status derived from the outcome
//!   ([`ErrorCode::http_status`]).
//!
//! Framing is deliberately minimal but strict where it matters: `Content-Length`
//! only (chunked uploads are refused with `501`), bounded header blocks, bounded
//! bodies, keep-alive by HTTP/1.1 default, and `Expect: 100-continue` honored so
//! curl's large-upload handshake works.

use crate::protocol::{ErrorCode, Request, RequestBody, RequestDecodeError, Response, WireError};
use crate::wire::Json;

/// Upper bound on a request's header block (request line + headers + CRLFs).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Route table: URL path ↔ op token, one route per op.  `GET` is only valid on
/// `/v1/info`; every route accepts `POST`.
pub const ROUTES: [(&str, &str); 11] = [
    ("/v1/info", "info"),
    ("/v1/query", "query"),
    ("/v1/batch-query", "batch-query"),
    ("/v1/ingest", "ingest"),
    ("/v1/ingest-begin", "ingest-begin"),
    ("/v1/ingest-announce", "ingest-announce"),
    ("/v1/ingest-submit", "ingest-submit"),
    ("/v1/ingest-finish", "ingest-finish"),
    ("/v1/drop-column", "drop-column"),
    ("/v1/export-column", "export-column"),
    ("/v1/import-column", "import-column"),
];

/// Looks up the op a URL path routes to (query strings already stripped).
#[must_use]
pub fn route_op(path: &str) -> Option<&'static str> {
    ROUTES.iter().find(|(p, _)| *p == path).map(|(_, op)| *op)
}

/// One parsed HTTP request, ready for a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// The method token, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// The request target: path plus optional query string, as received.
    pub target: String,
    /// Whether the connection stays open after the response (HTTP/1.1 default
    /// unless `Connection: close`; HTTP/1.0 only with `Connection: keep-alive`).
    pub keep_alive: bool,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

/// A framing-layer failure: the HTTP status to answer with plus the protocol
/// error to carry as the response body.  Framing failures poison the connection
/// (the byte stream is no longer trustworthy), so responses to them always close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code.
    pub status: u16,
    /// The protocol-level error for the JSON body.
    pub error: WireError,
}

impl HttpError {
    fn new(status: u16, code: ErrorCode, message: impl Into<String>) -> Self {
        HttpError {
            status,
            error: WireError {
                code,
                message: message.into(),
            },
        }
    }
}

/// What [`try_frame`] found at the front of the read buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameStep {
    /// Not enough bytes for a complete request yet.  When `needs_continue` is
    /// set, the headers are complete and carried `Expect: 100-continue` — the
    /// caller should emit [`CONTINUE_RESPONSE`] once, then keep reading the body.
    Incomplete {
        /// Whether an interim `100 Continue` is owed before the client sends
        /// the body.
        needs_continue: bool,
    },
    /// One complete request, consumed from the buffer.
    Request(HttpRequest),
}

/// The interim response owed to `Expect: 100-continue`.
pub const CONTINUE_RESPONSE: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// Tries to frame one HTTP request off the front of `buf`, consuming its bytes on
/// success.  `max_body_bytes` bounds the declared `Content-Length` (the server
/// passes its line-size bound, so both framers accept the same payload sizes).
///
/// # Errors
///
/// Returns [`HttpError`] when the byte stream is not a well-formed HTTP/1.1
/// request the binding accepts; the connection cannot be re-synchronized after
/// that, so the caller must answer and close.
pub fn try_frame(buf: &mut Vec<u8>, max_body_bytes: usize) -> Result<FrameStep, HttpError> {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::new(
                431,
                ErrorCode::TooLarge,
                format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
            ));
        }
        return Ok(FrameStep::Incomplete {
            needs_continue: false,
        });
    };
    if header_end > MAX_HEADER_BYTES {
        return Err(HttpError::new(
            431,
            ErrorCode::TooLarge,
            format!("header block exceeds {MAX_HEADER_BYTES} bytes"),
        ));
    }
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::new(400, ErrorCode::BadRequest, "header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(
            400,
            ErrorCode::BadRequest,
            format!("malformed request line `{request_line}`"),
        ));
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::new(
                505,
                ErrorCode::BadRequest,
                format!("unsupported HTTP version `{other}`"),
            ))
        }
    };

    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    let mut expect_continue = false;
    let mut transfer_encoding = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(
                400,
                ErrorCode::BadRequest,
                format!("malformed header line `{line}`"),
            ));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                // RFC 9110 §8.6: Content-Length is `1*DIGIT`.  `parse::<usize>()`
                // alone would also accept a leading `+` (`+17`), so require the
                // digits-only form explicitly before parsing.
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(HttpError::new(
                        400,
                        ErrorCode::BadRequest,
                        format!("unparseable Content-Length `{value}`"),
                    ));
                }
                let parsed = value.parse::<usize>().map_err(|_| {
                    HttpError::new(
                        400,
                        ErrorCode::BadRequest,
                        format!("unparseable Content-Length `{value}`"),
                    )
                })?;
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::new(
                        400,
                        ErrorCode::BadRequest,
                        "conflicting Content-Length headers",
                    ));
                }
                content_length = Some(parsed);
            }
            "connection" => connection = Some(value.to_ascii_lowercase()),
            "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
            "transfer-encoding" => transfer_encoding = true,
            _ => {}
        }
    }
    if transfer_encoding {
        return Err(HttpError::new(
            501,
            ErrorCode::BadRequest,
            "Transfer-Encoding is not supported; send Content-Length",
        ));
    }
    let body_len = content_length.unwrap_or(0);
    if body_len > max_body_bytes {
        return Err(HttpError::new(
            413,
            ErrorCode::TooLarge,
            format!("request body of {body_len} bytes exceeds the {max_body_bytes}-byte bound"),
        ));
    }
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => http11,
    };

    let total = header_end + body_len;
    if buf.len() < total {
        return Ok(FrameStep::Incomplete {
            needs_continue: expect_continue,
        });
    }
    let body = buf[header_end..total].to_vec();
    let request = HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        keep_alive,
        body,
    };
    buf.drain(..total);
    Ok(FrameStep::Request(request))
}

/// Finds the end of the header block (the index just past `\r\n\r\n`).
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Decodes a `POST` body into a typed [`Request`], injecting the route's op when
/// the body omits `"op"` and rejecting a body whose op contradicts the route.
///
/// # Errors
///
/// Same contract as [`Request::decode`] (best-effort recovered `id`).
pub fn decode_request(route_op: &str, body: &[u8]) -> Result<Request, RequestDecodeError> {
    let text = std::str::from_utf8(body).map_err(|_| RequestDecodeError {
        id: Json::Null,
        error: WireError::bad_request("request body is not UTF-8"),
    })?;
    let doc = Json::parse(text.trim_end_matches(['\r', '\n'])).map_err(|e| RequestDecodeError {
        id: Json::Null,
        error: WireError::bad_request(e.to_string()),
    })?;
    let doc = match doc {
        Json::Obj(mut members) => {
            match members
                .iter()
                .find(|(k, _)| k == "op")
                .and_then(|(_, v)| v.as_str())
            {
                None => members.push(("op".to_string(), Json::str(route_op))),
                Some(op) if op == route_op => {}
                Some(op) => {
                    let id = members
                        .iter()
                        .find(|(k, _)| k == "id")
                        .map_or(Json::Null, |(_, v)| v.clone());
                    return Err(RequestDecodeError {
                        id,
                        error: WireError::bad_request(format!(
                            "body op `{op}` contradicts route op `{route_op}`"
                        )),
                    });
                }
            }
            Json::Obj(members)
        }
        _ => {
            return Err(RequestDecodeError {
                id: Json::Null,
                error: WireError::bad_request("request body must be a JSON object"),
            })
        }
    };
    Request::from_json(&doc)
}

/// Builds the `GET /v1/info` request a query-string selects: `?server=1` (or
/// `true`) opts into live server stats.
#[must_use]
pub fn info_request(query_string: Option<&str>) -> Request {
    let server = query_string.is_some_and(|qs| {
        qs.split('&')
            .any(|kv| matches!(kv.split_once('='), Some(("server", "1" | "true"))))
    });
    Request {
        id: Json::Null,
        body: RequestBody::Info { server },
    }
}

/// Splits a request target into its path and optional query string.
#[must_use]
pub fn split_target(target: &str) -> (&str, Option<&str>) {
    match target.split_once('?') {
        Some((path, qs)) => (path, Some(qs)),
        None => (target, None),
    }
}

/// The status code for a protocol response: `200` for success, else the error
/// code's mapping.
#[must_use]
pub fn response_status(response: &Response) -> u16 {
    match &response.result {
        Ok(_) => 200,
        Err(e) => e.code.http_status(),
    }
}

/// The reason phrase for the status codes this binding emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Encodes a complete HTTP response.  `body` is the protocol line (the encoded
/// [`Response`], trailing `\n` included — byte-identical to the TCP framer's
/// line).
#[must_use]
pub fn encode_response(status: u16, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

/// Encodes the full HTTP answer for a protocol [`Response`]: status from the
/// outcome, body byte-identical to the TCP line.
#[must_use]
pub fn encode_protocol_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut line = response.encode();
    line.push('\n');
    encode_response(response_status(response), line.as_bytes(), keep_alive)
}

/// Encodes the closing answer for a framing-layer [`HttpError`].
#[must_use]
pub fn encode_framing_error(e: &HttpError) -> Vec<u8> {
    let response = Response {
        id: Json::Null,
        result: Err(e.error.clone()),
    };
    let mut line = response.encode();
    line.push('\n');
    encode_response(e.status, line.as_bytes(), false)
}

/// The `overloaded` failure response for a capacity rejection, as a protocol
/// [`Response`] both framers encode their own way.
#[must_use]
pub fn overloaded_response(detail: &str) -> Response {
    Response {
        id: Json::Null,
        result: Err(WireError {
            code: ErrorCode::Overloaded,
            message: detail.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Mode, PROTOCOL_VERSION};

    fn frame_all(input: &[u8], max_body: usize) -> (Vec<HttpRequest>, Vec<u8>) {
        let mut buf = input.to_vec();
        let mut out = Vec::new();
        loop {
            match try_frame(&mut buf, max_body).expect("frames") {
                FrameStep::Request(r) => out.push(r),
                FrameStep::Incomplete { .. } => return (out, buf),
            }
        }
    }

    #[test]
    fn frames_a_post_with_body_and_keeps_the_tail() {
        let body = r#"{"v":1,"id":7}"#;
        let raw = format!(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}GET",
            body.len()
        );
        let (requests, rest) = frame_all(raw.as_bytes(), 1024);
        assert_eq!(requests.len(), 1);
        let r = &requests[0];
        assert_eq!(
            (r.method.as_str(), r.target.as_str()),
            ("POST", "/v1/query")
        );
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(r.body, body.as_bytes());
        assert_eq!(rest, b"GET", "pipelined tail stays buffered");
    }

    #[test]
    fn pipelined_requests_frame_in_order() {
        let raw = "GET /v1/info HTTP/1.1\r\n\r\nPOST /v1/ingest-finish HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let (requests, rest) = frame_all(raw.as_bytes(), 1024);
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[0].target, "/v1/info");
        assert_eq!(requests[1].body, b"{}");
        assert!(rest.is_empty());
    }

    #[test]
    fn incomplete_frames_wait_without_consuming() {
        let mut buf = b"POST /v1/query HTTP/1.1\r\nContent-Le".to_vec();
        assert_eq!(
            try_frame(&mut buf, 1024).expect("incomplete"),
            FrameStep::Incomplete {
                needs_continue: false
            }
        );
        assert_eq!(buf.len(), 35, "nothing consumed");
        // Headers complete, body outstanding, with Expect: the caller owes a 100.
        let mut buf =
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 5\r\nExpect: 100-continue\r\n\r\nab"
                .to_vec();
        assert_eq!(
            try_frame(&mut buf, 1024).expect("incomplete"),
            FrameStep::Incomplete {
                needs_continue: true
            }
        );
    }

    #[test]
    fn connection_semantics_follow_version_and_header() {
        let keep = |raw: &str| {
            let (requests, _) = frame_all(raw.as_bytes(), 64);
            requests[0].keep_alive
        };
        assert!(keep("GET /v1/info HTTP/1.1\r\n\r\n"));
        assert!(!keep("GET /v1/info HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!keep("GET /v1/info HTTP/1.0\r\n\r\n"));
        assert!(keep(
            "GET /v1/info HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"
        ));
    }

    #[test]
    fn framing_violations_are_typed_with_statuses() {
        let err = |raw: &[u8], max_body: usize| {
            let mut buf = raw.to_vec();
            try_frame(&mut buf, max_body).expect_err("rejects")
        };
        assert_eq!(
            err(b"POST /v1/query HTTP/2\r\n\r\n", 64).status,
            505,
            "unsupported version"
        );
        assert_eq!(err(b"nonsense\r\n\r\n", 64).status, 400, "bad request line");
        assert_eq!(
            err(
                b"POST /v1/query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                64
            )
            .status,
            501,
            "chunked refused"
        );
        let too_big = err(
            b"POST /v1/ingest HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
            64,
        );
        assert_eq!(too_big.status, 413);
        assert_eq!(too_big.error.code, ErrorCode::TooLarge);
        let mut huge_header = b"GET /v1/info HTTP/1.1\r\nX-Pad: ".to_vec();
        huge_header.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES + 8));
        let e = err(&huge_header, 64);
        assert_eq!((e.status, e.error.code), (431, ErrorCode::TooLarge));
        assert_eq!(
            err(
                b"POST /v1/query HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}x",
                64
            )
            .status,
            400,
            "conflicting lengths"
        );
        // RFC 9110 requires `1*DIGIT`: a leading sign (which `parse::<usize>()`
        // would happily accept), an empty value, or any other non-digit form is
        // a 400, never a silently tolerated frame length.
        for bad in [
            b"POST /v1/query HTTP/1.1\r\nContent-Length: +17\r\n\r\n".as_slice(),
            b"POST /v1/query HTTP/1.1\r\nContent-Length: -2\r\n\r\n".as_slice(),
            b"POST /v1/query HTTP/1.1\r\nContent-Length:\r\n\r\n".as_slice(),
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 1e2\r\n\r\n".as_slice(),
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n".as_slice(),
        ] {
            let e = err(bad, 64);
            assert_eq!(
                (e.status, e.error.code),
                (400, ErrorCode::BadRequest),
                "non-digit Content-Length must be rejected: {:?}",
                String::from_utf8_lossy(bad)
            );
        }
        // Plain digits still frame: `017` is unusual but is `1*DIGIT`.
        let mut buf =
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 017\r\n\r\n{\"v\":1,\"op\":\"xy\"}"
                .to_vec();
        match try_frame(&mut buf, 64).expect("digit form frames") {
            FrameStep::Request(request) => assert_eq!(request.body.len(), 17),
            other => panic!("expected a framed request, got {other:?}"),
        }
    }

    #[test]
    fn routes_cover_every_op_and_nothing_else() {
        use crate::metrics::{op_index, INVALID_OP};
        for (path, op) in ROUTES {
            assert_eq!(route_op(path), Some(op));
            assert_ne!(op_index(op), INVALID_OP, "route op `{op}` is a real op");
        }
        assert_eq!(route_op("/v1/compact"), None);
        assert_eq!(route_op("/v1/query/"), None);
        assert_eq!(route_op("/"), None);
    }

    #[test]
    fn post_bodies_inherit_the_route_op() {
        // No `op` in the body: the route provides it.
        let r = decode_request("ingest-finish", br#"{"v":1,"id":4,"session":9}"#).expect("decodes");
        assert_eq!(r.body.op(), "ingest-finish");
        assert_eq!(r.id.as_u64(), Some(4));
        // Matching op is fine.
        let r = decode_request(
            "query",
            br#"{"v":1,"op":"query","query":{"table":"t","column":"c","keys":[1],"values":[2.0]}}"#,
        )
        .expect("decodes");
        match r.body {
            RequestBody::Query { mode, .. } => assert_eq!(mode, Mode::Joinable),
            other => panic!("wrong body {other:?}"),
        }
        // Contradicting op is rejected, id still recovered.
        let e = decode_request("query", br#"{"v":1,"id":8,"op":"info"}"#).expect_err("mismatch");
        assert_eq!(e.error.code, ErrorCode::BadRequest);
        assert_eq!(e.id.as_u64(), Some(8));
        // Non-object bodies are rejected.
        let e = decode_request("query", b"[1,2]").expect_err("array");
        assert_eq!(e.error.code, ErrorCode::BadRequest);
        // Version rules still apply through this path.
        let e = decode_request("info", br#"{"v":2}"#).expect_err("v2");
        assert_eq!(e.error.code, ErrorCode::UnsupportedVersion);
    }

    #[test]
    fn info_requests_parse_the_server_flag_from_the_query_string() {
        assert_eq!(info_request(None).body, RequestBody::Info { server: false });
        assert_eq!(
            info_request(Some("server=1")).body,
            RequestBody::Info { server: true }
        );
        assert_eq!(
            info_request(Some("a=b&server=true")).body,
            RequestBody::Info { server: true }
        );
        assert_eq!(
            info_request(Some("server=0")).body,
            RequestBody::Info { server: false }
        );
        assert_eq!(
            split_target("/v1/info?server=1"),
            ("/v1/info", Some("server=1"))
        );
        assert_eq!(split_target("/v1/query"), ("/v1/query", None));
    }

    #[test]
    fn responses_carry_the_protocol_line_verbatim() {
        let response = Response {
            id: Json::u64(3),
            result: Err(WireError {
                code: ErrorCode::UnknownSession,
                message: "no session 9".to_string(),
            }),
        };
        let bytes = encode_protocol_response(&response, true);
        let text = String::from_utf8(bytes).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        let body = text.split("\r\n\r\n").nth(1).expect("body");
        assert!(body.ends_with('\n'));
        assert_eq!(
            Response::decode(body.trim_end()).expect("decodes"),
            response,
            "HTTP body is the TCP line"
        );
        let declared: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("length header")
            .trim()
            .parse()
            .expect("number");
        assert_eq!(declared, body.len());
        // Success → 200; overload → 503 and a parseable protocol error.
        assert_eq!(response_status(&overloaded_response("full")), 503);
        let closing = encode_framing_error(&HttpError::new(
            431,
            ErrorCode::TooLarge,
            "header block exceeds bound",
        ));
        let text = String::from_utf8(closing).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 431 "));
        assert!(text.contains("Connection: close\r\n"));
        assert_eq!(PROTOCOL_VERSION, 1, "doc examples pin v1");
    }
}
