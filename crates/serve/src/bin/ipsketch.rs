//! The `ipsketch` binary: see [`ipsketch_serve::cli`] for the command surface.

use ipsketch_serve::cli::{run, usage, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match run(&args, &mut stdout) {
        Ok(()) => {}
        Err(e @ CliError::Usage(_)) => {
            eprintln!("{e}");
            eprintln!();
            eprintln!("{}", usage());
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
