//! Catalog migration: upgrading a read-only format-v1 catalog to the current format.
//!
//! Migration is a pure **transcode**: every live column is loaded from the source
//! catalog (with the usual checksum and spec validation), re-encoded under the
//! current format's blob layout, and written into a *sibling* destination
//! directory.  The decoded sketch data is carried over bit-for-bit — only container
//! bytes change — so every estimate computed from the migrated catalog is
//! bit-identical to the source, for every method including Weighted MinHash (the
//! spec's record stream is preserved; the faster v2 stream applies to sketches
//! built *after* migration, under the writable format).
//!
//! The process is crash-safe and resumable:
//!
//! * The source catalog is never written to — not even on success.  The caller
//!   swaps directories (or just starts serving the destination) when it is ready.
//! * Each destination blob is written atomically; the destination manifest is
//!   written **last**, also atomically.  A killed migration leaves a directory
//!   without a manifest, which nothing will ever serve.
//! * Re-running the same migration skips destination blobs whose bytes already
//!   equal the expected transcoding ([`MigrationReport::resumed`] counts them), so
//!   resuming after a crash converges to the same catalog byte-for-byte.

use crate::catalog::{write_atomic, Catalog, MANIFEST_FILE, SKETCH_DIR};
use crate::error::{io_error, CatalogError};
use crate::manifest::{fnv64, CompanionRef, Manifest, ManifestEntry};
use ipsketch_core::method::AnySketch;
use ipsketch_core::{FormatVersion, SketcherKind, SketcherSpec};
use ipsketch_join::SketchedColumn;
use std::fs;
use std::path::{Path, PathBuf};

/// Progress of one column through [`migrate_catalog`], fed to the progress callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateProgress<'a> {
    /// Table name of the column just processed.
    pub table: &'a str,
    /// Column name of the column just processed.
    pub column: &'a str,
    /// 1-based index of this column in the migration.
    pub done: usize,
    /// Total number of columns to migrate.
    pub total: usize,
    /// Whether this column was skipped because a previous (interrupted) run already
    /// wrote its transcoded blob.
    pub resumed: bool,
}

/// What a [`migrate_catalog`] run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Format the source catalog was read in.
    pub from: FormatVersion,
    /// Format the destination catalog was written in (always the current format).
    pub to: FormatVersion,
    /// Total live columns in the destination catalog.
    pub columns: usize,
    /// Columns transcoded and written by this run.
    pub transcoded: usize,
    /// Columns skipped because an earlier interrupted run already wrote them.
    pub resumed: usize,
    /// Companion (cheap-tier) sketches backfilled into the destination so migrated
    /// catalogs can serve cascade queries.  Backfill is only possible when the
    /// companion is *derivable* from the stored primary — a KMV primary truncates
    /// exactly to a smaller-capacity KMV — because the source data is gone; other
    /// methods migrate companion-less and cascade queries over them fall back to
    /// the flat scan.
    pub backfilled: usize,
    /// Destination catalog root.
    pub dest: PathBuf,
}

/// The companion spec a migration derives from a v1 primary, when one is derivable.
///
/// Only a KMV primary qualifies: its bottom-`k` structure means dropping entries
/// beyond a smaller capacity yields **exactly** the sketch the smaller sketcher
/// would have built (same hash, same bottom-of-order prefix), so the backfilled
/// companion is bit-identical to one built from the raw data.  The derived capacity
/// is a quarter of the primary's (floored at the KMV minimum of 2), keeping the
/// cheap tier cheap.
#[must_use]
pub fn derived_companion_spec(primary: SketcherSpec) -> Option<SketcherSpec> {
    match primary.kind {
        SketcherKind::Kmv { capacity, seed } => Some(SketcherSpec::new(
            FormatVersion::CURRENT,
            SketcherKind::Kmv {
                capacity: (capacity / 4).max(2),
                seed,
            },
        )),
        _ => None,
    }
}

/// Truncates all three KMV sketches of a column to `capacity`, producing the
/// companion column a `capacity`-sized sketcher would have built from the raw data.
fn truncate_kmv_column(
    column: &SketchedColumn,
    capacity: usize,
) -> Result<SketchedColumn, CatalogError> {
    let shrink = |sketch: &AnySketch| -> Result<AnySketch, CatalogError> {
        match sketch {
            AnySketch::Kmv(s) => Ok(AnySketch::Kmv(s.truncated(capacity).map_err(|e| {
                CatalogError::Incompatible {
                    detail: format!(
                        "cannot derive companion for `{}.{}`: {e}",
                        column.table, column.column
                    ),
                }
            })?)),
            _ => Err(CatalogError::Incompatible {
                detail: format!(
                    "cannot derive a KMV companion for `{}.{}` from a non-KMV sketch",
                    column.table, column.column
                ),
            }),
        }
    };
    Ok(SketchedColumn::from_parts(
        &column.table,
        &column.column,
        column.rows,
        shrink(column.key_indicator())?,
        shrink(column.values())?,
        shrink(column.squared_values())?,
    ))
}

/// Migrates the catalog at `src` into a new catalog at `dest` under the current
/// format, calling `progress` after each column.  See the module docs for the
/// crash-safety contract; `src` is left untouched.
///
/// # Errors
///
/// Returns [`CatalogError::Incompatible`] if `src` is already the current format,
/// [`CatalogError::NotACatalog`] if `dest` already holds a manifest (an interrupted
/// run leaves no manifest, so a manifest means a *finished* catalog — refuse to
/// clobber it), plus anything [`Catalog::open`]/[`Catalog::load`] can return for a
/// damaged source, and [`CatalogError::Io`] for filesystem failures.
pub fn migrate_catalog(
    src: impl AsRef<Path>,
    dest: impl Into<PathBuf>,
    mut progress: impl FnMut(&MigrateProgress<'_>),
) -> Result<MigrationReport, CatalogError> {
    let src = Catalog::open(src.as_ref())?;
    let dest: PathBuf = dest.into();
    let from = src.format();
    if from >= FormatVersion::CURRENT {
        return Err(CatalogError::Incompatible {
            detail: format!(
                "catalog at `{}` is already format {} — nothing to migrate",
                src.root().display(),
                from.label()
            ),
        });
    }
    if dest.join(MANIFEST_FILE).exists() {
        return Err(CatalogError::NotACatalog {
            path: dest.display().to_string(),
            detail: "destination already holds a catalog manifest".to_string(),
        });
    }
    let dest_sketches = dest.join(SKETCH_DIR);
    fs::create_dir_all(&dest_sketches).map_err(|e| io_error(&dest, &e))?;

    let live: Vec<&ManifestEntry> = src.live_entries().collect();
    let total = live.len();
    let mut manifest = Manifest::new(src.spec().with_format(FormatVersion::CURRENT));
    // Backfill companions when they are derivable from the stored primaries (the
    // raw data is long gone, so derivation is the only honest option — anything
    // else would be a differently-seeded sketch masquerading as a companion).
    manifest.companion_spec = derived_companion_spec(src.spec());
    let mut transcoded = 0usize;
    let mut resumed = 0usize;
    let mut backfilled = 0usize;
    for (i, entry) in live.into_iter().enumerate() {
        // Full source-side validation: checksum, decode, spec match.
        let column = src.load_entry(entry)?;
        let file = format!("{i:06}.col");
        let expected = column.encode(FormatVersion::CURRENT);
        let blob_path = dest_sketches.join(&file);
        // Resume: a blob already byte-identical to the expected transcoding was
        // written by a previous interrupted run.  Anything else (partial, stale,
        // foreign) is rewritten atomically.
        let already = fs::read(&blob_path).is_ok_and(|existing| existing == expected);
        if already {
            resumed += 1;
        } else {
            write_atomic(&blob_path, &expected)?;
            transcoded += 1;
        }
        let companion = match &manifest.companion_spec {
            Some(spec) => {
                let SketcherKind::Kmv { capacity, .. } = spec.kind else {
                    unreachable!("derived companion specs are always KMV");
                };
                let derived = truncate_kmv_column(&column, capacity)?;
                let companion_file = format!("{i:06}.cmp");
                let companion_blob = derived.encode(FormatVersion::CURRENT);
                let companion_path = dest_sketches.join(&companion_file);
                if !fs::read(&companion_path).is_ok_and(|existing| existing == companion_blob) {
                    write_atomic(&companion_path, &companion_blob)?;
                }
                backfilled += 1;
                Some(CompanionRef {
                    file: companion_file,
                    blob_len: companion_blob.len() as u64,
                    checksum: fnv64(&companion_blob),
                })
            }
            None => None,
        };
        manifest.entries.push(ManifestEntry {
            table: entry.table.clone(),
            column: entry.column.clone(),
            rows: entry.rows,
            file,
            blob_len: expected.len() as u64,
            checksum: fnv64(&expected),
            dropped: false,
            companion,
        });
        progress(&MigrateProgress {
            table: &entry.table,
            column: &entry.column,
            done: i + 1,
            total,
            resumed: already,
        });
    }
    // The manifest lands last: its appearance is the atomic commit point that turns
    // the destination directory into a catalog.
    write_atomic(&dest.join(MANIFEST_FILE), &manifest.encode())?;
    Ok(MigrationReport {
        from,
        to: FormatVersion::CURRENT,
        columns: total,
        transcoded,
        resumed,
        backfilled,
        dest,
    })
}
