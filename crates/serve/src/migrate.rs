//! Catalog migration: upgrading a read-only format-v1 catalog to the current format.
//!
//! Migration is a pure **transcode**: every live column is loaded from the source
//! catalog (with the usual checksum and spec validation), re-encoded under the
//! current format's blob layout, and written into a *sibling* destination
//! directory.  The decoded sketch data is carried over bit-for-bit — only container
//! bytes change — so every estimate computed from the migrated catalog is
//! bit-identical to the source, for every method including Weighted MinHash (the
//! spec's record stream is preserved; the faster v2 stream applies to sketches
//! built *after* migration, under the writable format).
//!
//! The process is crash-safe and resumable:
//!
//! * The source catalog is never written to — not even on success.  The caller
//!   swaps directories (or just starts serving the destination) when it is ready.
//! * Each destination blob is written atomically; the destination manifest is
//!   written **last**, also atomically.  A killed migration leaves a directory
//!   without a manifest, which nothing will ever serve.
//! * Re-running the same migration skips destination blobs whose bytes already
//!   equal the expected transcoding ([`MigrationReport::resumed`] counts them), so
//!   resuming after a crash converges to the same catalog byte-for-byte.

use crate::catalog::{write_atomic, Catalog, MANIFEST_FILE, SKETCH_DIR};
use crate::error::{io_error, CatalogError};
use crate::manifest::{fnv64, Manifest, ManifestEntry};
use ipsketch_core::FormatVersion;
use std::fs;
use std::path::{Path, PathBuf};

/// Progress of one column through [`migrate_catalog`], fed to the progress callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateProgress<'a> {
    /// Table name of the column just processed.
    pub table: &'a str,
    /// Column name of the column just processed.
    pub column: &'a str,
    /// 1-based index of this column in the migration.
    pub done: usize,
    /// Total number of columns to migrate.
    pub total: usize,
    /// Whether this column was skipped because a previous (interrupted) run already
    /// wrote its transcoded blob.
    pub resumed: bool,
}

/// What a [`migrate_catalog`] run did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Format the source catalog was read in.
    pub from: FormatVersion,
    /// Format the destination catalog was written in (always the current format).
    pub to: FormatVersion,
    /// Total live columns in the destination catalog.
    pub columns: usize,
    /// Columns transcoded and written by this run.
    pub transcoded: usize,
    /// Columns skipped because an earlier interrupted run already wrote them.
    pub resumed: usize,
    /// Destination catalog root.
    pub dest: PathBuf,
}

/// Migrates the catalog at `src` into a new catalog at `dest` under the current
/// format, calling `progress` after each column.  See the module docs for the
/// crash-safety contract; `src` is left untouched.
///
/// # Errors
///
/// Returns [`CatalogError::Incompatible`] if `src` is already the current format,
/// [`CatalogError::NotACatalog`] if `dest` already holds a manifest (an interrupted
/// run leaves no manifest, so a manifest means a *finished* catalog — refuse to
/// clobber it), plus anything [`Catalog::open`]/[`Catalog::load`] can return for a
/// damaged source, and [`CatalogError::Io`] for filesystem failures.
pub fn migrate_catalog(
    src: impl AsRef<Path>,
    dest: impl Into<PathBuf>,
    mut progress: impl FnMut(&MigrateProgress<'_>),
) -> Result<MigrationReport, CatalogError> {
    let src = Catalog::open(src.as_ref())?;
    let dest: PathBuf = dest.into();
    let from = src.format();
    if from >= FormatVersion::CURRENT {
        return Err(CatalogError::Incompatible {
            detail: format!(
                "catalog at `{}` is already format {} — nothing to migrate",
                src.root().display(),
                from.label()
            ),
        });
    }
    if dest.join(MANIFEST_FILE).exists() {
        return Err(CatalogError::NotACatalog {
            path: dest.display().to_string(),
            detail: "destination already holds a catalog manifest".to_string(),
        });
    }
    let dest_sketches = dest.join(SKETCH_DIR);
    fs::create_dir_all(&dest_sketches).map_err(|e| io_error(&dest, &e))?;

    let live: Vec<&ManifestEntry> = src.live_entries().collect();
    let total = live.len();
    let mut manifest = Manifest::new(src.spec().with_format(FormatVersion::CURRENT));
    let mut transcoded = 0usize;
    let mut resumed = 0usize;
    for (i, entry) in live.into_iter().enumerate() {
        // Full source-side validation: checksum, decode, spec match.
        let column = src.load_entry(entry)?;
        let file = format!("{i:06}.col");
        let expected = column.encode(FormatVersion::CURRENT);
        let blob_path = dest_sketches.join(&file);
        // Resume: a blob already byte-identical to the expected transcoding was
        // written by a previous interrupted run.  Anything else (partial, stale,
        // foreign) is rewritten atomically.
        let already = fs::read(&blob_path).is_ok_and(|existing| existing == expected);
        if already {
            resumed += 1;
        } else {
            write_atomic(&blob_path, &expected)?;
            transcoded += 1;
        }
        manifest.entries.push(ManifestEntry {
            table: entry.table.clone(),
            column: entry.column.clone(),
            rows: entry.rows,
            file,
            blob_len: expected.len() as u64,
            checksum: fnv64(&expected),
            dropped: false,
        });
        progress(&MigrateProgress {
            table: &entry.table,
            column: &entry.column,
            done: i + 1,
            total,
            resumed: already,
        });
    }
    // The manifest lands last: its appearance is the atomic commit point that turns
    // the destination directory into a catalog.
    write_atomic(&dest.join(MANIFEST_FILE), &manifest.encode())?;
    Ok(MigrationReport {
        from,
        to: FormatVersion::CURRENT,
        columns: total,
        transcoded,
        resumed,
        dest,
    })
}
