//! Fault injection for the cluster runtime tests: a TCP proxy that sits
//! between a router and one catalog node and misbehaves on command.
//!
//! [`FaultProxy`] forwards bytes both ways like a transparent L4 proxy, but
//! its [`FaultMode`] — switchable at runtime through a shared handle — lets a
//! test turn the link pathological without touching the node process:
//!
//! * [`Passthrough`](FaultMode::Passthrough) — honest byte forwarding.
//! * [`StallForever`](FaultMode::StallForever) — accept, then forward
//!   nothing: the classic hung peer that only deadlines can unblock.
//! * [`StallThenResume`](FaultMode::StallThenResume) — hold every byte for a
//!   fixed pause, then behave; models GC pauses and network brownouts.
//! * [`DropAfter`](FaultMode::DropAfter) — forward N upstream bytes, then
//!   sever the connection mid-stream: a half-written response.
//! * [`Garbage`](FaultMode::Garbage) — answer protocol-shaped requests with
//!   bytes that are not the protocol at all.
//! * [`Reset`](FaultMode::Reset) — close every accepted connection
//!   immediately (the portable stand-in for a TCP RST: an abrupt EOF the
//!   instant the peer speaks).
//!
//! The proxy is deliberately thread-per-connection and `std`-only, like the
//! rest of the serving stack.  `tests/chaos_loopback.rs` drives a routed
//! cluster through every mode and asserts answers stay byte-identical to a
//! healthy single node; `examples/fault_proxy.rs` exposes the same modes as
//! a process for shell-driven CI smoke tests.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How the proxy treats connections, switchable at runtime via
/// [`FaultHandle::set_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Forward bytes both ways, unmodified.
    Passthrough,
    /// Accept and then forward nothing in either direction, forever.
    StallForever,
    /// Forward nothing for the pause, then forward normally.
    StallThenResume(Duration),
    /// Forward this many node→client bytes, then sever the connection.
    DropAfter(usize),
    /// Discard the client's bytes and answer with non-protocol garbage.
    Garbage,
    /// Close every accepted connection immediately (abrupt EOF — the
    /// portable stand-in for a TCP RST; `SO_LINGER(0)` is not stable Rust).
    Reset,
}

impl FaultMode {
    /// Parses the `examples/fault_proxy.rs` command-line spelling:
    /// `passthrough`, `stall`, `stall-then-resume:<ms>`, `drop-after:<n>`,
    /// `garbage`, `reset`.
    #[must_use]
    pub fn parse(text: &str) -> Option<FaultMode> {
        if let Some(ms) = text.strip_prefix("stall-then-resume:") {
            return ms
                .parse()
                .ok()
                .map(|ms: u64| FaultMode::StallThenResume(Duration::from_millis(ms)));
        }
        if let Some(n) = text.strip_prefix("drop-after:") {
            return n.parse().ok().map(FaultMode::DropAfter);
        }
        match text {
            "passthrough" => Some(FaultMode::Passthrough),
            "stall" => Some(FaultMode::StallForever),
            "garbage" => Some(FaultMode::Garbage),
            "reset" => Some(FaultMode::Reset),
            _ => None,
        }
    }
}

/// Shared control surface of a running [`FaultProxy`].
#[derive(Debug, Clone)]
pub struct FaultHandle {
    mode: Arc<Mutex<FaultMode>>,
}

impl FaultHandle {
    /// Switches the fault mode; connections accepted from now on see the new
    /// mode (in-flight connections keep the mode they started under).
    pub fn set_mode(&self, mode: FaultMode) {
        *self.mode.lock().expect("fault mode lock") = mode;
    }

    /// The currently configured mode.
    #[must_use]
    pub fn mode(&self) -> FaultMode {
        *self.mode.lock().expect("fault mode lock")
    }
}

/// A running fault-injection proxy: listens on a local port and forwards (or
/// sabotages) connections to one upstream address.
pub struct FaultProxy {
    addr: SocketAddr,
    handle: FaultHandle,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FaultProxy {
    /// Binds an ephemeral local port proxying to `upstream`, starting in
    /// `mode`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(upstream: impl Into<String>, mode: FaultMode) -> io::Result<FaultProxy> {
        FaultProxy::bind(
            "127.0.0.1:0".parse().expect("loopback addr"),
            upstream,
            mode,
        )
    }

    /// Binds `addr` proxying to `upstream`, starting in `mode`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: SocketAddr,
        upstream: impl Into<String>,
        mode: FaultMode,
    ) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let upstream = upstream.into();
        let handle = FaultHandle {
            mode: Arc::new(Mutex::new(mode)),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let threads = Arc::clone(&threads);
            thread::Builder::new()
                .name("fault-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = stream else { continue };
                        if let Ok(clone) = client.try_clone() {
                            conns.lock().expect("conns lock").push(clone);
                        }
                        let mode = handle.mode();
                        let upstream = upstream.clone();
                        let stop = Arc::clone(&stop);
                        let conns_for_thread = Arc::clone(&conns);
                        let worker = thread::Builder::new()
                            .name("fault-conn".to_string())
                            .spawn(move || {
                                serve_faulty(client, &upstream, mode, &stop, &conns_for_thread);
                            })
                            .expect("spawn fault connection thread");
                        threads.lock().expect("threads lock").push(worker);
                    }
                })?
        };
        Ok(FaultProxy {
            addr,
            handle,
            stop,
            accept: Some(accept),
            conns,
            threads,
        })
    }

    /// The proxy's listening address (`host:port` as a string, ready for a
    /// [`NodeSpec`](crate::router::NodeSpec)).
    #[must_use]
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The runtime mode switch.
    #[must_use]
    pub fn handle(&self) -> FaultHandle {
        self.handle.clone()
    }

    /// Stops accepting, severs every connection (stalled ones included), and
    /// joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for stream in self.conns.lock().expect("conns lock").drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let workers: Vec<_> = self
            .threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// Runs one accepted client connection under `mode`.
fn serve_faulty(
    client: TcpStream,
    upstream: &str,
    mode: FaultMode,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
) {
    match mode {
        FaultMode::Reset => {
            // Abrupt close before the peer can exchange a byte.
            let _ = client.shutdown(Shutdown::Both);
        }
        FaultMode::StallForever => {
            // Hold the socket open but never move a byte; a 50 ms poll keeps
            // shutdown responsive without a platform-specific wakeup.
            let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
            let mut sink = [0u8; 4096];
            let mut client = client;
            while !stop.load(Ordering::SeqCst) {
                match client.read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        }
        FaultMode::Garbage => {
            // Answer anything the client sends with bytes that are not the
            // protocol (not even UTF-8), then close.
            let mut buf = [0u8; 4096];
            let mut client = client;
            let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
            loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match client.read(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => {
                        if client
                            .write_all(&[0xff, 0xfe, 0x00, 0x13, 0x37, b'\n'])
                            .is_err()
                        {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
            let _ = client.shutdown(Shutdown::Both);
        }
        FaultMode::Passthrough => {
            forward(client, upstream, stop, conns, Duration::ZERO, usize::MAX)
        }
        FaultMode::StallThenResume(pause) => {
            forward(client, upstream, stop, conns, pause, usize::MAX)
        }
        FaultMode::DropAfter(limit) => {
            forward(client, upstream, stop, conns, Duration::ZERO, limit)
        }
    }
}

/// Transparent forwarding with an optional initial stall and an upstream→client
/// byte budget; the connection is severed once the budget is spent.
fn forward(
    client: TcpStream,
    upstream: &str,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    pause: Duration,
    mut downstream_budget: usize,
) {
    if !pause.is_zero() {
        // One bounded sleep, not a busy loop: resume (or bail on shutdown).
        let slept = Instant::now();
        while slept.elapsed() < pause {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(10).min(pause));
        }
    }
    let Ok(node) = TcpStream::connect(upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    if let Ok(clone) = node.try_clone() {
        conns.lock().expect("conns lock").push(clone);
    }
    let (Ok(mut client_read), Ok(mut node_read)) = (client.try_clone(), node.try_clone()) else {
        return;
    };
    let mut client_write = client;
    let mut node_write = node;
    // Client → node: plain pump on its own thread.
    let up_stop = Arc::clone(stop);
    let up = thread::Builder::new()
        .name("fault-up".to_string())
        .spawn(move || {
            let mut buf = [0u8; 16 * 1024];
            let _ = client_read.set_read_timeout(Some(Duration::from_millis(50)));
            loop {
                if up_stop.load(Ordering::SeqCst) {
                    break;
                }
                match client_read.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        if node_write.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
            let _ = node_write.shutdown(Shutdown::Write);
        })
        .expect("spawn fault upstream pump");
    // Node → client: budgeted pump inline.
    let mut buf = [0u8; 16 * 1024];
    let _ = node_read.set_read_timeout(Some(Duration::from_millis(50)));
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match node_read.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let granted = n.min(downstream_budget);
                if granted > 0 && client_write.write_all(&buf[..granted]).is_err() {
                    break;
                }
                downstream_budget -= granted;
                if downstream_budget == 0 {
                    // Budget spent: sever both directions mid-stream.
                    let _ = client_write.shutdown(Shutdown::Both);
                    let _ = node_read.shutdown(Shutdown::Both);
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let _ = client_write.shutdown(Shutdown::Both);
    let _ = up.join();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_modes_parse_their_cli_spellings() {
        assert_eq!(
            FaultMode::parse("passthrough"),
            Some(FaultMode::Passthrough)
        );
        assert_eq!(FaultMode::parse("stall"), Some(FaultMode::StallForever));
        assert_eq!(
            FaultMode::parse("stall-then-resume:250"),
            Some(FaultMode::StallThenResume(Duration::from_millis(250)))
        );
        assert_eq!(
            FaultMode::parse("drop-after:17"),
            Some(FaultMode::DropAfter(17))
        );
        assert_eq!(FaultMode::parse("garbage"), Some(FaultMode::Garbage));
        assert_eq!(FaultMode::parse("reset"), Some(FaultMode::Reset));
        assert_eq!(FaultMode::parse("nonsense"), None);
        assert_eq!(FaultMode::parse("drop-after:x"), None);
    }

    #[test]
    fn passthrough_proxies_bytes_and_reset_closes_immediately() {
        // A tiny echo upstream.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr").to_string();
        let echo = thread::spawn(move || {
            if let Ok((mut conn, _)) = upstream.accept() {
                let mut buf = [0u8; 64];
                if let Ok(n) = conn.read(&mut buf) {
                    let _ = conn.write_all(&buf[..n]);
                }
            }
        });
        let proxy = FaultProxy::start(upstream_addr, FaultMode::Passthrough).expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"ping\n").expect("write");
        let mut reply = [0u8; 5];
        client.read_exact(&mut reply).expect("read");
        assert_eq!(&reply, b"ping\n");
        echo.join().expect("echo thread");

        proxy.handle().set_mode(FaultMode::Reset);
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        let mut buf = [0u8; 1];
        // An immediate EOF (or a reset error) — never a successful byte.
        match client.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("reset proxy delivered {n} bytes"),
        }
        proxy.shutdown();
    }
}
