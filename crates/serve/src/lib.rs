//! The serving layer: persistent sketch catalogs and a query service over them.
//!
//! The paper's headline workflow — sketch every column of a data lake *once*, then
//! answer joinability/relatedness queries "using a fraction of the computational
//! resources" of materialized joins — only pays off if sketches outlive the process
//! that built them.  This crate makes them durable and servable:
//!
//! * [`catalog`] — an on-disk store of [`SketchedColumn`](ipsketch_join::SketchedColumn)
//!   blobs under a versioned manifest ([`manifest`]) that records the full sketcher
//!   configuration, so incompatible sketches are rejected at load time.
//! * [`service`] — a [`QueryService`] that lazily hydrates
//!   catalog sketches into an in-memory
//!   [`SketchIndex`](ipsketch_join::SketchIndex), ingests new tables (one-shot,
//!   chunk-partitioned, or shard-partial via the two-pass announced-norm protocol),
//!   and answers single and batched queries.
//! * [`cli`] + the `ipsketch` binary — `catalog init` / `ingest` / `ingest-partial` /
//!   `query` / `info` / `serve`, driving the whole flow from CSV files with no code.
//! * [`csv`] — the tiny dependency-free CSV-to-[`Table`](ipsketch_data::Table) reader
//!   the CLI uses.
//! * [`wire`] + [`protocol`] — the line-delimited JSON wire format (normative spec in
//!   `docs/PROTOCOL.md`) and its typed request/response model, compiled and tested
//!   with or without the server itself.
//! * [`http`] — the HTTP/1.1 binding of the same protocol (routes, framing, status
//!   mapping), pure data like [`protocol`]: the server wires it to sockets, but the
//!   parser and encoder are tier-1 tested featureless.
//! * [`migrate`] — crash-safe, resumable transcoding of a read-only format-v1
//!   catalog into the current format (`ipsketch catalog migrate`), with estimates
//!   preserved bit-for-bit.
//! * [`metrics`] — lock-free server observability: per-op log-bucketed latency
//!   histograms, request/error counters, connection/queue gauges, snapshotted into
//!   the `info` op's optional `server` member.
//! * [`server`] (feature `server`) — the concurrent network front end: a `poll(2)`
//!   reactor driving both framers (line-delimited TCP and HTTP/1.1), a worker pool
//!   over a read-write-locked [`QueryService`], concurrent shard-partial ingest
//!   sessions, configured overload shedding, and background catalog compaction.
//! * [`router`] (feature `server`) — the multi-node front end: rendezvous-hashed
//!   column placement with replication, fan-out reads merged under the
//!   deterministic total order, per-attempt deadlines with idempotent-only
//!   retries, a health lifecycle (threshold demotion, background probing),
//!   live rebalance between node lists, and the cross-node announced-norm
//!   round for wire-driven sharded ingest (`docs/PROTOCOL.md` § Cluster
//!   routing and § Timeouts, retries, and idempotency).
//! * [`faults`] (feature `server`) — the fault-injection TCP proxy the chaos
//!   suite and CI drive to prove the router's deadlines, failover, and
//!   health lifecycle under stalled, byte-dropping, garbage-speaking, and
//!   connection-resetting nodes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cli;
pub mod csv;
pub mod error;
#[cfg(feature = "server")]
pub mod faults;
pub mod http;
pub mod manifest;
pub mod metrics;
pub mod migrate;
pub mod protocol;
#[cfg(feature = "server")]
pub mod router;
#[cfg(feature = "server")]
pub mod server;
pub mod service;
pub mod wire;

pub use catalog::Catalog;
pub use error::CatalogError;
pub use manifest::{CompanionRef, Manifest, ManifestEntry};
pub use migrate::{derived_companion_spec, migrate_catalog, MigrationReport};
pub use service::{
    shard_rows, CascadeNote, IngestReport, QueryService, ServiceStats, ShardedIngestState,
    NOTE_CASCADE_FALLBACK,
};
