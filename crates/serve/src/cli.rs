//! The `ipsketch` command-line interface.
//!
//! Drives the whole serving workflow without writing code:
//!
//! ```text
//! ipsketch catalog init <dir> --method wmh --budget 400 [--seed 7] [--wmh-l 16777216]
//!                             [--no-companion]
//! ipsketch catalog compact <dir>
//! ipsketch catalog migrate <dir> <dest-dir>
//! ipsketch ingest <dir> <csv> [--table <name>] [--partitions <n>]
//! ipsketch ingest-partial <dir> <csv> --shards <n> [--table <name>]
//! ipsketch query <dir> <csv> --column <name> [--table <name>] [--top <k>]
//!                            [--relatedness] [--min-join-size <x>]
//!                            [--cascade | --no-cascade]
//! ipsketch info <dir>
//! ```
//!
//! CSV files are `key,<col>,…` with a u64 join key (see [`crate::csv`]).  Argument
//! parsing is hand-rolled: the build environment is offline, and the surface is small
//! enough that a dependency would cost more than it saves.

use crate::catalog::Catalog;
use crate::csv::{load_table, CsvError};
use crate::error::CatalogError;
use crate::service::{shard_rows, IngestReport, QueryService};
use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_join::JoinError;
use std::fmt;
use std::io::Write;
use std::path::Path;

/// Errors surfaced by the CLI, each mapping to a distinct failure the user can act on.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed.
    Usage(String),
    /// A catalog/service operation failed.
    Catalog(CatalogError),
    /// A join-layer operation failed (e.g. the query column is missing).
    Join(JoinError),
    /// A CSV file did not parse.
    Csv(CsvError),
    /// Writing output failed.
    Io(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(detail) => write!(f, "usage error: {detail}"),
            CliError::Catalog(e) => write!(f, "{e}"),
            CliError::Join(e) => write!(f, "{e}"),
            CliError::Csv(e) => write!(f, "{e}"),
            CliError::Io(detail) => write!(f, "output error: {detail}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<CatalogError> for CliError {
    fn from(e: CatalogError) -> Self {
        CliError::Catalog(e)
    }
}

impl From<JoinError> for CliError {
    fn from(e: JoinError) -> Self {
        CliError::Join(e)
    }
}

impl From<CsvError> for CliError {
    fn from(e: CsvError) -> Self {
        CliError::Csv(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e.to_string())
    }
}

/// The usage text printed for `help` and usage errors.
#[must_use]
pub fn usage() -> String {
    "ipsketch — persistent sketch catalogs and joinability/relatedness queries

USAGE:
  ipsketch catalog init <dir> --method <jl|cs|mh|kmv|wmh|simhash|icws> --budget <doubles>
                       [--seed <n>] [--wmh-l <L>] [--no-companion]
  ipsketch catalog compact <dir>
  ipsketch catalog migrate <dir> <dest-dir>
  ipsketch ingest <dir> <csv> [--table <name>] [--partitions <n>]
  ipsketch ingest-partial <dir> <csv> --shards <n> [--table <name>]
  ipsketch query <dir> <csv> --column <name> [--table <name>] [--top <k>]
                       [--relatedness] [--min-join-size <x>]
                       [--cascade | --no-cascade]
  ipsketch info <dir>
  ipsketch serve <dir> [--addr <host:port>] [--http <host:port>] [--workers <n>]
                       [--max-connections <n>] [--queue-depth <n>]
                       [--session-ttl-secs <s>] [--maintenance-secs <s>]
                       (requires the `server` feature; at least one bind address)
  ipsketch route --addr <host:port> --node <host:port> [--node <host:port> …]
                       [--http-node <host:port> …] [--replicas <n>]
                       [--read-timeout-ms <ms>] [--probe-ms <ms>]
                       [--failure-threshold <n>]
                       (requires the `server` feature)
  ipsketch rebalance --from <host:port> [--from …] --to <host:port> [--to …]
                       [--replicas <n>] [--read-timeout-ms <ms>]
                       (requires the `server` feature)
  ipsketch help

CSV files carry a header `key,<col>,…`: a u64 join key, then f64 value columns.
`ingest` sketches each column once (optionally via the chunk-and-merge path);
`ingest-partial` splits the rows into shards and runs the two-pass announced-norm
protocol, folding per-shard partial sketches exactly as a distributed deployment
would.  `query` ranks every cataloged column against the query column by estimated
join size (default) or |post-join correlation| (--relatedness); `--cascade` answers
joinability through the tiered cascade (cheap-sketch prefilter, then the primary
rerank — same ranking, fewer full estimates) when the catalog stores companion
sketches, falling back to the flat scan with a printed note when it does not.
`serve` puts the
catalog behind the concurrent network front end — line-delimited JSON over TCP
(--addr) and/or the HTTP/1.1 binding (--http, curl-able) — and runs until killed;
protocol spec in docs/PROTOCOL.md.  `route` fronts several `serve` nodes as one
cluster: `(table, column)` keys are placed on --replicas nodes by rendezvous
hashing, queries fan out and merge deterministically, and a lost node fails over
to its replicas (docs/PROTOCOL.md § Cluster routing; --node speaks line-TCP,
--http-node the HTTP/1.1 binding).  Routed requests run under per-attempt
deadlines (--read-timeout-ms, default 10000): idempotent reads retry and fail
over, writes fail fast with `deadline_exceeded`; a node that fails
--failure-threshold reads in a row (default 1) is demoted and re-probed every
--probe-ms (default 1000, 0 disables) until it answers again (docs/PROTOCOL.md
§ Timeouts, retries, and idempotency).  `rebalance` live-migrates a cluster:
every sketch on the --from nodes is copied byte-identically onto its rendezvous
owners among the --to nodes (resumable — already-placed copies are skipped);
flip routers to the new node list once it reports done.  `catalog compact`
reclaims tombstoned and
orphaned sketch blobs; `catalog migrate` transcodes an old-format catalog into a
fresh directory at the current format (the source is never modified, and an
interrupted migration resumes where it stopped)."
        .to_string()
}

/// Minimal parsed command line: positional arguments, `--flag value` pairs, and
/// boolean `--switch`es.
struct ParsedArgs {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl ParsedArgs {
    /// Splits `args` into positionals, value flags and switches.  `flag_names` lists
    /// the flags that take a value and `switch_names` those that do not; anything
    /// else starting with `--` is a usage error, so a misspelled option can never be
    /// silently ignored and run the command with defaults.
    fn parse(
        args: &[String],
        flag_names: &[&str],
        switch_names: &[&str],
    ) -> Result<Self, CliError> {
        let mut parsed = ParsedArgs {
            positional: Vec::new(),
            flags: Vec::new(),
            switches: Vec::new(),
        };
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(name) = arg.strip_prefix("--") {
                if switch_names.contains(&name) {
                    parsed.switches.push(name.to_string());
                } else if flag_names.contains(&name) {
                    let value = args.get(i + 1).ok_or_else(|| {
                        CliError::Usage(format!("flag `--{name}` expects a value"))
                    })?;
                    parsed.flags.push((name.to_string(), value.clone()));
                    i += 1;
                } else {
                    let mut known: Vec<String> = flag_names
                        .iter()
                        .chain(switch_names)
                        .map(|n| format!("--{n}"))
                        .collect();
                    known.sort();
                    return Err(CliError::Usage(format!(
                        "unknown flag `--{name}` (this command accepts: {})",
                        if known.is_empty() {
                            "no flags".to_string()
                        } else {
                            known.join(", ")
                        }
                    )));
                }
            } else {
                parsed.positional.push(arg.clone());
            }
            i += 1;
        }
        Ok(parsed)
    }

    /// Every value given for a repeatable flag, in command-line order.
    fn flag_values(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn positional(&self, index: usize, what: &str) -> Result<&str, CliError> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))
    }

    fn parsed_flag<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.flag(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("flag `--{name}` has invalid value `{raw}`"))),
        }
    }
}

/// Runs one CLI invocation, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns [`CliError`]; the binary maps [`CliError::Usage`] to exit code 2 and
/// everything else to exit code 1.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let command = args
        .first()
        .map(String::as_str)
        .ok_or_else(|| CliError::Usage("no command given".to_string()))?;
    match command {
        "catalog" => {
            let sub = args.get(1).map(String::as_str).ok_or_else(|| {
                CliError::Usage("`catalog` expects `init`, `compact` or `migrate`".to_string())
            })?;
            match sub {
                "init" => catalog_init(&args[2..], out),
                "compact" => catalog_compact(&args[2..], out),
                "migrate" => catalog_migrate(&args[2..], out),
                other => Err(CliError::Usage(format!(
                    "unknown catalog subcommand `{other}` (expected `init`, `compact` or `migrate`)"
                ))),
            }
        }
        "ingest" => ingest(&args[1..], out),
        "ingest-partial" => ingest_partial(&args[1..], out),
        "query" => query(&args[1..], out),
        "info" => info(&args[1..], out),
        "serve" => serve(&args[1..], out),
        "route" => route(&args[1..], out),
        "rebalance" => rebalance(&args[1..], out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{}", usage())?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn catalog_init(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(
        args,
        &["method", "budget", "seed", "wmh-l"],
        &["no-companion"],
    )?;
    let dir = parsed.positional(0, "catalog directory")?;
    let method_name = parsed
        .flag("method")
        .ok_or_else(|| CliError::Usage("`catalog init` requires --method".to_string()))?;
    let method = SketchMethod::parse(method_name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown method `{method_name}` (expected jl, cs, mh, kmv, wmh, simhash or icws)"
        ))
    })?;
    let budget: f64 = parsed
        .parsed_flag("budget")?
        .ok_or_else(|| CliError::Usage("`catalog init` requires --budget".to_string()))?;
    let seed: u64 = parsed.parsed_flag("seed")?.unwrap_or(1);
    let spec = match parsed.parsed_flag::<u64>("wmh-l")? {
        Some(l) => AnySketcher::for_budget_with_discretization(method, budget, seed, l)
            .map_err(CatalogError::Sketch)?
            .spec(),
        None => AnySketcher::for_budget(method, budget, seed)
            .map_err(CatalogError::Sketch)?
            .spec(),
    };
    // Companions on by default, matching `QueryService::create`: a fresh
    // catalog should serve `query --cascade` without falling back.
    let companion = (!parsed.switch("no-companion")).then(|| Catalog::default_companion_spec(spec));
    let catalog = Catalog::init_with_companion(dir, spec, companion)?;
    let companion_label = match catalog.companion_spec() {
        Some(c) => format!("companion {c}"),
        None => "no companion".to_string(),
    };
    writeln!(
        out,
        "initialized catalog at {} with sketcher {}, {companion_label} (fingerprint {:016x})",
        catalog.root().display(),
        spec,
        spec.fingerprint()
    )?;
    Ok(())
}

/// `catalog compact <dir>`: drop unreferenced and tombstoned sketch blobs and
/// print what was reclaimed.
fn catalog_compact(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(args, &[], &[])?;
    let dir = parsed.positional(0, "catalog directory")?;
    let mut catalog = Catalog::open(dir)?;
    let report = catalog.compact()?;
    for file in &report.removed_files {
        writeln!(out, "removed {file}")?;
    }
    writeln!(
        out,
        "compacted catalog at {}: removed {} files, {} live columns",
        catalog.root().display(),
        report.removed_files.len(),
        report.live_columns
    )?;
    Ok(())
}

/// `catalog migrate <dir> <dest-dir>`: transcode an old-format catalog into a fresh
/// directory at the current format, printing per-column progress.  The source is
/// never modified; rerunning after an interruption resumes where it stopped.
fn catalog_migrate(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(args, &[], &[])?;
    let src = parsed.positional(0, "source catalog directory")?;
    let dest = parsed.positional(1, "destination directory")?;
    let mut lines: Vec<String> = Vec::new();
    let report = crate::migrate::migrate_catalog(src, dest, |p| {
        lines.push(format!(
            "[{}/{}] {}.{} {}",
            p.done,
            p.total,
            p.table,
            p.column,
            if p.resumed {
                "already migrated (resumed)"
            } else {
                "transcoded"
            }
        ));
    })?;
    for line in lines {
        writeln!(out, "{line}")?;
    }
    writeln!(
        out,
        "migrated catalog {src} ({} -> {}) into {}: {} columns ({} transcoded, {} resumed)",
        report.from.label(),
        report.to.label(),
        report.dest.display(),
        report.columns,
        report.transcoded,
        report.resumed
    )?;
    Ok(())
}

fn write_report(out: &mut dyn Write, report: &IngestReport, how: &str) -> Result<(), CliError> {
    for (table, column) in &report.registered {
        writeln!(out, "registered {table}.{column} ({how})")?;
    }
    for column in &report.skipped {
        writeln!(out, "skipped {column}: no value mass (all zeros)")?;
    }
    Ok(())
}

fn ingest(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(args, &["table", "partitions"], &[])?;
    let dir = parsed.positional(0, "catalog directory")?;
    let csv = parsed.positional(1, "CSV file")?;
    let table = load_table(Path::new(csv), parsed.flag("table"))?;
    let mut service = QueryService::open(dir)?;
    let report = match parsed.parsed_flag::<usize>("partitions")? {
        Some(partitions) => {
            let report = service.ingest_table_partitioned(&table, partitions)?;
            write_report(out, &report, &format!("{partitions} merged partitions"))?;
            report
        }
        None => {
            let report = service.ingest_table(&table)?;
            write_report(out, &report, "one-shot")?;
            report
        }
    };
    writeln!(
        out,
        "catalog now holds {} columns ({} new)",
        service.catalog().len(),
        report.registered.len()
    )?;
    Ok(())
}

fn ingest_partial(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(args, &["shards", "table"], &[])?;
    let dir = parsed.positional(0, "catalog directory")?;
    let csv = parsed.positional(1, "CSV file")?;
    let shards: usize = parsed
        .parsed_flag("shards")?
        .ok_or_else(|| CliError::Usage("`ingest-partial` requires --shards".to_string()))?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".to_string()));
    }
    let table = load_table(Path::new(csv), parsed.flag("table"))?;
    let mut service = QueryService::open(dir)?;
    let shard_tables = shard_rows(&table, shards);
    let mut session = service.begin_sharded_ingest(table.name());
    // First pass: every shard announces its Σv² partial sums.
    for shard in &shard_tables {
        session.announce(shard)?;
    }
    // Second pass: every shard sketches against the agreed norms; partials fold.
    for shard in &shard_tables {
        session.submit(service.estimator(), shard)?;
    }
    let report = service.finish_sharded_ingest(session)?;
    write_report(
        out,
        &report,
        &format!("{} shard partials folded", shard_tables.len()),
    )?;
    writeln!(
        out,
        "catalog now holds {} columns ({} new)",
        service.catalog().len(),
        report.registered.len()
    )?;
    Ok(())
}

fn query(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(
        args,
        &["column", "table", "top", "min-join-size"],
        &["relatedness", "cascade", "no-cascade"],
    )?;
    let dir = parsed.positional(0, "catalog directory")?;
    let csv = parsed.positional(1, "query CSV file")?;
    let column = parsed
        .flag("column")
        .ok_or_else(|| CliError::Usage("`query` requires --column".to_string()))?;
    let top: usize = parsed.parsed_flag("top")?.unwrap_or(10);
    let min_join_size: f64 = parsed.parsed_flag("min-join-size")?.unwrap_or(0.0);
    let cascade = parsed.switch("cascade");
    if cascade && parsed.switch("no-cascade") {
        return Err(CliError::Usage(
            "--cascade and --no-cascade are mutually exclusive".to_string(),
        ));
    }
    if cascade && parsed.switch("relatedness") {
        return Err(CliError::Usage(
            "--cascade applies to joinability queries only (drop --relatedness)".to_string(),
        ));
    }
    let table = load_table(Path::new(csv), parsed.flag("table"))?;
    let mut service = QueryService::open(dir)?;
    let query_sketch = service.sketch_query(&table, column)?;
    let ranked = if parsed.switch("relatedness") {
        service.query_related(&query_sketch, top, min_join_size)?
    } else if cascade {
        let companion_sketch = service.sketch_query_companion(&table, column)?;
        let (ranked, note) = service.query_joinable_cascade(
            &query_sketch,
            companion_sketch.as_ref(),
            top,
            ipsketch_join::DEFAULT_CASCADE_CONFIDENCE,
        )?;
        if let Some(note) = note {
            writeln!(out, "note ({}): {}", note.code, note.message)?;
        }
        ranked
    } else {
        service.query_joinable(&query_sketch, top)?
    };
    let metric = if parsed.switch("relatedness") {
        "|corr|"
    } else {
        "join"
    };
    writeln!(
        out,
        "top {} columns by estimated {metric} for {}.{column} over {} cataloged columns:",
        ranked.len(),
        table.name(),
        service.catalog().len()
    )?;
    writeln!(
        out,
        "{:<4} {:<28} {:>12} {:>10}",
        "rank", "column", "join_size", "corr"
    )?;
    for (rank, result) in ranked.iter().enumerate() {
        writeln!(
            out,
            "{:<4} {:<28} {:>12.2} {:>10.4}",
            rank + 1,
            format!("{}.{}", result.id.table, result.id.column),
            result.estimated_join_size,
            result.estimated_correlation,
        )?;
    }
    Ok(())
}

/// Everything the `serve` subcommand parses, resolved outside the feature gate so a
/// build without the `server` feature still validates flags and reports a helpful
/// error instead of "unknown command".
#[cfg_attr(not(feature = "server"), allow(dead_code))]
struct ServeOptions {
    tcp: Option<String>,
    http: Option<String>,
    workers: Option<usize>,
    max_connections: Option<usize>,
    queue_depth: Option<usize>,
    session_ttl_secs: Option<u64>,
    maintenance_secs: Option<u64>,
}

/// `serve <dir> [--addr host:port] [--http host:port] [--workers n] …`: run the
/// network front end over a catalog until the process is killed.  At least one of
/// `--addr` (line-delimited TCP) and `--http` (HTTP/1.1 binding) is required.
fn serve(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(
        args,
        &[
            "addr",
            "http",
            "workers",
            "max-connections",
            "queue-depth",
            "session-ttl-secs",
            "maintenance-secs",
        ],
        &[],
    )?;
    let dir = parsed.positional(0, "catalog directory")?;
    let options = ServeOptions {
        tcp: parsed.flag("addr").map(str::to_string),
        http: parsed.flag("http").map(str::to_string),
        workers: parsed.parsed_flag("workers")?,
        max_connections: parsed.parsed_flag("max-connections")?,
        queue_depth: parsed.parsed_flag("queue-depth")?,
        session_ttl_secs: parsed.parsed_flag("session-ttl-secs")?,
        maintenance_secs: parsed.parsed_flag("maintenance-secs")?,
    };
    if options.tcp.is_none() && options.http.is_none() {
        return Err(CliError::Usage(
            "`serve` requires at least one bind address: --addr host:port (TCP) \
             and/or --http host:port (HTTP/1.1)"
                .to_string(),
        ));
    }
    serve_impl(dir, &options, out)
}

#[cfg(feature = "server")]
fn serve_impl(dir: &str, options: &ServeOptions, out: &mut dyn Write) -> Result<(), CliError> {
    use std::time::Duration;
    let mut builder = crate::server::ServerConfig::builder();
    if let Some(addr) = &options.tcp {
        builder = builder.tcp(addr);
    }
    if let Some(addr) = &options.http {
        builder = builder.http(addr);
    }
    if let Some(workers) = options.workers {
        builder = builder.workers(workers);
    }
    if let Some(cap) = options.max_connections {
        builder = builder.max_connections(cap);
    }
    if let Some(depth) = options.queue_depth {
        builder = builder.max_queue_depth(depth);
    }
    if let Some(secs) = options.session_ttl_secs {
        builder = builder.session_ttl(Duration::from_secs(secs));
    }
    if let Some(secs) = options.maintenance_secs {
        builder = builder.maintenance_interval(if secs == 0 {
            None
        } else {
            Some(Duration::from_secs(secs))
        });
    }
    // Config validation first, then the catalog, then sockets: a bad flag should
    // never leave a half-bound server behind.
    let config = builder
        .build()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    let service = QueryService::open(dir)?;
    let columns = service.catalog().len();
    let handle = crate::server::serve(service, config)
        .map_err(|e| CliError::Io(format!("cannot serve catalog `{dir}`: {e}")))?;
    if let Some(addr) = handle.tcp_addr() {
        writeln!(
            out,
            "serving catalog {dir} ({columns} columns) on tcp {addr} — protocol v{}, one JSON request per line (docs/PROTOCOL.md)",
            crate::protocol::PROTOCOL_VERSION
        )?;
    }
    if let Some(addr) = handle.http_addr() {
        writeln!(
            out,
            "serving catalog {dir} ({columns} columns) on http {addr} — POST /v1/<op>, GET /v1/info (docs/PROTOCOL.md, HTTP/1.1 binding)",
        )?;
    }
    out.flush()?;
    // Serve until killed.  `wait` only returns if the server dies on its own (a
    // fatal reactor error dropped the listeners); exiting with an error then is
    // strictly better than lingering as a live-looking process nothing can reach.
    handle.wait();
    Err(CliError::Io(
        "server terminated unexpectedly (fatal reactor I/O error); the listeners are closed"
            .to_string(),
    ))
}

#[cfg(not(feature = "server"))]
fn serve_impl(_dir: &str, _options: &ServeOptions, _out: &mut dyn Write) -> Result<(), CliError> {
    Err(CliError::Usage(
        "this build has no network front end; rebuild with `--features server` \
         (cargo build --release -p ipsketch-serve --features server --bin ipsketch)"
            .to_string(),
    ))
}

/// Everything the `route` subcommand parses; resolved outside the feature gate
/// like [`ServeOptions`].
#[cfg_attr(not(feature = "server"), allow(dead_code))]
struct RouteOptions {
    addr: String,
    tcp_nodes: Vec<String>,
    http_nodes: Vec<String>,
    replicas: usize,
    read_timeout_ms: Option<u64>,
    probe_ms: Option<u64>,
    failure_threshold: Option<u64>,
}

/// `route --addr host:port --node host:port [--node …] [--http-node …]
/// [--replicas n] [--read-timeout-ms ms] [--probe-ms ms]
/// [--failure-threshold n]`: front several catalog nodes as one cluster,
/// running until the process is killed.
fn route(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(
        args,
        &[
            "addr",
            "node",
            "http-node",
            "replicas",
            "read-timeout-ms",
            "probe-ms",
            "failure-threshold",
        ],
        &[],
    )?;
    if let Some(extra) = parsed.positional.first() {
        return Err(CliError::Usage(format!(
            "`route` takes no positional arguments (got `{extra}`)"
        )));
    }
    let options = RouteOptions {
        addr: parsed
            .flag("addr")
            .ok_or_else(|| CliError::Usage("`route` requires --addr host:port".to_string()))?
            .to_string(),
        tcp_nodes: parsed
            .flag_values("node")
            .iter()
            .map(|s| s.to_string())
            .collect(),
        http_nodes: parsed
            .flag_values("http-node")
            .iter()
            .map(|s| s.to_string())
            .collect(),
        replicas: parsed.parsed_flag("replicas")?.unwrap_or(2),
        read_timeout_ms: parsed.parsed_flag("read-timeout-ms")?,
        probe_ms: parsed.parsed_flag("probe-ms")?,
        failure_threshold: parsed.parsed_flag("failure-threshold")?,
    };
    if options.read_timeout_ms == Some(0) {
        return Err(CliError::Usage(
            "`--read-timeout-ms 0` would let every routed request block forever; \
             pick a positive deadline"
                .to_string(),
        ));
    }
    if options.tcp_nodes.is_empty() && options.http_nodes.is_empty() {
        return Err(CliError::Usage(
            "`route` requires at least one catalog node: --node host:port (line-TCP) \
             and/or --http-node host:port (HTTP/1.1)"
                .to_string(),
        ));
    }
    route_impl(&options, out)
}

#[cfg(feature = "server")]
fn route_impl(options: &RouteOptions, out: &mut dyn Write) -> Result<(), CliError> {
    use crate::router::{serve_router, NodeSpec, RetryPolicy, Router, RouterConfig};
    use std::net::ToSocketAddrs;
    use std::time::Duration;
    let bind = options
        .addr
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .ok_or_else(|| {
            CliError::Usage(format!(
                "--addr `{}` is not a bindable host:port",
                options.addr
            ))
        })?;
    let nodes: Vec<NodeSpec> = options
        .tcp_nodes
        .iter()
        .map(NodeSpec::tcp)
        .chain(options.http_nodes.iter().map(NodeSpec::http))
        .collect();
    let mut config = RouterConfig::new(nodes).replicas(options.replicas);
    if let Some(ms) = options.read_timeout_ms {
        config = config.retry(RetryPolicy::with_timeout(Duration::from_millis(ms)));
    }
    if let Some(ms) = options.probe_ms {
        // 0 turns the background prober off; demoted nodes then only return
        // when regular traffic reaches them again.
        config = config.probe_interval((ms > 0).then(|| Duration::from_millis(ms)));
    }
    if let Some(threshold) = options.failure_threshold {
        config = config.failure_threshold(threshold);
    }
    // Placement is validated before any socket binds, like `serve`.
    let router = Router::with_config(config).map_err(|e| CliError::Usage(e.to_string()))?;
    let replicas = router.replicas();
    let node_count = router.nodes().len();
    let handle = serve_router(router, bind)
        .map_err(|e| CliError::Io(format!("cannot bind router on `{}`: {e}", options.addr)))?;
    writeln!(
        out,
        "routing {node_count} catalog nodes (replication {replicas}) on tcp {} — protocol v{}, \
         one JSON request per line (docs/PROTOCOL.md § Cluster routing)",
        handle.addr(),
        crate::protocol::PROTOCOL_VERSION
    )?;
    out.flush()?;
    // Route until killed; nodes are dialed lazily, so a node that is still
    // booting only fails the requests that need it.
    handle.wait();
    Ok(())
}

#[cfg(not(feature = "server"))]
fn route_impl(_options: &RouteOptions, _out: &mut dyn Write) -> Result<(), CliError> {
    Err(CliError::Usage(
        "this build has no network front end; rebuild with `--features server` \
         (cargo build --release -p ipsketch-serve --features server --bin ipsketch)"
            .to_string(),
    ))
}

/// Everything the `rebalance` subcommand parses; resolved outside the feature
/// gate like [`RouteOptions`].
#[cfg_attr(not(feature = "server"), allow(dead_code))]
struct RebalanceOptions {
    from: Vec<String>,
    to: Vec<String>,
    replicas: usize,
    read_timeout_ms: Option<u64>,
}

/// `rebalance --from host:port [--from …] --to host:port [--to …]
/// [--replicas n] [--read-timeout-ms ms]`: copy every sketch held by the old
/// node list onto its rendezvous owners in the new list, then report.
fn rebalance(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(args, &["from", "to", "replicas", "read-timeout-ms"], &[])?;
    if let Some(extra) = parsed.positional.first() {
        return Err(CliError::Usage(format!(
            "`rebalance` takes no positional arguments (got `{extra}`)"
        )));
    }
    let options = RebalanceOptions {
        from: parsed
            .flag_values("from")
            .iter()
            .map(|s| s.to_string())
            .collect(),
        to: parsed
            .flag_values("to")
            .iter()
            .map(|s| s.to_string())
            .collect(),
        replicas: parsed.parsed_flag("replicas")?.unwrap_or(2),
        read_timeout_ms: parsed.parsed_flag("read-timeout-ms")?,
    };
    if options.from.is_empty() || options.to.is_empty() {
        return Err(CliError::Usage(
            "`rebalance` requires at least one --from host:port and one --to host:port \
             (both line-TCP catalog nodes)"
                .to_string(),
        ));
    }
    rebalance_impl(&options, out)
}

#[cfg(feature = "server")]
fn rebalance_impl(options: &RebalanceOptions, out: &mut dyn Write) -> Result<(), CliError> {
    use crate::router::{rebalance, NodeSpec, RetryPolicy};
    use std::time::Duration;
    let from: Vec<NodeSpec> = options.from.iter().map(NodeSpec::tcp).collect();
    let to: Vec<NodeSpec> = options.to.iter().map(NodeSpec::tcp).collect();
    let retry = options
        .read_timeout_ms
        .map_or_else(RetryPolicy::default, |ms| {
            RetryPolicy::with_timeout(Duration::from_millis(ms))
        });
    let report = rebalance(&from, &to, options.replicas, &retry)
        .map_err(|e| CliError::Io(format!("rebalance failed: {} ({})", e.message, e.code)))?;
    writeln!(
        out,
        "rebalanced {} column sketches onto {} nodes (replication {}): {} copied, {} already \
         placed — flip routers to the new node list now (byte-identical answers before, during \
         and after; re-running is a no-op)",
        report.keys,
        options.to.len(),
        options.replicas.min(options.to.len()),
        report.copied,
        report.already_placed
    )?;
    Ok(())
}

#[cfg(not(feature = "server"))]
fn rebalance_impl(_options: &RebalanceOptions, _out: &mut dyn Write) -> Result<(), CliError> {
    Err(CliError::Usage(
        "this build has no network front end; rebuild with `--features server` \
         (cargo build --release -p ipsketch-serve --features server --bin ipsketch)"
            .to_string(),
    ))
}

fn info(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(args, &[], &[])?;
    let dir = parsed.positional(0, "catalog directory")?;
    let service = QueryService::open(dir)?;
    let stats = service.stats();
    writeln!(out, "catalog: {}", service.catalog().root().display())?;
    writeln!(out, "format: {}", stats.format)?;
    writeln!(out, "sketcher: {}", stats.sketcher)?;
    writeln!(out, "fingerprint: {}", stats.fingerprint)?;
    writeln!(out, "method: {}", stats.method)?;
    writeln!(
        out,
        "columns: {} ({} hydrated, {} sketch bytes on disk)",
        stats.columns, stats.hydrated, stats.bytes_on_disk
    )?;
    if let Some(compaction) = &stats.last_compaction {
        writeln!(
            out,
            "last compaction: removed {} files, {} live columns",
            compaction.removed_files.len(),
            compaction.live_columns
        )?;
    }
    for entry in service.catalog().live_entries() {
        writeln!(
            out,
            "  {}.{} — {} rows, {} bytes ({})",
            entry.table, entry.column, entry.rows, entry.blob_len, entry.file
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ipsketch-cli-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).expect("command succeeds");
        String::from_utf8(out).expect("utf8 output")
    }

    fn run_err(args: &[&str]) -> CliError {
        let args: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).expect_err("command fails")
    }

    /// Two joinable tables as CSV files: keys 0..200 and 100..300.
    fn write_lake(dir: &Path) -> (PathBuf, PathBuf) {
        let mut left = String::from("key,rides\n");
        for i in 0..200 {
            left.push_str(&format!("{i},{}\n", f64::from(i) + 1.0));
        }
        let mut right = String::from("key,precip,noise\n");
        for i in 100..300 {
            right.push_str(&format!("{i},{},{}\n", 2 * i + 3, (i * 37) % 11));
        }
        let left_path = dir.join("taxi.csv");
        let right_path = dir.join("weather.csv");
        fs::write(&left_path, left).expect("write left");
        fs::write(&right_path, right).expect("write right");
        (left_path, right_path)
    }

    #[test]
    fn full_cli_round_trip_matches_between_ingest_paths() {
        let dir = temp_dir("roundtrip");
        let (taxi, weather) = write_lake(&dir);
        let catalog_one = dir.join("catalog-one");
        let catalog_shard = dir.join("catalog-shard");
        for catalog in [&catalog_one, &catalog_shard] {
            let text = run_ok(&[
                "catalog",
                "init",
                catalog.to_str().expect("utf8"),
                "--method",
                "wmh",
                "--budget",
                "300",
                "--seed",
                "9",
            ]);
            assert!(text.contains("initialized catalog"), "{text}");
        }
        // One catalog ingests one-shot, the other shard-partial; queries must agree
        // (WMH shard partials are estimate-equivalent, and the ranking identical).
        run_ok(&[
            "ingest",
            catalog_one.to_str().expect("utf8"),
            weather.to_str().expect("utf8"),
        ]);
        let sharded = run_ok(&[
            "ingest-partial",
            catalog_shard.to_str().expect("utf8"),
            weather.to_str().expect("utf8"),
            "--shards",
            "4",
        ]);
        assert!(sharded.contains("4 shard partials folded"), "{sharded}");

        let query_one = run_ok(&[
            "query",
            catalog_one.to_str().expect("utf8"),
            taxi.to_str().expect("utf8"),
            "--column",
            "rides",
            "--top",
            "2",
        ]);
        let query_shard = run_ok(&[
            "query",
            catalog_shard.to_str().expect("utf8"),
            taxi.to_str().expect("utf8"),
            "--column",
            "rides",
            "--top",
            "2",
        ]);
        assert!(query_one.contains("weather.precip"), "{query_one}");
        // Both paths rank precip first (the noise column has near-random overlap).
        let first_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("1 "))
                .map(str::to_string)
                .unwrap_or_default()
        };
        assert!(first_line(&query_one).contains("weather."), "{query_one}");
        assert!(
            first_line(&query_shard).contains("weather."),
            "{query_shard}"
        );

        let info_text = run_ok(&["info", catalog_one.to_str().expect("utf8")]);
        assert!(info_text.contains("columns: 2"), "{info_text}");
        assert!(info_text.contains("WMH"), "{info_text}");
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn usage_errors_are_typed_and_informative() {
        assert!(matches!(run_err(&[]), CliError::Usage(_)));
        assert!(matches!(run_err(&["frobnicate"]), CliError::Usage(_)));
        assert!(matches!(run_err(&["catalog"]), CliError::Usage(_)));
        assert!(matches!(run_err(&["catalog", "drop"]), CliError::Usage(_)));
        assert!(matches!(
            run_err(&["catalog", "init", "/tmp/x", "--budget", "100"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["catalog", "init", "/tmp/x", "--method", "nope", "--budget", "100"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["catalog", "init", "/tmp/x", "--method", "wmh", "--budget", "lots"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["catalog", "compact"]),
            CliError::Usage(_)
        ));
        assert!(matches!(
            run_err(&["catalog", "migrate", "/tmp/x"]),
            CliError::Usage(_)
        ));
        assert!(matches!(run_err(&["ingest", "/tmp/x"]), CliError::Usage(_)));
        // Misspelled flags are rejected, never silently ignored: `--partition`
        // (instead of --partitions) must not quietly fall back to one-shot ingest.
        let err = run_err(&["ingest", "/tmp/x", "/tmp/y.csv", "--partition", "4"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("--partitions")),
            "unknown flags must name the accepted set: {err}"
        );
        assert!(matches!(
            run_err(&[
                "query",
                "/tmp/x",
                "/tmp/y.csv",
                "--column",
                "v",
                "--tpo",
                "5"
            ]),
            CliError::Usage(_)
        ));
        let help = run_ok(&["help"]);
        assert!(help.contains("USAGE"), "{help}");
    }

    #[test]
    fn serve_subcommand_parses_and_gates_on_the_feature() {
        // Missing both bind addresses is a usage error with or without the feature.
        let err = run_err(&["serve", "/tmp/x"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("--addr") && detail.contains("--http")),
            "no bind address must name both flags: {err}"
        );
        #[cfg(not(feature = "server"))]
        {
            let err = run_err(&["serve", "/tmp/x", "--addr", "127.0.0.1:0"]);
            assert!(
                matches!(&err, CliError::Usage(detail) if detail.contains("--features server")),
                "featureless builds must point at the server feature: {err}"
            );
            // An HTTP-only bind parses and hits the same feature gate.
            let err = run_err(&["serve", "/tmp/x", "--http", "127.0.0.1:0"]);
            assert!(matches!(err, CliError::Usage(_)), "{err}");
        }
        #[cfg(feature = "server")]
        {
            // Config validation and catalog opening run before any socket binds.
            let err = run_err(&["serve", "/tmp/x", "--addr", "127.0.0.1:0", "--workers", "0"]);
            assert!(matches!(err, CliError::Usage(_)), "zero workers: {err}");
            let err = run_err(&[
                "serve",
                "/tmp/x",
                "--http",
                "127.0.0.1:0",
                "--max-connections",
                "0",
            ]);
            assert!(matches!(err, CliError::Usage(_)), "zero connections: {err}");
            let dir = temp_dir("serve-nocat");
            let missing = dir.join("nope");
            let err = run_err(&[
                "serve",
                missing.to_str().expect("utf8"),
                "--addr",
                "127.0.0.1:0",
            ]);
            assert!(
                matches!(err, CliError::Catalog(CatalogError::NotACatalog { .. })),
                "{err}"
            );
            fs::remove_dir_all(&dir).expect("cleanup");
        }
    }

    #[test]
    fn route_subcommand_parses_and_gates_on_the_feature() {
        // Both the bind address and at least one node are required.
        let err = run_err(&["route"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("--addr")),
            "{err}"
        );
        let err = run_err(&["route", "--addr", "127.0.0.1:0"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("--node") && detail.contains("--http-node")),
            "no nodes must name both node flags: {err}"
        );
        let err = run_err(&["route", "stray", "--addr", "127.0.0.1:0", "--node", "h:1"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("positional")),
            "{err}"
        );
        let err = run_err(&[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--node",
            "h:1",
            "--replicas",
            "two",
        ]);
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        #[cfg(not(feature = "server"))]
        {
            let err = run_err(&["route", "--addr", "127.0.0.1:0", "--node", "127.0.0.1:1"]);
            assert!(
                matches!(&err, CliError::Usage(detail) if detail.contains("--features server")),
                "featureless builds must point at the server feature: {err}"
            );
        }
        #[cfg(feature = "server")]
        {
            // Validation runs before any socket binds.
            let err = run_err(&["route", "--addr", "not an address", "--node", "127.0.0.1:1"]);
            assert!(
                matches!(&err, CliError::Usage(detail) if detail.contains("host:port")),
                "{err}"
            );
            let err = run_err(&[
                "route",
                "--addr",
                "127.0.0.1:0",
                "--node",
                "127.0.0.1:1",
                "--replicas",
                "0",
            ]);
            assert!(
                matches!(&err, CliError::Usage(detail) if detail.contains("replication")),
                "{err}"
            );
        }
        // A zero read deadline is rejected in parsing, before the feature gate.
        let err = run_err(&[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--node",
            "h:1",
            "--read-timeout-ms",
            "0",
        ]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("deadline")),
            "{err}"
        );
        #[cfg(feature = "server")]
        {
            let err = run_err(&[
                "route",
                "--addr",
                "127.0.0.1:0",
                "--node",
                "127.0.0.1:1",
                "--failure-threshold",
                "0",
            ]);
            assert!(
                matches!(&err, CliError::Usage(detail) if detail.contains("threshold")),
                "{err}"
            );
        }
    }

    #[test]
    fn rebalance_subcommand_parses_and_gates_on_the_feature() {
        // Both node lists are required, and stray positionals are rejected.
        let err = run_err(&["rebalance"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("--from") && detail.contains("--to")),
            "{err}"
        );
        let err = run_err(&["rebalance", "--from", "h:1"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("--to")),
            "{err}"
        );
        let err = run_err(&["rebalance", "stray", "--from", "h:1", "--to", "h:2"]);
        assert!(
            matches!(&err, CliError::Usage(detail) if detail.contains("positional")),
            "{err}"
        );
        let err = run_err(&[
            "rebalance",
            "--from",
            "h:1",
            "--to",
            "h:2",
            "--replicas",
            "x",
        ]);
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        #[cfg(not(feature = "server"))]
        {
            let err = run_err(&["rebalance", "--from", "127.0.0.1:1", "--to", "127.0.0.1:2"]);
            assert!(
                matches!(&err, CliError::Usage(detail) if detail.contains("--features server")),
                "featureless builds must point at the server feature: {err}"
            );
        }
        #[cfg(feature = "server")]
        {
            // With nothing listening the copy phase fails as a typed I/O error
            // — never a usage error, so scripts can tell the cases apart.
            let err = run_err(&[
                "rebalance",
                "--from",
                "127.0.0.1:1",
                "--to",
                "127.0.0.1:2",
                "--read-timeout-ms",
                "100",
            ]);
            assert!(
                matches!(&err, CliError::Io(detail) if detail.contains("rebalance failed")),
                "{err}"
            );
        }
    }

    #[test]
    fn compact_and_migrate_subcommands() {
        let dir = temp_dir("compact-migrate");
        let (taxi, _) = write_lake(&dir);
        let catalog = dir.join("catalog");
        run_ok(&[
            "catalog",
            "init",
            catalog.to_str().expect("utf8"),
            "--method",
            "kmv",
            "--budget",
            "100",
        ]);
        run_ok(&[
            "ingest",
            catalog.to_str().expect("utf8"),
            taxi.to_str().expect("utf8"),
        ]);
        // A fresh catalog has nothing to reclaim but the command still reports.
        let text = run_ok(&["catalog", "compact", catalog.to_str().expect("utf8")]);
        assert!(text.contains("removed 0 files, 1 live columns"), "{text}");
        // Info surfaces the on-disk format.
        let info_text = run_ok(&["info", catalog.to_str().expect("utf8")]);
        assert!(info_text.contains("format: v2"), "{info_text}");
        // Migrating a current-format catalog is refused, typed as a catalog error.
        let dest = dir.join("migrated");
        let err = run_err(&[
            "catalog",
            "migrate",
            catalog.to_str().expect("utf8"),
            dest.to_str().expect("utf8"),
        ]);
        assert!(
            matches!(&err, CliError::Catalog(CatalogError::Incompatible { detail })
                if detail.contains("already format v2")),
            "{err}"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn runtime_errors_are_typed() {
        let dir = temp_dir("errors");
        let missing_catalog = dir.join("nope");
        let (taxi, _) = write_lake(&dir);
        // Querying a directory that is not a catalog.
        assert!(matches!(
            run_err(&[
                "query",
                missing_catalog.to_str().expect("utf8"),
                taxi.to_str().expect("utf8"),
                "--column",
                "rides"
            ]),
            CliError::Catalog(CatalogError::NotACatalog { .. })
        ));
        // Ingesting a CSV that does not exist.
        let catalog = dir.join("catalog");
        run_ok(&[
            "catalog",
            "init",
            catalog.to_str().expect("utf8"),
            "--method",
            "kmv",
            "--budget",
            "100",
        ]);
        assert!(matches!(
            run_err(&[
                "ingest",
                catalog.to_str().expect("utf8"),
                dir.join("ghost.csv").to_str().expect("utf8")
            ]),
            CliError::Csv(_)
        ));
        // Querying a column the CSV does not have.
        run_ok(&[
            "ingest",
            catalog.to_str().expect("utf8"),
            taxi.to_str().expect("utf8"),
        ]);
        assert!(matches!(
            run_err(&[
                "query",
                catalog.to_str().expect("utf8"),
                taxi.to_str().expect("utf8"),
                "--column",
                "ghost"
            ]),
            CliError::Join(_)
        ));
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
