//! Error types for the catalog and serving layer.

use ipsketch_core::SketchError;
use ipsketch_join::JoinError;
use std::fmt;

/// Errors produced by the persistent sketch catalog and the query service on top of
/// it.  Every failure mode is typed: callers (and the CLI) can distinguish a corrupt
/// file from an incompatible sketcher from a plain missing column.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying OS error, rendered.
        detail: String,
    },
    /// A stored file (manifest or sketch blob) could not be decoded.
    Corrupt {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// The directory already holds a catalog (on `init`) or does not hold one (on
    /// `open`).
    NotACatalog {
        /// The offending directory.
        path: String,
        /// What was expected there.
        detail: String,
    },
    /// A sketch or configuration does not match the catalog's recorded sketcher spec.
    Incompatible {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A column is already registered under this `(table, column)` key.
    DuplicateColumn {
        /// The table name.
        table: String,
        /// The column name.
        column: String,
    },
    /// No column is registered under this `(table, column)` key.
    NotFound {
        /// The table name.
        table: String,
        /// The column name.
        column: String,
    },
    /// An error bubbled up from the sketching layer.
    Sketch(SketchError),
    /// An error bubbled up from the dataset-search layer.
    Join(JoinError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io { path, detail } => write!(f, "I/O error on `{path}`: {detail}"),
            CatalogError::Corrupt { detail } => write!(f, "corrupt catalog data: {detail}"),
            CatalogError::NotACatalog { path, detail } => {
                write!(f, "`{path}` is not a usable catalog: {detail}")
            }
            CatalogError::Incompatible { detail } => {
                write!(f, "incompatible with the catalog sketcher: {detail}")
            }
            CatalogError::DuplicateColumn { table, column } => {
                write!(f, "column `{table}.{column}` is already in the catalog")
            }
            CatalogError::NotFound { table, column } => {
                write!(f, "column `{table}.{column}` is not in the catalog")
            }
            CatalogError::Sketch(e) => write!(f, "sketch error: {e}"),
            CatalogError::Join(e) => write!(f, "join error: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Sketch(e) => Some(e),
            CatalogError::Join(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SketchError> for CatalogError {
    fn from(e: SketchError) -> Self {
        CatalogError::Sketch(e)
    }
}

impl From<JoinError> for CatalogError {
    fn from(e: JoinError) -> Self {
        CatalogError::Join(e)
    }
}

/// Maps an [`std::io::Error`] at `path` into a typed [`CatalogError::Io`].
pub(crate) fn io_error(path: &std::path::Path, e: &std::io::Error) -> CatalogError {
    CatalogError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

/// Convenience constructor for [`CatalogError::Corrupt`].
pub(crate) fn corrupt(detail: impl Into<String>) -> CatalogError {
    CatalogError::Corrupt {
        detail: detail.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases = vec![
            CatalogError::Io {
                path: "/tmp/x".into(),
                detail: "denied".into(),
            },
            corrupt("short read"),
            CatalogError::NotACatalog {
                path: "/tmp/x".into(),
                detail: "missing manifest".into(),
            },
            CatalogError::Incompatible {
                detail: "seed".into(),
            },
            CatalogError::DuplicateColumn {
                table: "t".into(),
                column: "c".into(),
            },
            CatalogError::NotFound {
                table: "t".into(),
                column: "c".into(),
            },
            CatalogError::Sketch(SketchError::EmptySketch),
            CatalogError::Join(JoinError::NotIndexed {
                table: "t".into(),
                column: "c".into(),
            }),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_and_conversions() {
        use std::error::Error;
        let e: CatalogError = SketchError::EmptySketch.into();
        assert!(e.source().is_some());
        let e: CatalogError = JoinError::EmptyColumn {
            table: "t".into(),
            column: "c".into(),
        }
        .into();
        assert!(e.source().is_some());
        assert!(corrupt("x").source().is_none());
    }
}
