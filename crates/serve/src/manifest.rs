//! The catalog manifest: which columns are stored, where, and under what sketcher.
//!
//! The manifest is one small, versioned binary file at the catalog root.  It records
//! the full [`SketcherSpec`] (so reopening the catalog rebuilds the exact sketcher and
//! can reject foreign sketches at load time) and one entry per registered column with
//! the blob's file name, length and checksum (so corruption is caught before a blob is
//! ever decoded).
//!
//! The manifest's version byte is not free-standing: it always equals the embedded
//! spec's [`FormatVersion`] (one field decides the format of a whole catalog), and
//! the decoder rejects a manifest whose two version markers disagree.  Format v1 is
//! the frozen original layout; format v2 appends one flags byte per entry carrying
//! the deletion tombstone ([`ManifestEntry::dropped`]), which is how
//! [`Catalog::drop_column`](crate::Catalog::drop_column) marks a column dead without
//! rewriting blobs — compaction reclaims the bytes later.

use crate::error::{corrupt, CatalogError};
use ipsketch_core::serialize::SliceReader;
use ipsketch_core::{FormatVersion, SketcherSpec};

/// The workspace-shared FNV-1a 64-bit hash, used as the blob checksum (re-exported so
/// catalog consumers need not depend on `ipsketch-core` directly).
pub use ipsketch_core::serialize::fnv64;

/// Magic number identifying a catalog manifest ("IPCT").
const MANIFEST_MAGIC: u32 = 0x4950_4354;

/// The v2 per-entry flags bit marking a tombstoned (dropped) column.
const FLAG_DROPPED: u8 = 1;

/// The v2 per-entry flags bit marking an entry that carries a companion (cheap-tier)
/// sketch blob.  When set, the companion's file name, blob length, and checksum
/// follow the flags byte; entries without the bit encode byte-identically to
/// pre-companion v2 manifests.
const FLAG_COMPANION: u8 = 2;

/// The section tag introducing the optional trailing companion sketcher spec in a v2
/// manifest.  A manifest without one ends right after its entries, byte-identically
/// to pre-companion encodings.
const SECTION_COMPANION_SPEC: u8 = 1;

/// Where an entry's companion (cheap-tier) sketch blob lives, mirroring the primary
/// blob's file/length/checksum triple so corruption is caught before decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompanionRef {
    /// Companion blob file name, relative to the catalog's `sketches/` directory.
    pub file: String,
    /// Expected companion blob length in bytes.
    pub blob_len: u64,
    /// Expected FNV-1a checksum of the companion blob.
    pub checksum: u64,
}

/// One registered column in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The table name.
    pub table: String,
    /// The column name.
    pub column: String,
    /// Number of rows in the source table.
    pub rows: u64,
    /// Blob file name, relative to the catalog's `sketches/` directory.
    pub file: String,
    /// Expected blob length in bytes.
    pub blob_len: u64,
    /// Expected FNV-1a checksum of the blob.
    pub checksum: u64,
    /// Deletion tombstone: a dropped column no longer resolves or serves, but its
    /// entry (and blob) linger until [`compact`](crate::Catalog::compact) reclaims
    /// them.  Only persistable under format v2; every v1 entry decodes as live.
    pub dropped: bool,
    /// The companion (cheap-tier) sketch blob backing the query cascade's prefilter,
    /// when one was stored.  Only persistable under format v2 (the catalog never
    /// writes companions into v1 manifests); v1 entries always decode as `None`, and
    /// a cascade query over companion-less entries falls back to the flat scan.
    pub companion: Option<CompanionRef>,
}

/// The decoded manifest: the catalog's sketcher configuration plus its column entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The sketcher configuration every stored sketch was built with.  Its
    /// [`FormatVersion`] is the manifest's version too.
    pub spec: SketcherSpec,
    /// The registered columns, in registration order — including tombstoned ones
    /// (blob slot numbering must never reuse a dropped entry's file).
    pub entries: Vec<ManifestEntry>,
    /// The cheap-tier companion sketcher configuration, when the catalog stores
    /// companion sketches for the query cascade.  Persisted as a trailing v2 section;
    /// `None` encodes byte-identically to pre-companion manifests, and v1 manifests
    /// can never carry one.
    pub companion_spec: Option<SketcherSpec>,
}

impl Manifest {
    /// Creates an empty manifest for a catalog sketching with `spec`.
    #[must_use]
    pub fn new(spec: SketcherSpec) -> Self {
        Self {
            spec,
            entries: Vec::new(),
            companion_spec: None,
        }
    }

    /// The catalog format, derived from the embedded spec.
    #[must_use]
    pub fn format(&self) -> FormatVersion {
        self.spec.format
    }

    /// Looks up a **live** entry by `(table, column)`; tombstoned entries do not
    /// resolve (a dropped column behaves as absent everywhere except compaction).
    #[must_use]
    pub fn find(&self, table: &str, column: &str) -> Option<&ManifestEntry> {
        self.entries
            .iter()
            .find(|e| !e.dropped && e.table == table && e.column == column)
    }

    /// Mutable [`find`](Self::find), used to write a tombstone.
    #[must_use]
    pub fn find_mut(&mut self, table: &str, column: &str) -> Option<&mut ManifestEntry> {
        self.entries
            .iter_mut()
            .find(|e| !e.dropped && e.table == table && e.column == column)
    }

    /// The live (non-tombstoned) entries, in registration order.
    pub fn live_entries(&self) -> impl Iterator<Item = &ManifestEntry> {
        self.entries.iter().filter(|e| !e.dropped)
    }

    /// Number of live (non-tombstoned) entries.
    #[must_use]
    pub fn live_len(&self) -> usize {
        self.live_entries().count()
    }

    /// Encodes the manifest into its stable binary form, under the embedded spec's
    /// format.  The v1 layout is frozen (and has no per-entry flags byte, so neither
    /// a tombstone nor a companion can be persisted under it — the catalog refuses
    /// both operations on v1 catalogs in the first place); v2 appends one flags byte
    /// per entry, companion file/length/checksum fields behind the companion flag
    /// bit,
    /// and an optional trailing companion-spec section.  A v2 manifest without
    /// companions encodes byte-identically to the pre-companion layout.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let format = self.format();
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.push(format.as_u8());
        let spec = self.spec.encode();
        out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        out.extend_from_slice(&spec);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for entry in &self.entries {
            put_str(&mut out, &entry.table);
            put_str(&mut out, &entry.column);
            out.extend_from_slice(&entry.rows.to_le_bytes());
            put_str(&mut out, &entry.file);
            out.extend_from_slice(&entry.blob_len.to_le_bytes());
            out.extend_from_slice(&entry.checksum.to_le_bytes());
            if format >= FormatVersion::V2 {
                let mut flags = 0u8;
                if entry.dropped {
                    flags |= FLAG_DROPPED;
                }
                if entry.companion.is_some() {
                    flags |= FLAG_COMPANION;
                }
                out.push(flags);
                if let Some(companion) = &entry.companion {
                    put_str(&mut out, &companion.file);
                    out.extend_from_slice(&companion.blob_len.to_le_bytes());
                    out.extend_from_slice(&companion.checksum.to_le_bytes());
                }
            }
        }
        if format >= FormatVersion::V2 {
            if let Some(companion_spec) = &self.companion_spec {
                out.push(SECTION_COMPANION_SPEC);
                let spec = companion_spec.encode();
                out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
                out.extend_from_slice(&spec);
            }
        }
        out
    }

    /// Decodes a manifest previously produced by [`encode`](Self::encode), of either
    /// format version.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Corrupt`] on truncation, bad magic, an unsupported
    /// version, a version byte disagreeing with the embedded spec's format, malformed
    /// strings, an undecodable sketcher spec, unknown entry flags, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CatalogError> {
        // Reader failures (truncation, bad UTF-8) are catalog corruption.
        let sk = |e: ipsketch_core::SketchError| CatalogError::Corrupt {
            detail: format!("manifest: {e}"),
        };
        let mut reader = SliceReader::new(bytes);
        let magic = reader.u32().map_err(sk)?;
        if magic != MANIFEST_MAGIC {
            return Err(corrupt(format!("bad manifest magic number {magic:#x}")));
        }
        let version = reader.u8().map_err(sk)?;
        let Some(format) = FormatVersion::from_u8(version) else {
            return Err(corrupt(FormatVersion::unsupported("manifest", version)));
        };
        let spec_len = reader.u32().map_err(sk)? as usize;
        let spec = SketcherSpec::decode(reader.take(spec_len).map_err(sk)?)
            .map_err(|e| corrupt(format!("manifest sketcher spec: {e}")))?;
        if spec.format != format {
            return Err(corrupt(format!(
                "manifest version {} disagrees with its sketcher spec's format {}",
                format.label(),
                spec.format.label()
            )));
        }
        let entry_count = reader.u64().map_err(sk)?;
        // An entry takes at least 36 bytes; bound the pre-allocation by what the
        // buffer could possibly hold so a corrupt count cannot trigger a huge alloc.
        let mut entries = Vec::with_capacity((entry_count as usize).min(bytes.len() / 36 + 1));
        for _ in 0..entry_count {
            let mut entry = || -> Result<ManifestEntry, CatalogError> {
                let table = reader.string().map_err(sk)?;
                let column = reader.string().map_err(sk)?;
                let rows = reader.u64().map_err(sk)?;
                let file = reader.string().map_err(sk)?;
                let blob_len = reader.u64().map_err(sk)?;
                let checksum = reader.u64().map_err(sk)?;
                // The v1 layout predates tombstones and companions: every v1 entry is
                // live and companion-less.
                let (dropped, companion) = if format >= FormatVersion::V2 {
                    let flags = reader.u8().map_err(sk)?;
                    if flags & !(FLAG_DROPPED | FLAG_COMPANION) != 0 {
                        return Err(corrupt(format!(
                            "unknown manifest entry flags {flags:#04x} on `{table}.{column}`"
                        )));
                    }
                    let companion = if flags & FLAG_COMPANION != 0 {
                        Some(CompanionRef {
                            file: reader.string().map_err(sk)?,
                            blob_len: reader.u64().map_err(sk)?,
                            checksum: reader.u64().map_err(sk)?,
                        })
                    } else {
                        None
                    };
                    (flags & FLAG_DROPPED != 0, companion)
                } else {
                    (false, None)
                };
                Ok(ManifestEntry {
                    table,
                    column,
                    rows,
                    file,
                    blob_len,
                    checksum,
                    dropped,
                    companion,
                })
            };
            entries.push(entry()?);
        }
        // Optional trailing sections (v2 only): currently just the companion spec.
        let mut companion_spec = None;
        if format >= FormatVersion::V2 && reader.finished().is_err() {
            let tag = reader.u8().map_err(sk)?;
            if tag != SECTION_COMPANION_SPEC {
                return Err(corrupt(format!("unknown manifest section tag {tag:#04x}")));
            }
            let spec_len = reader.u32().map_err(sk)? as usize;
            let spec = SketcherSpec::decode(reader.take(spec_len).map_err(sk)?)
                .map_err(|e| corrupt(format!("manifest companion spec: {e}")))?;
            companion_spec = Some(spec);
        }
        reader.finished().map_err(sk)?;
        // An entry can only reference a companion blob built under the manifest's
        // declared companion spec — a manifest carrying refs without a spec is
        // inconsistent (e.g. truncated right at the trailing-section boundary).
        if companion_spec.is_none() {
            if let Some(entry) = entries.iter().find(|e| e.companion.is_some()) {
                return Err(corrupt(format!(
                    "entry `{}.{}` references a companion sketch but the manifest declares no \
                     companion spec",
                    entry.table, entry.column
                )));
            }
        }
        Ok(Self {
            spec,
            entries,
            companion_spec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipsketch_core::SketcherKind;

    fn entry(n: u64, dropped: bool) -> ManifestEntry {
        ManifestEntry {
            table: format!("table{n}"),
            column: "col".into(),
            rows: 100 + n,
            file: format!("{n:06}.col"),
            blob_len: 1000 + n,
            checksum: 0xDEAD_BEEF ^ n,
            dropped,
            companion: None,
        }
    }

    fn sample(format: FormatVersion) -> Manifest {
        let mut m = Manifest::new(SketcherSpec::new(
            format,
            SketcherKind::Kmv {
                capacity: 32,
                seed: 7,
            },
        ));
        m.entries.push(ManifestEntry {
            table: "taxi".into(),
            column: "rides".into(),
            rows: 500,
            file: "000000.col".into(),
            blob_len: 1234,
            checksum: 0xDEAD_BEEF,
            dropped: false,
            companion: None,
        });
        m.entries.push(ManifestEntry {
            table: "weather".into(),
            column: "precip".into(),
            rows: 730,
            file: "000001.col".into(),
            blob_len: 99,
            checksum: 42,
            dropped: false,
            companion: None,
        });
        m
    }

    #[test]
    fn encode_decode_round_trips_both_formats() {
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let m = sample(format);
            assert_eq!(Manifest::decode(&m.encode()).expect("fresh encoding"), m);
            let empty = Manifest::new(SketcherSpec::new(
                format,
                SketcherKind::Jl { rows: 8, seed: 1 },
            ));
            assert_eq!(
                Manifest::decode(&empty.encode()).expect("fresh encoding"),
                empty
            );
        }
    }

    #[test]
    fn v1_encoding_is_byte_identical_to_the_frozen_layout() {
        // The pre-versioning layout byte for byte: magic, version=1, spec length,
        // spec bytes, entry count, then per entry the strings/ints with NO flags
        // byte.  v1 catalogs on disk depend on this never drifting.
        let m = sample(FormatVersion::V1);
        let bytes = m.encode();
        let mut expected = Vec::new();
        expected.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        expected.push(1);
        let spec = m.spec.encode();
        expected.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        expected.extend_from_slice(&spec);
        expected.extend_from_slice(&2u64.to_le_bytes());
        for e in &m.entries {
            expected.extend_from_slice(&(e.table.len() as u32).to_le_bytes());
            expected.extend_from_slice(e.table.as_bytes());
            expected.extend_from_slice(&(e.column.len() as u32).to_le_bytes());
            expected.extend_from_slice(e.column.as_bytes());
            expected.extend_from_slice(&e.rows.to_le_bytes());
            expected.extend_from_slice(&(e.file.len() as u32).to_le_bytes());
            expected.extend_from_slice(e.file.as_bytes());
            expected.extend_from_slice(&e.blob_len.to_le_bytes());
            expected.extend_from_slice(&e.checksum.to_le_bytes());
        }
        assert_eq!(bytes, expected);
        // The v2 encoding of the same entries is exactly one flags byte per entry
        // longer (plus the spec's own format byte difference).
        let v2 = sample(FormatVersion::V2).encode();
        assert_eq!(v2.len(), bytes.len() + m.entries.len());
    }

    #[test]
    fn tombstones_round_trip_and_hide_from_find() {
        let mut m = sample(FormatVersion::V2);
        m.entries.push(entry(2, true));
        m.entries.push(entry(3, false));
        let decoded = Manifest::decode(&m.encode()).expect("round trip");
        assert_eq!(decoded, m);
        assert!(decoded.entries[2].dropped);
        // Tombstoned entries are invisible to find/live views but still counted raw.
        assert!(decoded.find("table2", "col").is_none());
        assert!(decoded.find("table3", "col").is_some());
        assert_eq!(decoded.entries.len(), 4);
        assert_eq!(decoded.live_len(), 3);
        assert_eq!(decoded.live_entries().count(), 3);
        assert_eq!(decoded.format(), FormatVersion::V2);
    }

    #[test]
    fn find_locates_entries() {
        let mut m = sample(FormatVersion::V2);
        assert_eq!(m.find("taxi", "rides").map(|e| e.rows), Some(500));
        assert!(m.find("taxi", "missing").is_none());
        assert!(m.find("missing", "rides").is_none());
        m.find_mut("taxi", "rides").expect("live").dropped = true;
        assert!(m.find("taxi", "rides").is_none());
        assert!(m.find_mut("taxi", "rides").is_none());
    }

    #[test]
    fn decode_rejects_every_truncation() {
        for format in [FormatVersion::V1, FormatVersion::V2] {
            let bytes = sample(format).encode();
            for cut in 0..bytes.len() {
                assert!(
                    matches!(
                        Manifest::decode(&bytes[..cut]),
                        Err(CatalogError::Corrupt { .. })
                    ),
                    "cut at {cut} of {} should be corrupt",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn decode_rejects_bad_magic_version_flags_and_trailing_bytes() {
        let m = sample(FormatVersion::V2);
        let mut bad_magic = m.encode();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            Manifest::decode(&bad_magic),
            Err(CatalogError::Corrupt { .. })
        ));
        let mut stale_version = m.encode();
        stale_version[4] = 99;
        let err = Manifest::decode(&stale_version).expect_err("stale version");
        assert!(err.to_string().contains("version 99"), "{err}");
        assert!(err.to_string().contains("versions 1 through 2"), "{err}");
        let mut padded = m.encode();
        padded.push(0);
        assert!(Manifest::decode(&padded).is_err());
        // A v2 entry with unknown flag bits is corruption, not silently ignored.
        let mut bad_flags = m.encode();
        let last = bad_flags.len() - 1;
        bad_flags[last] = 0x82;
        let err = Manifest::decode(&bad_flags).expect_err("unknown flags");
        assert!(err.to_string().contains("flags"), "{err}");
    }

    #[test]
    fn decode_rejects_version_disagreeing_with_spec_format() {
        // A manifest whose own version byte says v2 but whose spec encodes as v1 (or
        // vice versa) is corrupt — one field decides the catalog's format.
        let v1 = sample(FormatVersion::V1);
        let mut mismatched = v1.encode();
        mismatched[4] = 2; // claim manifest v2 over a v1 spec
        let err = Manifest::decode(&mismatched).expect_err("mismatched versions");
        assert!(err.to_string().contains("disagrees"), "{err}");
    }

    #[test]
    fn companions_round_trip_under_v2() {
        let mut m = sample(FormatVersion::V2);
        m.companion_spec = Some(SketcherSpec::new(
            FormatVersion::V2,
            SketcherKind::CountSketch {
                buckets: 256,
                repetitions: 5,
                seed: 7,
            },
        ));
        m.entries[0].companion = Some(CompanionRef {
            file: "000000.cmp".into(),
            blob_len: 777,
            checksum: 0xFEED,
        });
        // Entry 1 deliberately stays companion-less: partially-backfilled catalogs
        // are a first-class state.
        let mut tombstoned_with_companion = entry(2, true);
        tombstoned_with_companion.companion = Some(CompanionRef {
            file: "000002.cmp".into(),
            blob_len: 88,
            checksum: 3,
        });
        m.entries.push(tombstoned_with_companion);
        let decoded = Manifest::decode(&m.encode()).expect("round trip");
        assert_eq!(decoded, m);
        assert!(decoded.entries[0].companion.is_some());
        assert!(decoded.entries[1].companion.is_none());
        assert!(decoded.entries[2].dropped && decoded.entries[2].companion.is_some());

        // Every truncation of the companion-carrying encoding is still rejected.
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn companion_free_v2_encoding_is_byte_identical_to_the_pre_companion_layout() {
        // Adding the companion feature must not move a single byte of existing v2
        // catalogs: no flags bit, no trailing section.
        let m = sample(FormatVersion::V2);
        let bytes = m.encode();
        let v1_len = sample(FormatVersion::V1).encode().len();
        assert_eq!(bytes.len(), v1_len + m.entries.len());
        assert_eq!(
            *bytes.last().expect("non-empty"),
            0,
            "plain flags byte last"
        );
    }

    #[test]
    fn unknown_trailing_section_tags_are_corruption() {
        let m = sample(FormatVersion::V2);
        let mut bad_section = m.encode();
        bad_section.push(0x7F);
        let err = Manifest::decode(&bad_section).expect_err("unknown section");
        assert!(err.to_string().contains("section"), "{err}");
    }

    #[test]
    fn v1_encoding_never_carries_companions() {
        // A v1 manifest hand-assembled with companion data still encodes the frozen
        // v1 layout; decoding it yields companion-less entries.
        let mut m = sample(FormatVersion::V1);
        let plain = m.encode();
        m.companion_spec = Some(SketcherSpec::new(
            FormatVersion::V1,
            SketcherKind::Kmv {
                capacity: 8,
                seed: 7,
            },
        ));
        m.entries[0].companion = Some(CompanionRef {
            file: "000000.cmp".into(),
            blob_len: 1,
            checksum: 2,
        });
        assert_eq!(m.encode(), plain);
        let decoded = Manifest::decode(&m.encode()).expect("frozen layout");
        assert!(decoded.companion_spec.is_none());
        assert!(decoded.entries.iter().all(|e| e.companion.is_none()));
    }

    #[test]
    fn fnv64_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"catalog"), fnv64(b"catalog"));
        assert_ne!(fnv64(b"catalog"), fnv64(b"catalpg"));
    }
}
