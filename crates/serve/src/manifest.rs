//! The catalog manifest: which columns are stored, where, and under what sketcher.
//!
//! The manifest is one small, versioned binary file at the catalog root.  It records
//! the full [`SketcherSpec`] (so reopening the catalog rebuilds the exact sketcher and
//! can reject foreign sketches at load time) and one entry per registered column with
//! the blob's file name, length and checksum (so corruption is caught before a blob is
//! ever decoded).

use crate::error::{corrupt, CatalogError};
use ipsketch_core::serialize::SliceReader;
use ipsketch_core::SketcherSpec;

/// The workspace-shared FNV-1a 64-bit hash, used as the blob checksum (re-exported so
/// catalog consumers need not depend on `ipsketch-core` directly).
pub use ipsketch_core::serialize::fnv64;

/// Magic number identifying a catalog manifest ("IPCT").
const MANIFEST_MAGIC: u32 = 0x4950_4354;
/// Current manifest format version.
const MANIFEST_VERSION: u8 = 1;

/// One registered column in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The table name.
    pub table: String,
    /// The column name.
    pub column: String,
    /// Number of rows in the source table.
    pub rows: u64,
    /// Blob file name, relative to the catalog's `sketches/` directory.
    pub file: String,
    /// Expected blob length in bytes.
    pub blob_len: u64,
    /// Expected FNV-1a checksum of the blob.
    pub checksum: u64,
}

/// The decoded manifest: the catalog's sketcher configuration plus its column entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// The sketcher configuration every stored sketch was built with.
    pub spec: SketcherSpec,
    /// The registered columns, in registration order.
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Creates an empty manifest for a catalog sketching with `spec`.
    #[must_use]
    pub fn new(spec: SketcherSpec) -> Self {
        Self {
            spec,
            entries: Vec::new(),
        }
    }

    /// Looks up an entry by `(table, column)`.
    #[must_use]
    pub fn find(&self, table: &str, column: &str) -> Option<&ManifestEntry> {
        self.entries
            .iter()
            .find(|e| e.table == table && e.column == column)
    }

    /// Encodes the manifest into its stable binary form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.push(MANIFEST_VERSION);
        let spec = self.spec.encode();
        out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        out.extend_from_slice(&spec);
        out.extend_from_slice(&(self.entries.len() as u64).to_le_bytes());
        for entry in &self.entries {
            put_str(&mut out, &entry.table);
            put_str(&mut out, &entry.column);
            out.extend_from_slice(&entry.rows.to_le_bytes());
            put_str(&mut out, &entry.file);
            out.extend_from_slice(&entry.blob_len.to_le_bytes());
            out.extend_from_slice(&entry.checksum.to_le_bytes());
        }
        out
    }

    /// Decodes a manifest previously produced by [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Corrupt`] on truncation, bad magic, an unsupported
    /// version, malformed strings, an undecodable sketcher spec, or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, CatalogError> {
        // Reader failures (truncation, bad UTF-8) are catalog corruption.
        let sk = |e: ipsketch_core::SketchError| CatalogError::Corrupt {
            detail: format!("manifest: {e}"),
        };
        let mut reader = SliceReader::new(bytes);
        let magic = reader.u32().map_err(sk)?;
        if magic != MANIFEST_MAGIC {
            return Err(corrupt(format!("bad manifest magic number {magic:#x}")));
        }
        let version = reader.u8().map_err(sk)?;
        if version != MANIFEST_VERSION {
            return Err(corrupt(format!(
                "unsupported manifest version {version} (this build reads version {MANIFEST_VERSION})"
            )));
        }
        let spec_len = reader.u32().map_err(sk)? as usize;
        let spec = SketcherSpec::decode(reader.take(spec_len).map_err(sk)?)
            .map_err(|e| corrupt(format!("manifest sketcher spec: {e}")))?;
        let entry_count = reader.u64().map_err(sk)?;
        // An entry takes at least 36 bytes; bound the pre-allocation by what the
        // buffer could possibly hold so a corrupt count cannot trigger a huge alloc.
        let mut entries = Vec::with_capacity((entry_count as usize).min(bytes.len() / 36 + 1));
        for _ in 0..entry_count {
            let mut entry = || -> Result<ManifestEntry, ipsketch_core::SketchError> {
                Ok(ManifestEntry {
                    table: reader.string()?,
                    column: reader.string()?,
                    rows: reader.u64()?,
                    file: reader.string()?,
                    blob_len: reader.u64()?,
                    checksum: reader.u64()?,
                })
            };
            entries.push(entry().map_err(sk)?);
        }
        reader.finished().map_err(sk)?;
        Ok(Self { spec, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(SketcherSpec::Kmv {
            capacity: 32,
            seed: 7,
        });
        m.entries.push(ManifestEntry {
            table: "taxi".into(),
            column: "rides".into(),
            rows: 500,
            file: "000000.col".into(),
            blob_len: 1234,
            checksum: 0xDEAD_BEEF,
        });
        m.entries.push(ManifestEntry {
            table: "weather".into(),
            column: "precip".into(),
            rows: 730,
            file: "000001.col".into(),
            blob_len: 99,
            checksum: 42,
        });
        m
    }

    #[test]
    fn encode_decode_round_trips() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).expect("fresh encoding"), m);
        let empty = Manifest::new(SketcherSpec::Jl { rows: 8, seed: 1 });
        assert_eq!(
            Manifest::decode(&empty.encode()).expect("fresh encoding"),
            empty
        );
    }

    #[test]
    fn find_locates_entries() {
        let m = sample();
        assert_eq!(m.find("taxi", "rides").map(|e| e.rows), Some(500));
        assert!(m.find("taxi", "missing").is_none());
        assert!(m.find("missing", "rides").is_none());
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    Manifest::decode(&bytes[..cut]),
                    Err(CatalogError::Corrupt { .. })
                ),
                "cut at {cut} of {} should be corrupt",
                bytes.len()
            );
        }
    }

    #[test]
    fn decode_rejects_bad_magic_version_and_trailing_bytes() {
        let m = sample();
        let mut bad_magic = m.encode();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            Manifest::decode(&bad_magic),
            Err(CatalogError::Corrupt { .. })
        ));
        let mut stale_version = m.encode();
        stale_version[4] = 99;
        let err = Manifest::decode(&stale_version).expect_err("stale version");
        assert!(err.to_string().contains("version 99"), "{err}");
        let mut padded = m.encode();
        padded.push(0);
        assert!(Manifest::decode(&padded).is_err());
    }

    #[test]
    fn fnv64_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"catalog"), fnv64(b"catalog"));
        assert_ne!(fnv64(b"catalog"), fnv64(b"catalpg"));
    }
}
