//! Multi-node catalog router: one process that fronts N independent catalog
//! nodes and speaks the same line-JSON protocol as a single `ipsketch serve`.
//!
//! The router owns no sketches.  It partitions `(table, column)` keys across
//! the configured nodes with rendezvous (highest-random-weight) hashing,
//! replicating every key to `replicas` owners so reads survive a node loss:
//!
//! * **Writes** (`ingest`, the `ingest-begin`/`announce`/`submit`/`finish`
//!   session ops, `import-column`) are split column-wise: each owner node
//!   receives the shard's full key vector plus only the columns it owns.  The
//!   announced-norm `Σv²` exchange therefore runs as a real cross-node round —
//!   the router maps its client-facing session onto one lazily-opened session
//!   per involved node and forwards announce/submit sub-shards in arrival
//!   order, so every node seals exactly the norms its columns need.
//! * **Reads** (`query`, `batch-query`, `info`) fan out to every node and the
//!   per-node top-k lists are merged under the deterministic total order
//!   (score descending via `total_cmp`, then `(table, column)` ascending),
//!   deduplicated by key, and truncated to `k`.  Because replicas register
//!   bit-identical blobs, a node loss changes nothing the merge can observe:
//!   the surviving replica's entries are byte-identical.
//! * **`drop-column`** fans to every node (placement-agnostic: operators may
//!   have loaded nodes out-of-band) and succeeds when any node dropped the
//!   key.
//!
//! Every node session runs under a [`RetryPolicy`]: per-attempt connect,
//! read, and write deadlines plus capped exponential backoff with
//! deterministic jitter.  Only idempotent reads (`info`, `query`,
//! `batch-query`, `export-column`) retry — a timed-out write has an unknown
//! outcome, so it fails fast with `deadline_exceeded` instead.  Nodes that
//! fail `failure_threshold` consecutive attempts are demoted out of the read
//! fan-out; a background prober re-checks demoted nodes with `info` and
//! promotes them back.  Demotions, promotions, and probe counts surface in
//! the `cluster` member of `info`.
//!
//! The node list itself is swappable at runtime ([`Router::set_nodes`]):
//! in-flight requests and open ingest sessions pin the topology they started
//! on, so a live rebalance (copy blobs with [`rebalance`], then flip the
//! router) never splits one request across two placements.
//!
//! `docs/PROTOCOL.md` § Cluster routing and § Timeouts, retries, and
//! idempotency are the normative descriptions; `tests/cluster_loopback.rs`
//! and `tests/chaos_loopback.rs` assert a faulty cluster answers
//! bit-identically to a single healthy node.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::metrics::ServerMetrics;
use crate::protocol::{
    ErrorCode, InfoColumn, Request, RequestBody, Response, ResponseBody, WireClusterStats,
    WireError, WireNodeStats, WireRanked, WireServiceStats, WireSketch, WireTable,
};
use crate::wire::Json;

/// Default replication factor: every key lives on two nodes, so the cluster
/// keeps answering (bit-identically) with any single node down.
pub const DEFAULT_REPLICAS: usize = 2;

/// Router request lines are bounded like the server's default.
const MAX_LINE_BYTES: usize = 64 << 20;

/// How a node is spoken to on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTransport {
    /// Newline-delimited JSON over a raw TCP connection.
    Tcp,
    /// The HTTP/1.1 binding (`POST /v1/<op>`, identical JSON bodies).
    Http,
}

impl NodeTransport {
    /// The stable label reported in [`WireNodeStats::transport`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NodeTransport::Tcp => "tcp",
            NodeTransport::Http => "http",
        }
    }
}

/// One catalog node the router fronts.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// `host:port` of the node's listener for the chosen transport.
    pub addr: String,
    /// Which listener `addr` points at.
    pub transport: NodeTransport,
}

impl NodeSpec {
    /// A line-TCP node.
    #[must_use]
    pub fn tcp(addr: impl Into<String>) -> NodeSpec {
        NodeSpec {
            addr: addr.into(),
            transport: NodeTransport::Tcp,
        }
    }

    /// An HTTP/1.1 node.
    #[must_use]
    pub fn http(addr: impl Into<String>) -> NodeSpec {
        NodeSpec {
            addr: addr.into(),
            transport: NodeTransport::Http,
        }
    }
}

/// Why a [`Router`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterConfigError {
    /// No nodes were configured.
    NoNodes,
    /// `replicas` was zero.
    ZeroReplicas,
    /// The health `failure_threshold` was zero (a node could never be
    /// considered healthy).
    ZeroFailureThreshold,
    /// [`RetryPolicy::read_attempts`] was zero (no read could ever run).
    ZeroReadAttempts,
}

impl fmt::Display for RouterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterConfigError::NoNodes => f.write_str("a router needs at least one catalog node"),
            RouterConfigError::ZeroReplicas => f.write_str("replication factor must be at least 1"),
            RouterConfigError::ZeroFailureThreshold => {
                f.write_str("failure threshold must be at least 1")
            }
            RouterConfigError::ZeroReadAttempts => f.write_str("read attempts must be at least 1"),
        }
    }
}

impl std::error::Error for RouterConfigError {}

/// Murmur3's 64-bit avalanche finalizer: every input bit flips every output
/// bit with probability ~1/2.  Shared by the rendezvous weight (which needs
/// the mixing on top of FNV) and the retry backoff jitter (which needs
/// deterministic pseudo-randomness without a clock or RNG).
fn fmix64(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

/// The normative rendezvous weight of `docs/PROTOCOL.md` § Cluster routing:
/// 64-bit FNV-1a over `addr NUL table NUL column`, passed through a 64-bit
/// avalanche finalizer (FNV alone barely mixes a trailing-byte difference in
/// the node address into the high bits the comparison is decided by).
fn rendezvous_weight(addr: &str, table: &str, column: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    };
    addr.bytes().for_each(&mut fold);
    fold(0);
    table.bytes().for_each(&mut fold);
    fold(0);
    column.bytes().for_each(&mut fold);
    fmix64(hash)
}

/// The rendezvous owners of `(table, column)`: node indices ordered by
/// descending rendezvous weight (ties broken by the lower index),
/// truncated to `replicas`.  Pure: every router over the same node list
/// computes the same placement, and removing a node only reassigns the keys
/// that node owned.
#[must_use]
pub fn owners(nodes: &[NodeSpec], replicas: usize, table: &str, column: &str) -> Vec<usize> {
    let mut ranked: Vec<(u64, usize)> = nodes
        .iter()
        .enumerate()
        .map(|(idx, node)| (rendezvous_weight(&node.addr, table, column), idx))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    ranked.truncate(replicas.min(nodes.len()));
    ranked.into_iter().map(|(_, idx)| idx).collect()
}

/// Merges per-node rankings into the deterministic total order (score
/// descending via `total_cmp`, then `(table, column)` ascending), deduplicated
/// by `(table, column)` — replicas return bit-identical rows, so keeping the
/// first occurrence is exact — and truncated to `k`.
fn merge_rankings(per_node: Vec<Vec<WireRanked>>, k: u64) -> Vec<WireRanked> {
    let mut all: Vec<WireRanked> = per_node.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.table.cmp(&b.table))
            .then_with(|| a.column.cmp(&b.column))
    });
    let mut seen = BTreeSet::new();
    all.retain(|r| seen.insert((r.table.clone(), r.column.clone())));
    all.truncate(usize::try_from(k).unwrap_or(usize::MAX));
    all
}

/// Merges per-node advisory notes into the lexicographically-first one by
/// `(code, message)`.  Node order must not leak into the merged answer (it
/// varies across topologies and failovers), and in practice every node that
/// attaches a note attaches the identical fixed-message one, so the merge is a
/// deterministic pick — routed answers stay byte-identical to single-node twins.
fn merge_notes(mut notes: Vec<crate::protocol::WireNote>) -> Option<crate::protocol::WireNote> {
    notes.sort_by(|a, b| a.code.cmp(&b.code).then_with(|| a.message.cmp(&b.message)));
    notes.into_iter().next()
}

/// Per-attempt deadlines and the retry/backoff schedule every router→node
/// session runs under.
///
/// The policy is deliberately clock- and RNG-free: backoff jitter is derived
/// from a Murmur3-finalizer hash over `(jitter_seed, salt, attempt)`, so two
/// routers with
/// the same seed produce the same schedule — reproducible in tests, and
/// still decorrelated across nodes because the node index salts the hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for establishing a TCP connection to a node.
    pub connect_timeout: Duration,
    /// Per-attempt deadline for reading a node's response
    /// (`TcpStream::set_read_timeout`).
    pub read_timeout: Duration,
    /// Per-attempt deadline for writing a request to a node
    /// (`TcpStream::set_write_timeout`).
    pub write_timeout: Duration,
    /// Total attempts an idempotent read gets against one node (first try
    /// included).  Non-idempotent ops always get exactly one attempt.
    pub read_attempts: u32,
    /// Backoff before retry `n` starts at `backoff_base * 2^n`…
    pub backoff_base: Duration,
    /// …and is capped here.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            read_attempts: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy with every deadline set to `timeout` (attempts and backoff
    /// keep their defaults) — the CLI's `--read-timeout-ms` shorthand.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> RetryPolicy {
        RetryPolicy {
            connect_timeout: timeout,
            read_timeout: timeout,
            write_timeout: timeout,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `attempt` (0-based) against the node
    /// salted by `salt`: capped exponential `base * 2^attempt`, jittered
    /// deterministically into `[exp/2, exp]`.
    #[must_use]
    pub fn backoff(&self, salt: u64, attempt: u32) -> Duration {
        let base = self.backoff_base.as_nanos();
        let cap = self.backoff_cap.as_nanos();
        let exp = u64::try_from((base << attempt.min(32)).min(cap)).unwrap_or(u64::MAX);
        let half = exp / 2;
        let hash = fmix64(self.jitter_seed ^ salt.rotate_left(17) ^ u64::from(attempt));
        Duration::from_nanos(half + hash % (exp - half + 1))
    }
}

/// Everything a [`Router`] can be configured with; built fluently and handed
/// to [`Router::with_config`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    nodes: Vec<NodeSpec>,
    replicas: usize,
    retry: RetryPolicy,
    failure_threshold: u64,
    probe_interval: Option<Duration>,
    session_ttl: Duration,
}

impl RouterConfig {
    /// A config over `nodes` with the defaults: [`DEFAULT_REPLICAS`], the
    /// default [`RetryPolicy`], demotion after 1 failed attempt, a 1-second
    /// health probe, and a 15-minute ingest-session TTL.
    #[must_use]
    pub fn new(nodes: Vec<NodeSpec>) -> RouterConfig {
        RouterConfig {
            nodes,
            replicas: DEFAULT_REPLICAS,
            retry: RetryPolicy::default(),
            failure_threshold: 1,
            probe_interval: Some(Duration::from_secs(1)),
            session_ttl: Duration::from_secs(15 * 60),
        }
    }

    /// Sets the replication factor (clamped to the node count at use).
    #[must_use]
    pub fn replicas(mut self, replicas: usize) -> RouterConfig {
        self.replicas = replicas;
        self
    }

    /// Sets the deadline/retry policy for node sessions.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> RouterConfig {
        self.retry = retry;
        self
    }

    /// Sets how many consecutive failed attempts demote a node.
    #[must_use]
    pub fn failure_threshold(mut self, threshold: u64) -> RouterConfig {
        self.failure_threshold = threshold;
        self
    }

    /// Sets the health-probe interval for demoted nodes (`None` disables the
    /// prober thread).
    #[must_use]
    pub fn probe_interval(mut self, interval: Option<Duration>) -> RouterConfig {
        self.probe_interval = interval;
        self
    }

    /// Sets how long an idle router-side ingest session lives before the
    /// prober thread reaps it.
    #[must_use]
    pub fn session_ttl(mut self, ttl: Duration) -> RouterConfig {
        self.session_ttl = ttl;
        self
    }
}

/// Per-node health and error counters, shared across router connections.
#[derive(Debug)]
struct NodeState {
    errors: AtomicU64,
    consecutive: AtomicU64,
    demotions: AtomicU64,
    promotions: AtomicU64,
    probes: AtomicU64,
    healthy: AtomicBool,
}

impl NodeState {
    fn new() -> NodeState {
        NodeState {
            errors: AtomicU64::new(0),
            consecutive: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            healthy: AtomicBool::new(true),
        }
    }

    /// One failed attempt: bump the error counters and demote the node once
    /// its consecutive-failure streak reaches `threshold`.
    fn record_error(&self, threshold: u64) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        let streak = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= threshold && self.healthy.swap(false, Ordering::Relaxed) {
            self.demotions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One successful round trip: the streak resets and a demoted node is
    /// promoted back into the fan-out.
    fn record_ok(&self) {
        self.consecutive.store(0, Ordering::Relaxed);
        if !self.healthy.swap(true, Ordering::Relaxed) {
            self.promotions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One immutable node list plus its health state.  The router swaps whole
/// topologies atomically ([`Router::set_nodes`]); requests and sessions pin
/// the `Arc` they started with, so indices never dangle mid-flight.
#[derive(Debug)]
struct Topology {
    nodes: Vec<NodeSpec>,
    states: Vec<NodeState>,
}

impl Topology {
    fn new(nodes: Vec<NodeSpec>) -> Topology {
        let states = nodes.iter().map(|_| NodeState::new()).collect();
        Topology { nodes, states }
    }
}

/// Cluster-wide router counters backing the `info` response's `cluster`
/// member.
#[derive(Debug)]
struct RouterStats {
    requests: AtomicU64,
    fanouts: AtomicU64,
    failovers: AtomicU64,
}

/// A router-side sharded-ingest session: the client-facing id maps onto one
/// lazily-opened session per node that owns any announced column.
#[derive(Debug)]
struct RouterSession {
    /// The logical table every shard must carry (checked at the router so the
    /// error does not depend on which node sees the mismatch first).
    table: String,
    /// The topology the session opened under.  A concurrent
    /// [`Router::set_nodes`] must not re-partition a half-announced ingest,
    /// so every shard of this session routes on this snapshot.
    topo: Arc<Topology>,
    /// Node index → that node's session id, opened at first contact.  A
    /// `BTreeMap` so `ingest-finish` fans out in deterministic node order.
    node_sessions: BTreeMap<usize, u64>,
    /// Last activity; idle sessions past the TTL are reaped by the prober.
    touched: Instant,
}

/// A node call outcome the router distinguishes: the node answered with a
/// protocol error (forwarded verbatim) versus the node was unreachable
/// (candidate for failover on reads; on writes `timed_out` picks between
/// `deadline_exceeded` and `io`).
enum NodeError {
    Remote(WireError),
    Unreachable { message: String, timed_out: bool },
}

/// Whether `body` may be retried / failed over without changing state: the
/// read-only ops.  Everything else gets exactly one attempt — a timed-out
/// write has an unknown outcome and must surface as `deadline_exceeded`.
fn is_idempotent(body: &RequestBody) -> bool {
    matches!(
        body,
        RequestBody::Info { .. }
            | RequestBody::Query { .. }
            | RequestBody::BatchQuery { .. }
            | RequestBody::ExportColumn { .. }
    )
}

/// Whether an I/O failure was deadline-flavored (the op may have executed)
/// rather than connectivity-flavored (it surely did not start).
fn is_timeout(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// The routing core: placement, fan-out, merge, health, and session mapping.
/// Owns no sockets — each router connection thread brings its own
/// [`NodePool`].
#[derive(Debug)]
pub struct Router {
    topology: RwLock<Arc<Topology>>,
    replicas: usize,
    retry: RetryPolicy,
    failure_threshold: u64,
    probe_interval: Option<Duration>,
    session_ttl: Duration,
    stats: RouterStats,
    metrics: ServerMetrics,
    sessions: Mutex<HashMap<u64, Arc<Mutex<RouterSession>>>>,
    next_session: AtomicU64,
}

impl Router {
    /// Builds a router over `nodes` with the given replication factor and
    /// every other knob at its [`RouterConfig`] default.
    ///
    /// # Errors
    ///
    /// [`RouterConfigError`] when `nodes` is empty or `replicas` is zero.
    pub fn new(nodes: Vec<NodeSpec>, replicas: usize) -> Result<Router, RouterConfigError> {
        Router::with_config(RouterConfig::new(nodes).replicas(replicas))
    }

    /// Builds a router from a full [`RouterConfig`].
    ///
    /// # Errors
    ///
    /// [`RouterConfigError`] when the config is degenerate (no nodes, zero
    /// replicas, zero failure threshold, zero read attempts).
    pub fn with_config(config: RouterConfig) -> Result<Router, RouterConfigError> {
        if config.nodes.is_empty() {
            return Err(RouterConfigError::NoNodes);
        }
        if config.replicas == 0 {
            return Err(RouterConfigError::ZeroReplicas);
        }
        if config.failure_threshold == 0 {
            return Err(RouterConfigError::ZeroFailureThreshold);
        }
        if config.retry.read_attempts == 0 {
            return Err(RouterConfigError::ZeroReadAttempts);
        }
        Ok(Router {
            topology: RwLock::new(Arc::new(Topology::new(config.nodes))),
            replicas: config.replicas,
            retry: config.retry,
            failure_threshold: config.failure_threshold,
            probe_interval: config.probe_interval,
            session_ttl: config.session_ttl,
            stats: RouterStats {
                requests: AtomicU64::new(0),
                fanouts: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
            },
            metrics: ServerMetrics::default(),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
        })
    }

    /// The current topology snapshot; callers hold the `Arc` for the whole
    /// operation so a concurrent [`set_nodes`](Self::set_nodes) cannot shift
    /// indices under them.
    fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.read().expect("topology lock"))
    }

    /// The current node list.
    #[must_use]
    pub fn nodes(&self) -> Vec<NodeSpec> {
        self.topology().nodes.clone()
    }

    /// The effective replication factor (configured, clamped to the current
    /// node count).
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas.min(self.topology().nodes.len())
    }

    /// The deadline/retry policy node sessions run under.
    #[must_use]
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Atomically replaces the node list (fresh health state, placement
    /// recomputed per request).  In-flight requests and open ingest sessions
    /// finish on the topology they started with.
    ///
    /// # Errors
    ///
    /// [`RouterConfigError::NoNodes`] when `nodes` is empty.
    pub fn set_nodes(&self, nodes: Vec<NodeSpec>) -> Result<(), RouterConfigError> {
        if nodes.is_empty() {
            return Err(RouterConfigError::NoNodes);
        }
        *self.topology.write().expect("topology lock") = Arc::new(Topology::new(nodes));
        Ok(())
    }

    /// A wire-ready snapshot of the cluster counters.
    #[must_use]
    pub fn cluster_stats(&self) -> WireClusterStats {
        let topo = self.topology();
        WireClusterStats {
            replicas: self.replicas.min(topo.nodes.len()) as u64,
            requests: self.stats.requests.load(Ordering::Relaxed),
            fanouts: self.stats.fanouts.load(Ordering::Relaxed),
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            nodes: topo
                .nodes
                .iter()
                .zip(&topo.states)
                .map(|(spec, state)| WireNodeStats {
                    addr: spec.addr.clone(),
                    transport: spec.transport.label().to_string(),
                    healthy: state.healthy.load(Ordering::Relaxed),
                    errors: state.errors.load(Ordering::Relaxed),
                    demotions: state.demotions.load(Ordering::Relaxed),
                    promotions: state.promotions.load(Ordering::Relaxed),
                    probes: state.probes.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Column indices of `columns` grouped by owner node under `topo`
    /// (preserving the shard's column order inside each group).
    fn partition_on(
        &self,
        topo: &Topology,
        table: &str,
        columns: &[crate::protocol::WireColumn],
    ) -> Vec<Vec<usize>> {
        let mut per_node = vec![Vec::new(); topo.nodes.len()];
        for (col_idx, column) in columns.iter().enumerate() {
            for node in owners(&topo.nodes, self.replicas, table, &column.name) {
                per_node[node].push(col_idx);
            }
        }
        per_node
    }

    #[cfg(test)]
    fn partition(&self, table: &str, columns: &[crate::protocol::WireColumn]) -> Vec<Vec<usize>> {
        self.partition_on(&self.topology(), table, columns)
    }

    #[cfg(test)]
    fn record_node_error(&self, idx: usize) {
        self.topology().states[idx].record_error(self.failure_threshold);
    }

    /// The sub-shard node `cols` sees: full keys, owned columns only.
    fn subset(table: &WireTable, cols: &[usize]) -> WireTable {
        WireTable {
            name: table.name.clone(),
            keys: table.keys.clone(),
            columns: cols.iter().map(|&i| table.columns[i].clone()).collect(),
        }
    }

    /// Executes one decoded request against the cluster.  `pool` is the
    /// calling connection's private set of node connections.
    ///
    /// # Errors
    ///
    /// Forwards node-side [`WireError`]s verbatim; unreachable nodes surface
    /// as `io` (or `deadline_exceeded` for timed-out writes), reads only
    /// after every replica failed.
    pub fn execute(
        &self,
        body: &RequestBody,
        pool: &mut NodePool<'_>,
    ) -> Result<ResponseBody, WireError> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let topo = self.topology();
        match body {
            RequestBody::Info { server } => self.info(&topo, *server, pool),
            RequestBody::Query { k, .. } => {
                let responses = self.fan_read(&topo, pool, body)?;
                let mut per_node = Vec::with_capacity(responses.len());
                let mut notes = Vec::new();
                for resp in responses {
                    match resp {
                        ResponseBody::Ranking { ranking, note } => {
                            per_node.push(ranking);
                            notes.extend(note);
                        }
                        _ => return Err(internal("node answered query with a non-ranking body")),
                    }
                }
                Ok(ResponseBody::Ranking {
                    ranking: merge_rankings(per_node, *k),
                    note: merge_notes(notes),
                })
            }
            RequestBody::BatchQuery { k, queries, .. } => {
                let responses = self.fan_read(&topo, pool, body)?;
                let mut per_node = Vec::with_capacity(responses.len());
                let mut notes = Vec::new();
                for resp in responses {
                    match resp {
                        ResponseBody::Rankings { rankings, note } => {
                            if rankings.len() != queries.len() {
                                return Err(internal(
                                    "node answered batch-query with a mis-sized batch",
                                ));
                            }
                            per_node.push(rankings);
                            notes.extend(note);
                        }
                        _ => {
                            return Err(internal("node answered batch-query with a non-batch body"))
                        }
                    }
                }
                let merged = (0..queries.len())
                    .map(|i| {
                        merge_rankings(per_node.iter().map(|node| node[i].clone()).collect(), *k)
                    })
                    .collect();
                Ok(ResponseBody::Rankings {
                    rankings: merged,
                    note: merge_notes(notes),
                })
            }
            RequestBody::Ingest { table, partitions } => {
                self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
                let per_node = self.partition_on(&topo, &table.name, &table.columns);
                let mut registered = BTreeSet::new();
                let mut skipped = BTreeSet::new();
                for (idx, cols) in per_node.iter().enumerate() {
                    if cols.is_empty() {
                        continue;
                    }
                    let sub = RequestBody::Ingest {
                        table: Self::subset(table, cols),
                        partitions: *partitions,
                    };
                    match self.call_write(&topo, pool, idx, &sub)? {
                        ResponseBody::Report {
                            registered: r,
                            skipped: s,
                        } => {
                            registered.extend(r);
                            skipped.extend(s);
                        }
                        _ => return Err(internal("node answered ingest with a non-report body")),
                    }
                }
                Ok(ResponseBody::Report {
                    registered: registered.into_iter().collect(),
                    skipped: skipped.into_iter().collect(),
                })
            }
            RequestBody::IngestBegin { table } => {
                let id = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                self.sessions.lock().expect("sessions lock").insert(
                    id,
                    Arc::new(Mutex::new(RouterSession {
                        table: table.clone(),
                        topo: Arc::clone(&topo),
                        node_sessions: BTreeMap::new(),
                        touched: Instant::now(),
                    })),
                );
                Ok(ResponseBody::Session(id))
            }
            RequestBody::IngestAnnounce { session, shard } => {
                self.session_shard_op(pool, *session, shard, true)
            }
            RequestBody::IngestSubmit { session, shard } => {
                self.session_shard_op(pool, *session, shard, false)
            }
            RequestBody::IngestFinish { session } => {
                let entry = self
                    .sessions
                    .lock()
                    .expect("sessions lock")
                    .remove(session)
                    .ok_or_else(|| unknown_session(*session))?;
                let state = entry.lock().expect("session lock");
                self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
                let session_topo = Arc::clone(&state.topo);
                let mut registered = BTreeSet::new();
                let mut skipped = BTreeSet::new();
                for (&idx, &node_session) in &state.node_sessions {
                    let finish = RequestBody::IngestFinish {
                        session: node_session,
                    };
                    match self.call_write(&session_topo, pool, idx, &finish)? {
                        ResponseBody::Report {
                            registered: r,
                            skipped: s,
                        } => {
                            registered.extend(r);
                            skipped.extend(s);
                        }
                        _ => {
                            return Err(internal(
                                "node answered ingest-finish with a non-report body",
                            ))
                        }
                    }
                }
                Ok(ResponseBody::Report {
                    registered: registered.into_iter().collect(),
                    skipped: skipped.into_iter().collect(),
                })
            }
            RequestBody::DropColumn { table, column } => {
                self.drop_column(&topo, pool, table, column)
            }
            RequestBody::ExportColumn { table, column } => {
                self.export_column(&topo, pool, table, column)
            }
            RequestBody::ImportColumn { sketch } => self.import_column(&topo, pool, sketch),
        }
    }

    /// `ingest-announce` / `ingest-submit`: partition the shard column-wise
    /// and forward each owner its sub-shard under that node's session.
    fn session_shard_op(
        &self,
        pool: &mut NodePool<'_>,
        session: u64,
        shard: &WireTable,
        announce: bool,
    ) -> Result<ResponseBody, WireError> {
        let entry = self
            .sessions
            .lock()
            .expect("sessions lock")
            .get(&session)
            .cloned()
            .ok_or_else(|| unknown_session(session))?;
        // The per-session lock serialises shards racing in over different
        // connections, so every node folds announces in one well-defined
        // order (the same guarantee a single node gives).
        let mut state = entry.lock().expect("session lock");
        state.touched = Instant::now();
        if shard.name != state.table {
            return Err(WireError {
                code: ErrorCode::Incompatible,
                message: format!(
                    "shard is for table `{}` but session {session} ingests `{}`",
                    shard.name, state.table
                ),
            });
        }
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let topo = Arc::clone(&state.topo);
        let per_node = self.partition_on(&topo, &shard.name, &shard.columns);
        for (idx, cols) in per_node.iter().enumerate() {
            if cols.is_empty() {
                continue;
            }
            let node_session = match state.node_sessions.get(&idx) {
                Some(&id) => id,
                None => {
                    let begin = RequestBody::IngestBegin {
                        table: state.table.clone(),
                    };
                    let id = match self.call_write(&topo, pool, idx, &begin)? {
                        ResponseBody::Session(id) => id,
                        _ => {
                            return Err(internal(
                                "node answered ingest-begin with a non-session body",
                            ))
                        }
                    };
                    state.node_sessions.insert(idx, id);
                    id
                }
            };
            let sub_shard = Self::subset(shard, cols);
            let forwarded = if announce {
                RequestBody::IngestAnnounce {
                    session: node_session,
                    shard: sub_shard,
                }
            } else {
                RequestBody::IngestSubmit {
                    session: node_session,
                    shard: sub_shard,
                }
            };
            match self.call_write(&topo, pool, idx, &forwarded)? {
                ResponseBody::Session(_) => {}
                _ => return Err(internal("node answered a shard op with a non-session body")),
            }
        }
        Ok(ResponseBody::Session(session))
    }

    /// `info`: fan out, verify every node runs the same sketcher fingerprint,
    /// and merge columns/stats into one cluster-wide view (plus the `cluster`
    /// member only routers emit).
    fn info(
        &self,
        topo: &Arc<Topology>,
        server: bool,
        pool: &mut NodePool<'_>,
    ) -> Result<ResponseBody, WireError> {
        let probe = RequestBody::Info { server: false };
        let responses = self.fan_read(topo, pool, &probe)?;
        let mut head: Option<(String, String, String, Option<String>)> = None;
        let mut columns: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut hydrated = 0u64;
        let mut bytes_on_disk = 0u64;
        for resp in responses {
            let ResponseBody::Info {
                sketcher,
                fingerprint,
                method,
                format,
                columns: node_columns,
                stats,
                ..
            } = resp
            else {
                return Err(internal("node answered info with a non-info body"));
            };
            match &head {
                None => head = Some((sketcher, fingerprint, method, format)),
                Some((_, expected, _, _)) => {
                    if *expected != fingerprint {
                        return Err(WireError {
                            code: ErrorCode::Incompatible,
                            message: format!(
                                "catalog nodes disagree on the sketcher fingerprint \
                                 ({expected} vs {fingerprint})"
                            ),
                        });
                    }
                }
            }
            for column in node_columns {
                columns.insert((column.table, column.column), column.rows);
            }
            if let Some(stats) = stats {
                hydrated += stats.hydrated;
                bytes_on_disk += stats.bytes_on_disk;
            }
        }
        let (sketcher, fingerprint, method, format) =
            head.ok_or_else(|| internal("info fan-out returned no responses"))?;
        let distinct = columns.len() as u64;
        Ok(ResponseBody::Info {
            sketcher,
            fingerprint,
            method,
            format,
            columns: columns
                .into_iter()
                .map(|((table, column), rows)| InfoColumn {
                    table,
                    column,
                    rows,
                })
                .collect(),
            // `hydrated`/`bytes_on_disk` sum over nodes, so replicated blobs
            // count once per copy — that is the cluster's real footprint.
            // `columns` counts distinct keys.
            stats: Some(WireServiceStats {
                columns: distinct,
                hydrated,
                bytes_on_disk,
                last_compaction: None,
            }),
            server: server.then(|| self.metrics.snapshot()),
            cluster: Some(Box::new(self.cluster_stats())),
        })
    }

    /// `drop-column` fans to every node: placement-agnostic, so it works even
    /// for catalogs loaded into nodes out-of-band.
    fn drop_column(
        &self,
        topo: &Arc<Topology>,
        pool: &mut NodePool<'_>,
        table: &str,
        column: &str,
    ) -> Result<ResponseBody, WireError> {
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let body = RequestBody::DropColumn {
            table: table.to_string(),
            column: column.to_string(),
        };
        let mut dropped = false;
        let mut remote: Option<WireError> = None;
        let mut unreachable: Option<String> = None;
        for idx in 0..topo.nodes.len() {
            match pool.call(topo, idx, &body) {
                Ok(ResponseBody::Dropped { .. }) => dropped = true,
                Ok(_) => {
                    return Err(internal(
                        "node answered drop-column with an unexpected body",
                    ))
                }
                Err(NodeError::Remote(e)) if e.code == ErrorCode::NotFound => {}
                Err(NodeError::Remote(e)) => {
                    remote.get_or_insert(e);
                }
                Err(NodeError::Unreachable { message, .. }) => {
                    unreachable.get_or_insert(message);
                }
            }
        }
        if let Some(error) = remote {
            return Err(error);
        }
        if dropped {
            return Ok(ResponseBody::Dropped {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        if let Some(message) = unreachable {
            // Some node we could not reach might hold the key; `not_found`
            // would over-claim.
            return Err(WireError {
                code: ErrorCode::Io,
                message,
            });
        }
        Err(WireError {
            code: ErrorCode::NotFound,
            message: format!("no catalog node holds {table}.{column}"),
        })
    }

    /// `export-column`: try the rendezvous owners first (they should hold the
    /// blob), then every other node (placement-agnostic like `drop-column`);
    /// the first sketch wins and failed candidates count as failovers.
    fn export_column(
        &self,
        topo: &Arc<Topology>,
        pool: &mut NodePool<'_>,
        table: &str,
        column: &str,
    ) -> Result<ResponseBody, WireError> {
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let body = RequestBody::ExportColumn {
            table: table.to_string(),
            column: column.to_string(),
        };
        let mut order = owners(&topo.nodes, self.replicas, table, column);
        for idx in 0..topo.nodes.len() {
            if !order.contains(&idx) {
                order.push(idx);
            }
        }
        let mut failed = 0u64;
        let mut unreachable: Option<String> = None;
        for idx in order {
            match pool.call(topo, idx, &body) {
                Ok(ResponseBody::Sketch(sketch)) => {
                    if failed > 0 {
                        self.stats.failovers.fetch_add(failed, Ordering::Relaxed);
                    }
                    return Ok(ResponseBody::Sketch(sketch));
                }
                Ok(_) => {
                    return Err(internal(
                        "node answered export-column with a non-sketch body",
                    ))
                }
                Err(NodeError::Remote(e)) if e.code == ErrorCode::NotFound => {}
                Err(NodeError::Remote(e)) => return Err(e),
                Err(NodeError::Unreachable { message, .. }) => {
                    failed += 1;
                    unreachable.get_or_insert(message);
                }
            }
        }
        if let Some(message) = unreachable {
            return Err(WireError {
                code: ErrorCode::Io,
                message,
            });
        }
        Err(WireError {
            code: ErrorCode::NotFound,
            message: format!("no catalog node holds {table}.{column}"),
        })
    }

    /// `import-column`: a write — the blob lands on every rendezvous owner of
    /// its `(table, column)`, reports merged like `ingest`.
    fn import_column(
        &self,
        topo: &Arc<Topology>,
        pool: &mut NodePool<'_>,
        sketch: &WireSketch,
    ) -> Result<ResponseBody, WireError> {
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let mut registered = BTreeSet::new();
        let mut skipped = BTreeSet::new();
        for idx in owners(&topo.nodes, self.replicas, &sketch.table, &sketch.column) {
            let body = RequestBody::ImportColumn {
                sketch: sketch.clone(),
            };
            match self.call_write(topo, pool, idx, &body)? {
                ResponseBody::Report {
                    registered: r,
                    skipped: s,
                } => {
                    registered.extend(r);
                    skipped.extend(s);
                }
                _ => {
                    return Err(internal(
                        "node answered import-column with a non-report body",
                    ))
                }
            }
        }
        Ok(ResponseBody::Report {
            registered: registered.into_iter().collect(),
            skipped: skipped.into_iter().collect(),
        })
    }

    /// Fans `body` to every node in `topo`.  Demoted nodes are skipped while
    /// at least one healthy node remains (the prober owns their recovery);
    /// skipped and unreachable nodes count as failovers once somebody
    /// answers, and if every healthy node failed the demoted ones get a last
    /// chance before the read is declared dead.
    fn fan_read(
        &self,
        topo: &Arc<Topology>,
        pool: &mut NodePool<'_>,
        body: &RequestBody,
    ) -> Result<Vec<ResponseBody>, WireError> {
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let any_healthy = topo
            .states
            .iter()
            .any(|state| state.healthy.load(Ordering::Relaxed));
        let mut answered = Vec::new();
        let mut skipped = Vec::new();
        let mut failed = 0u64;
        let mut last_unreachable = String::new();
        for idx in 0..topo.nodes.len() {
            if any_healthy && !topo.states[idx].healthy.load(Ordering::Relaxed) {
                skipped.push(idx);
                failed += 1;
                continue;
            }
            match pool.call(topo, idx, body) {
                Ok(resp) => answered.push(resp),
                Err(NodeError::Remote(error)) => return Err(error),
                Err(NodeError::Unreachable { message, .. }) => {
                    failed += 1;
                    last_unreachable = message;
                }
            }
        }
        if answered.is_empty() {
            for idx in skipped {
                match pool.call(topo, idx, body) {
                    Ok(resp) => {
                        answered.push(resp);
                        failed = failed.saturating_sub(1);
                    }
                    Err(NodeError::Remote(error)) => return Err(error),
                    Err(NodeError::Unreachable { message, .. }) => last_unreachable = message,
                }
            }
        }
        if answered.is_empty() {
            return Err(WireError {
                code: ErrorCode::Io,
                message: format!("no catalog node reachable: {last_unreachable}"),
            });
        }
        if failed > 0 {
            self.stats.failovers.fetch_add(failed, Ordering::Relaxed);
        }
        Ok(answered)
    }

    /// One write call to one node; unreachable is a hard error (a write must
    /// land on every owner or the client must hear about it) — `io` when the
    /// request surely never started, `deadline_exceeded` when a timeout left
    /// the outcome unknown.
    fn call_write(
        &self,
        topo: &Arc<Topology>,
        pool: &mut NodePool<'_>,
        idx: usize,
        body: &RequestBody,
    ) -> Result<ResponseBody, WireError> {
        pool.call(topo, idx, body).map_err(|error| match error {
            NodeError::Remote(e) => e,
            NodeError::Unreachable { message, timed_out } => {
                if timed_out {
                    WireError {
                        code: ErrorCode::DeadlineExceeded,
                        message: format!(
                            "deadline exceeded waiting on catalog node {}: the op was \
                             not retried and may or may not have been applied ({message})",
                            topo.nodes[idx].addr
                        ),
                    }
                } else {
                    WireError {
                        code: ErrorCode::Io,
                        message,
                    }
                }
            }
        })
    }

    /// One prober pass: every demoted node gets a fresh-connection `info`
    /// round trip and is promoted back on success.  Probe failures leave the
    /// demotion in place without inflating the error counter — the node was
    /// already out of rotation.
    fn probe_demoted(&self) {
        let topo = self.topology();
        let request = Request {
            id: Json::Null,
            body: RequestBody::Info { server: false },
        };
        for (spec, state) in topo.nodes.iter().zip(&topo.states) {
            if state.healthy.load(Ordering::Relaxed) {
                continue;
            }
            state.probes.fetch_add(1, Ordering::Relaxed);
            let ok = NodeConn::connect(spec, &self.retry)
                .and_then(|mut conn| conn.call(&request))
                .map(|response| response.result.is_ok())
                .unwrap_or(false);
            if ok {
                state.record_ok();
            }
        }
    }

    /// Reaps router-side ingest sessions idle past the TTL.  The mapped
    /// node-side sessions are left for each node's own TTL sweep — the
    /// router cannot know whether the nodes are reachable right now.
    fn expire_sessions(&self) {
        let ttl = self.session_ttl;
        self.sessions
            .lock()
            .expect("sessions lock")
            .retain(|_, slot| match slot.try_lock() {
                Ok(state) => state.touched.elapsed() <= ttl,
                // Locked means a shard op is mid-flight right now: alive.
                Err(_) => true,
            });
    }
}

/// One pooled connection to a node.
struct NodeConn {
    transport: NodeTransport,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NodeConn {
    /// Connects under the policy's deadlines: connect, read, and write
    /// timeouts all apply per attempt, so no node call can block a router
    /// connection past its configured budget.
    fn connect(spec: &NodeSpec, retry: &RetryPolicy) -> io::Result<NodeConn> {
        let addr = spec.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "node address resolved to nothing",
            )
        })?;
        let stream = TcpStream::connect_timeout(&addr, retry.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(retry.read_timeout))?;
        stream.set_write_timeout(Some(retry.write_timeout))?;
        Ok(NodeConn {
            transport: spec.transport,
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/response round trip on this connection.
    fn call(&mut self, request: &Request) -> io::Result<Response> {
        let line = request.encode();
        match self.transport {
            NodeTransport::Tcp => {
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")?;
                let mut reply = String::new();
                let n = self.reader.read_line(&mut reply)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "node closed the connection",
                    ));
                }
                Response::decode(reply.trim_end_matches(['\r', '\n']))
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            NodeTransport::Http => {
                let head = format!(
                    "POST /v1/{} HTTP/1.1\r\nHost: router\r\nContent-Length: {}\r\n\r\n",
                    request.body.op(),
                    line.len()
                );
                self.writer.write_all(head.as_bytes())?;
                self.writer.write_all(line.as_bytes())?;
                let mut status = String::new();
                if self.reader.read_line(&mut status)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "node closed the connection",
                    ));
                }
                let mut content_length: Option<usize> = None;
                loop {
                    let mut header = String::new();
                    if self.reader.read_line(&mut header)? == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "node closed mid-headers",
                        ));
                    }
                    let header = header.trim_end_matches(['\r', '\n']);
                    if header.is_empty() {
                        break;
                    }
                    if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:")
                    {
                        content_length = Some(value.trim().parse().map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                        })?);
                    }
                }
                let length = content_length.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "node response had no length")
                })?;
                let mut body = vec![0u8; length];
                self.reader.read_exact(&mut body)?;
                let body = std::str::from_utf8(&body).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "node body is not UTF-8")
                })?;
                // Status is ignored on purpose: the JSON envelope carries the
                // same success/error information with more detail.
                let _ = status;
                Response::decode(body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
        }
    }
}

/// One router connection's private node connections, opened lazily and reset
/// whenever the topology snapshot they were opened under is swapped out.
pub struct NodePool<'a> {
    router: &'a Router,
    topo: Arc<Topology>,
    conns: Vec<Option<NodeConn>>,
}

impl<'a> NodePool<'a> {
    /// An empty pool for `router`'s current node list.
    #[must_use]
    pub fn new(router: &'a Router) -> NodePool<'a> {
        let topo = router.topology();
        NodePool {
            conns: topo.nodes.iter().map(|_| None).collect(),
            topo,
            router,
        }
    }

    /// Re-targets the pool at `topo` (dropping every pooled connection) when
    /// it is not the snapshot the pool was last synced to.
    fn sync(&mut self, topo: &Arc<Topology>) {
        if !Arc::ptr_eq(&self.topo, topo) {
            self.topo = Arc::clone(topo);
            self.conns = topo.nodes.iter().map(|_| None).collect();
        }
    }

    /// One round trip to node `idx` of `topo` under the router's
    /// [`RetryPolicy`].
    ///
    /// A failed round trip on a *pooled* connection proves nothing about the
    /// node (it may simply have dropped an idle keep-alive), so it is retried
    /// once on a fresh connection without recording a node error — but only
    /// for idempotent bodies: a write may already have landed, so it returns
    /// unreachable immediately.  Failures on *fresh* connections record node
    /// errors (driving demotion) and, for idempotent bodies, retry with
    /// deterministic backoff up to [`RetryPolicy::read_attempts`].
    fn call(
        &mut self,
        topo: &Arc<Topology>,
        idx: usize,
        body: &RequestBody,
    ) -> Result<ResponseBody, NodeError> {
        self.sync(topo);
        let request = Request {
            id: Json::Null,
            body: body.clone(),
        };
        let spec = &topo.nodes[idx];
        let state = &topo.states[idx];
        let retry = &self.router.retry;
        let idempotent = is_idempotent(body);
        let attempts = if idempotent { retry.read_attempts } else { 1 };
        let mut fresh_failures = 0u32;
        let mut backoff_attempt = 0u32;
        loop {
            let pooled = self.conns[idx].is_some();
            if !pooled {
                match NodeConn::connect(spec, retry) {
                    Ok(conn) => self.conns[idx] = Some(conn),
                    Err(error) => {
                        state.record_error(self.router.failure_threshold);
                        fresh_failures += 1;
                        if idempotent && fresh_failures < attempts {
                            thread::sleep(retry.backoff(idx as u64, backoff_attempt));
                            backoff_attempt += 1;
                            continue;
                        }
                        return Err(NodeError::Unreachable {
                            message: format!("catalog node {} unreachable: {error}", spec.addr),
                            timed_out: is_timeout(&error),
                        });
                    }
                }
            }
            let conn = self.conns[idx].as_mut().expect("connected above");
            match conn.call(&request) {
                Ok(response) => {
                    state.record_ok();
                    return match response.result {
                        Ok(body) => Ok(body),
                        Err(error) => Err(NodeError::Remote(error)),
                    };
                }
                Err(error) => {
                    self.conns[idx] = None;
                    if pooled {
                        if idempotent {
                            // Free reconnect: a dropped keep-alive is not a
                            // node failure and must not demote anybody.
                            continue;
                        }
                        return Err(NodeError::Unreachable {
                            message: format!(
                                "catalog node {} failed mid-write on a pooled connection: {error}",
                                spec.addr
                            ),
                            timed_out: is_timeout(&error),
                        });
                    }
                    state.record_error(self.router.failure_threshold);
                    fresh_failures += 1;
                    if idempotent && fresh_failures < attempts {
                        thread::sleep(retry.backoff(idx as u64, backoff_attempt));
                        backoff_attempt += 1;
                        continue;
                    }
                    return Err(NodeError::Unreachable {
                        message: format!("catalog node {} failed: {error}", spec.addr),
                        timed_out: is_timeout(&error),
                    });
                }
            }
        }
    }
}

fn internal(message: &str) -> WireError {
    WireError {
        code: ErrorCode::Internal,
        message: message.to_string(),
    }
}

fn unknown_session(session: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("no open ingest session {session}"),
    }
}

/// The outcome of a [`rebalance`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Distinct `(table, column)` keys discovered on the source nodes.
    pub keys: u64,
    /// Blobs copied onto a target node that did not hold them.
    pub copied: u64,
    /// `(key, target)` placements that already held the blob (overlapping
    /// node lists, replicas, or an earlier interrupted run).
    pub already_placed: u64,
}

/// Streams every sketched column held by the `from` nodes onto its rendezvous
/// owners among the `to` nodes — the **copy** half of a copy-then-flip live
/// rebalance (the flip is [`Router::set_nodes`] / restarting routers on the
/// new list).
///
/// Blobs move verbatim (`export-column` → `import-column`), so the copies are
/// byte-identical and a router answers bit-identically over the old list, the
/// new list, or any moment in between.  The run is strict about inventory —
/// every node on both sides must answer `info`, otherwise keys could be
/// silently lost — but tolerant of per-blob source hiccups (each export fails
/// over across every source replica) and idempotent: re-running after an
/// interruption skips what already landed.
///
/// # Errors
///
/// `bad_request` for empty node lists; otherwise the first node error, with
/// timeouts surfaced as `deadline_exceeded` and connectivity as `io`.
pub fn rebalance(
    from: &[NodeSpec],
    to: &[NodeSpec],
    replicas: usize,
    retry: &RetryPolicy,
) -> Result<RebalanceReport, WireError> {
    if from.is_empty() || to.is_empty() {
        return Err(WireError {
            code: ErrorCode::BadRequest,
            message: "rebalance needs at least one source and one target node".to_string(),
        });
    }
    let replicas = replicas.max(1);
    let mut from_conns: Vec<Option<NodeConn>> = from.iter().map(|_| None).collect();
    let mut to_conns: Vec<Option<NodeConn>> = to.iter().map(|_| None).collect();
    let info = RequestBody::Info { server: false };
    let mut holders: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for idx in 0..from.len() {
        let ResponseBody::Info { columns, .. } =
            rebalance_call(from, &mut from_conns, retry, idx, &info)?
        else {
            return Err(internal("node answered info with a non-info body"));
        };
        for column in columns {
            holders
                .entry((column.table, column.column))
                .or_default()
                .push(idx);
        }
    }
    let mut target_keys: Vec<BTreeSet<(String, String)>> = Vec::new();
    for idx in 0..to.len() {
        let ResponseBody::Info { columns, .. } =
            rebalance_call(to, &mut to_conns, retry, idx, &info)?
        else {
            return Err(internal("node answered info with a non-info body"));
        };
        target_keys.push(columns.into_iter().map(|c| (c.table, c.column)).collect());
    }
    let mut report = RebalanceReport {
        keys: holders.len() as u64,
        copied: 0,
        already_placed: 0,
    };
    for ((table, column), sources) in &holders {
        let mut sketch: Option<WireSketch> = None;
        for target in owners(to, replicas, table, column) {
            if target_keys[target].contains(&(table.clone(), column.clone())) {
                report.already_placed += 1;
                continue;
            }
            if sketch.is_none() {
                sketch = Some(export_from_holders(
                    from,
                    &mut from_conns,
                    retry,
                    sources,
                    table,
                    column,
                )?);
            }
            let import = RequestBody::ImportColumn {
                sketch: sketch.clone().expect("exported above"),
            };
            match rebalance_call(to, &mut to_conns, retry, target, &import)? {
                ResponseBody::Report { registered, .. } if !registered.is_empty() => {
                    report.copied += 1;
                }
                ResponseBody::Report { .. } => report.already_placed += 1,
                _ => {
                    return Err(internal(
                        "node answered import-column with a non-report body",
                    ))
                }
            }
        }
    }
    Ok(report)
}

/// Exports one blob, failing over across every source replica that holds it.
fn export_from_holders(
    from: &[NodeSpec],
    conns: &mut [Option<NodeConn>],
    retry: &RetryPolicy,
    sources: &[usize],
    table: &str,
    column: &str,
) -> Result<WireSketch, WireError> {
    let body = RequestBody::ExportColumn {
        table: table.to_string(),
        column: column.to_string(),
    };
    let mut last: Option<WireError> = None;
    for &idx in sources {
        match rebalance_call(from, conns, retry, idx, &body) {
            Ok(ResponseBody::Sketch(sketch)) => return Ok(sketch),
            Ok(_) => {
                return Err(internal(
                    "node answered export-column with a non-sketch body",
                ))
            }
            Err(error) => last = Some(error),
        }
    }
    Err(last.unwrap_or_else(|| WireError {
        code: ErrorCode::NotFound,
        message: format!("no source node holds {table}.{column}"),
    }))
}

/// One lazily-pooled call for [`rebalance`]; remote errors come back
/// verbatim, I/O failures as `io`/`deadline_exceeded`.
fn rebalance_call(
    specs: &[NodeSpec],
    conns: &mut [Option<NodeConn>],
    retry: &RetryPolicy,
    idx: usize,
    body: &RequestBody,
) -> Result<ResponseBody, WireError> {
    let spec = &specs[idx];
    if conns[idx].is_none() {
        let conn = NodeConn::connect(spec, retry).map_err(|e| rebalance_io(&spec.addr, &e))?;
        conns[idx] = Some(conn);
    }
    let conn = conns[idx].as_mut().expect("connected above");
    let request = Request {
        id: Json::Null,
        body: body.clone(),
    };
    match conn.call(&request) {
        Ok(response) => response.result,
        Err(error) => {
            conns[idx] = None;
            Err(rebalance_io(&spec.addr, &error))
        }
    }
}

fn rebalance_io(addr: &str, error: &io::Error) -> WireError {
    WireError {
        code: if is_timeout(error) {
            ErrorCode::DeadlineExceeded
        } else {
            ErrorCode::Io
        },
        message: format!("catalog node {addr}: {error}"),
    }
}

/// Shared state between the accept loop, connection threads, the prober, and
/// the handle.
struct RouterShared {
    router: Router,
    stop: AtomicBool,
    client_streams: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    probe_lock: Mutex<()>,
    probe_cv: Condvar,
}

/// A running router front end; dropping without [`shutdown`](Self::shutdown)
/// leaks the accept thread, so tests should always shut down.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listener address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the cluster counters.
    #[must_use]
    pub fn stats(&self) -> WireClusterStats {
        self.shared.router.cluster_stats()
    }

    /// Atomically re-points the running router at a new node list — the
    /// **flip** half of a live rebalance.  See [`Router::set_nodes`].
    ///
    /// # Errors
    ///
    /// [`RouterConfigError::NoNodes`] when `nodes` is empty.
    pub fn set_nodes(&self, nodes: Vec<NodeSpec>) -> Result<(), RouterConfigError> {
        self.shared.router.set_nodes(nodes)
    }

    /// Blocks until the accept loop exits (it only does when the process is
    /// killed or [`shutdown`](Self::shutdown) runs from another thread) — the
    /// CLI's run-until-killed mode.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting, closes every client connection, and joins all
    /// threads (prober included).
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Acquire-release the probe lock before notifying so a prober already
        // past its stop check but not yet waiting cannot miss the wakeup.
        drop(self.shared.probe_lock.lock().expect("probe lock"));
        self.shared.probe_cv.notify_all();
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        // Nudge the blocking accept so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for stream in self
            .shared
            .client_streams
            .lock()
            .expect("streams lock")
            .drain(..)
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self
            .shared
            .conn_threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

/// Binds `addr` and serves the line-JSON protocol over `router`: one blocking
/// thread per client connection, each with its own node-connection pool, plus
/// a background health prober when the config asks for one.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_router(router: Router, addr: SocketAddr) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let probe_interval = router.probe_interval;
    let shared = Arc::new(RouterShared {
        router,
        stop: AtomicBool::new(false),
        client_streams: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
        probe_lock: Mutex::new(()),
        probe_cv: Condvar::new(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = thread::Builder::new()
        .name("router-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if let Ok(clone) = stream.try_clone() {
                    accept_shared
                        .client_streams
                        .lock()
                        .expect("streams lock")
                        .push(clone);
                }
                let conn_shared = Arc::clone(&accept_shared);
                let handle = thread::Builder::new()
                    .name("router-conn".to_string())
                    .spawn(move || handle_connection(&conn_shared, stream))
                    .expect("spawn router connection thread");
                accept_shared
                    .conn_threads
                    .lock()
                    .expect("threads lock")
                    .push(handle);
            }
        })?;
    let prober = match probe_interval {
        Some(interval) => {
            let probe_shared = Arc::clone(&shared);
            Some(
                thread::Builder::new()
                    .name("router-probe".to_string())
                    .spawn(move || loop {
                        let guard = probe_shared.probe_lock.lock().expect("probe lock");
                        if probe_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let (guard, _) = probe_shared
                            .probe_cv
                            .wait_timeout(guard, interval)
                            .expect("probe wait");
                        drop(guard);
                        if probe_shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        probe_shared.router.probe_demoted();
                        probe_shared.router.expire_sessions();
                    })?,
            )
        }
        None => None,
    };
    Ok(RouterHandle {
        addr,
        shared,
        accept: Some(accept),
        prober,
    })
}

/// Reads one newline-terminated line, bounded by `max` bytes.  Returns
/// `Ok(None)` at EOF and `Err` with a wire error when the line overflowed.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    buf: &mut Vec<u8>,
) -> io::Result<Option<Result<(), WireError>>> {
    buf.clear();
    let n = reader
        .by_ref()
        .take((max + 2) as u64)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > max {
            return Ok(Some(Err(WireError {
                code: ErrorCode::TooLarge,
                message: format!("request line exceeds the router's {max}-byte bound"),
            })));
        }
        // EOF mid-line: nothing well-formed to answer.
        return Ok(None);
    }
    Ok(Some(Ok(())))
}

fn handle_connection(shared: &RouterShared, stream: TcpStream) {
    let metrics = &shared.router.metrics;
    metrics.connections_open.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut pool = NodePool::new(&shared.router);
    let mut buf = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let framed = match read_line_bounded(&mut reader, MAX_LINE_BYTES, &mut buf) {
            Ok(Some(framed)) => framed,
            Ok(None) | Err(_) => break,
        };
        let started = Instant::now();
        let (response, op, close) = match framed {
            Err(error) => (
                Response {
                    id: Json::Null,
                    result: Err(error),
                },
                "invalid",
                true,
            ),
            Ok(()) => {
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim_end_matches(['\r', '\n']);
                match Request::decode(line) {
                    Err(decode_error) => (
                        Response {
                            id: decode_error.id,
                            result: Err(decode_error.error),
                        },
                        "invalid",
                        false,
                    ),
                    Ok(request) => {
                        let op = request.body.op();
                        let result = shared.router.execute(&request.body, &mut pool);
                        (
                            Response {
                                id: request.id,
                                result,
                            },
                            op,
                            false,
                        )
                    }
                }
            }
        };
        let is_error = response.result.is_err();
        metrics.record(op, started.elapsed(), is_error);
        let mut line = response.encode();
        line.push('\n');
        if writer.write_all(line.as_bytes()).is_err() {
            break;
        }
        if close {
            break;
        }
    }
    metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireColumn;

    fn nodes(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| NodeSpec::tcp(format!("127.0.0.1:{}", 7000 + i)))
            .collect()
    }

    #[test]
    fn rendezvous_placement_is_deterministic_and_replicated() {
        let cluster = nodes(5);
        for (table, column) in [("orders", "price"), ("orders", "qty"), ("users", "age")] {
            let first = owners(&cluster, 2, table, column);
            let second = owners(&cluster, 2, table, column);
            assert_eq!(first, second);
            assert_eq!(first.len(), 2);
            assert_ne!(first[0], first[1]);
        }
        // Replica count clamps to the cluster size.
        assert_eq!(owners(&cluster, 9, "t", "c").len(), 5);
    }

    #[test]
    fn rendezvous_spreads_keys_and_removal_only_moves_orphans() {
        let cluster = nodes(4);
        let keys: Vec<(String, String)> = (0..200)
            .map(|i| ("lake".to_string(), format!("col_{i}")))
            .collect();
        let mut load = [0usize; 4];
        for (table, column) in &keys {
            for idx in owners(&cluster, 1, table, column) {
                load[idx] += 1;
            }
        }
        // Each node should carry a non-trivial share of 200 keys.
        for (idx, count) in load.iter().enumerate() {
            assert!(*count > 10, "node {idx} got only {count} of 200 keys");
        }
        // Dropping the last node must not move keys between surviving nodes.
        let survivors = &cluster[..3];
        for (table, column) in &keys {
            let before = owners(&cluster, 1, table, column)[0];
            let after = owners(survivors, 1, table, column)[0];
            if before != 3 {
                assert_eq!(before, after, "key {table}.{column} moved needlessly");
            }
        }
    }

    #[test]
    fn merge_orders_deduplicates_and_truncates() {
        let ranked = |table: &str, column: &str, score: f64| WireRanked {
            table: table.to_string(),
            column: column.to_string(),
            score,
            join_size: 1.0,
            correlation: 0.0,
        };
        let node_a = vec![ranked("t", "a", 0.9), ranked("t", "b", 0.5)];
        let node_b = vec![ranked("t", "a", 0.9), ranked("t", "c", 0.5)];
        let merged = merge_rankings(vec![node_a, node_b], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(
            (merged[0].table.as_str(), merged[0].column.as_str()),
            ("t", "a")
        );
        // Ties order by (table, column) ascending: `b` before `c`.
        assert_eq!(
            (merged[1].table.as_str(), merged[1].column.as_str()),
            ("t", "b")
        );
    }

    #[test]
    fn partition_covers_every_column_replicas_times() {
        let router = Router::new(nodes(3), 2).expect("config");
        let columns: Vec<WireColumn> = (0..40)
            .map(|i| WireColumn {
                name: format!("c{i}"),
                values: vec![1.0],
            })
            .collect();
        let per_node = router.partition("lake", &columns);
        let mut copies = vec![0usize; columns.len()];
        for cols in &per_node {
            for &idx in cols {
                copies[idx] += 1;
            }
        }
        assert!(copies.iter().all(|&c| c == 2), "every column on 2 nodes");
    }

    #[test]
    fn router_config_is_validated() {
        assert_eq!(
            Router::new(Vec::new(), 2).unwrap_err(),
            RouterConfigError::NoNodes
        );
        assert_eq!(
            Router::new(nodes(2), 0).unwrap_err(),
            RouterConfigError::ZeroReplicas
        );
        let clamped = Router::new(nodes(2), 5).expect("config");
        assert_eq!(clamped.replicas(), 2);
        assert_eq!(
            Router::with_config(RouterConfig::new(nodes(2)).failure_threshold(0)).unwrap_err(),
            RouterConfigError::ZeroFailureThreshold
        );
        let zero_reads = RetryPolicy {
            read_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(
            Router::with_config(RouterConfig::new(nodes(2)).retry(zero_reads)).unwrap_err(),
            RouterConfigError::ZeroReadAttempts
        );
    }

    #[test]
    fn cluster_stats_report_every_node() {
        let router = Router::new(
            vec![
                NodeSpec::tcp("127.0.0.1:7001"),
                NodeSpec::http("127.0.0.1:7002"),
            ],
            2,
        )
        .expect("config");
        router.record_node_error(1);
        let stats = router.cluster_stats();
        assert_eq!(stats.replicas, 2);
        assert_eq!(stats.nodes.len(), 2);
        assert_eq!(stats.nodes[0].transport, "tcp");
        assert!(stats.nodes[0].healthy);
        assert_eq!(stats.nodes[1].transport, "http");
        assert!(!stats.nodes[1].healthy);
        assert_eq!(stats.nodes[1].errors, 1);
        assert_eq!(stats.nodes[1].demotions, 1);
        assert_eq!(stats.nodes[1].promotions, 0);
    }

    #[test]
    fn backoff_is_deterministic_and_stays_in_the_jitter_window() {
        let policy = RetryPolicy::default();
        for salt in 0..4u64 {
            for attempt in 0..8u32 {
                let pause = policy.backoff(salt, attempt);
                assert_eq!(pause, policy.backoff(salt, attempt), "deterministic");
                let exp = (policy.backoff_base.as_nanos() << attempt.min(32))
                    .min(policy.backoff_cap.as_nanos());
                let exp = u64::try_from(exp).expect("fits");
                assert!(
                    pause.as_nanos() >= u128::from(exp / 2) && pause.as_nanos() <= u128::from(exp),
                    "attempt {attempt} pause {pause:?} outside [{}, {exp}] ns",
                    exp / 2
                );
            }
        }
        // The cap holds even for absurd attempt counts.
        assert!(policy.backoff(0, 63) <= policy.backoff_cap);
        // Different salts decorrelate the schedule at least somewhere.
        assert!((0..16u64).any(|s| policy.backoff(s, 3) != policy.backoff(0, 3)));
    }

    #[test]
    fn only_reads_are_idempotent() {
        use crate::protocol::{Mode, WireQuery};
        let q = WireQuery {
            table: "t".into(),
            column: "c".into(),
            keys: vec![1],
            values: vec![1.0],
        };
        assert!(is_idempotent(&RequestBody::Info { server: true }));
        assert!(is_idempotent(&RequestBody::Query {
            mode: Mode::Joinable,
            k: 1,
            min_join_size: 0.0,
            cascade: false,
            query: q.clone(),
        }));
        assert!(is_idempotent(&RequestBody::BatchQuery {
            mode: Mode::Joinable,
            k: 1,
            min_join_size: 0.0,
            cascade: true,
            queries: vec![q],
        }));
        assert!(is_idempotent(&RequestBody::ExportColumn {
            table: "t".into(),
            column: "c".into(),
        }));
        assert!(!is_idempotent(&RequestBody::IngestBegin {
            table: "t".into()
        }));
        assert!(!is_idempotent(&RequestBody::IngestFinish { session: 1 }));
        assert!(!is_idempotent(&RequestBody::DropColumn {
            table: "t".into(),
            column: "c".into(),
        }));
        assert!(!is_idempotent(&RequestBody::ImportColumn {
            sketch: WireSketch {
                table: "t".into(),
                column: "c".into(),
                rows: 1,
                bytes: vec![0],
            },
        }));
    }

    #[test]
    fn set_nodes_swaps_topology_with_fresh_health() {
        let router = Router::new(nodes(2), 2).expect("config");
        router.record_node_error(0);
        assert!(!router.cluster_stats().nodes[0].healthy);
        router.set_nodes(nodes(3)).expect("swap");
        let stats = router.cluster_stats();
        assert_eq!(stats.nodes.len(), 3);
        assert!(stats.nodes.iter().all(|n| n.healthy && n.errors == 0));
        assert_eq!(router.replicas(), 2);
        assert_eq!(
            router.set_nodes(Vec::new()).unwrap_err(),
            RouterConfigError::NoNodes
        );
    }

    #[test]
    fn rebalance_rejects_empty_node_lists() {
        let error = rebalance(&[], &nodes(1), 2, &RetryPolicy::default()).unwrap_err();
        assert_eq!(error.code, ErrorCode::BadRequest);
        let error = rebalance(&nodes(1), &[], 2, &RetryPolicy::default()).unwrap_err();
        assert_eq!(error.code, ErrorCode::BadRequest);
    }

    #[test]
    fn health_state_demotes_on_streaks_and_promotes_once() {
        let state = NodeState::new();
        state.record_error(2);
        assert!(state.healthy.load(Ordering::Relaxed), "below threshold");
        state.record_error(2);
        assert!(
            !state.healthy.load(Ordering::Relaxed),
            "streak of 2 demotes"
        );
        assert_eq!(state.demotions.load(Ordering::Relaxed), 1);
        state.record_error(2);
        assert_eq!(state.demotions.load(Ordering::Relaxed), 1, "already down");
        state.record_ok();
        assert!(state.healthy.load(Ordering::Relaxed));
        assert_eq!(state.promotions.load(Ordering::Relaxed), 1);
        state.record_ok();
        assert_eq!(state.promotions.load(Ordering::Relaxed), 1, "already up");
        // The streak reset means one new error does not re-demote at 2.
        state.record_error(2);
        assert!(state.healthy.load(Ordering::Relaxed));
    }
}
