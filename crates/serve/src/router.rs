//! Multi-node catalog router: one process that fronts N independent catalog
//! nodes and speaks the same line-JSON protocol as a single `ipsketch serve`.
//!
//! The router owns no sketches.  It partitions `(table, column)` keys across
//! the configured nodes with rendezvous (highest-random-weight) hashing,
//! replicating every key to `replicas` owners so reads survive a node loss:
//!
//! * **Writes** (`ingest`, the `ingest-begin`/`announce`/`submit`/`finish`
//!   session ops) are split column-wise: each owner node receives the shard's
//!   full key vector plus only the columns it owns.  The announced-norm `Σv²`
//!   exchange therefore runs as a real cross-node round — the router maps its
//!   client-facing session onto one lazily-opened session per involved node
//!   and forwards announce/submit sub-shards in arrival order, so every node
//!   seals exactly the norms its columns need.
//! * **Reads** (`query`, `batch-query`, `info`) fan out to every node and the
//!   per-node top-k lists are merged under the deterministic total order
//!   (score descending via `total_cmp`, then `(table, column)` ascending),
//!   deduplicated by key, and truncated to `k`.  Because replicas register
//!   bit-identical blobs, a node loss changes nothing the merge can observe:
//!   the surviving replica's entries are byte-identical.  A connect or I/O
//!   failure on a fan-out is counted as a failover in [`WireClusterStats`].
//! * **`drop-column`** fans to every node (placement-agnostic: operators may
//!   have loaded nodes out-of-band) and succeeds when any node dropped the
//!   key.
//!
//! `docs/PROTOCOL.md` § Cluster routing is the normative description of the
//! routing function and the merge; `tests/cluster_loopback.rs` asserts a
//! 3-node cluster answers bit-identically to a single node.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crate::metrics::ServerMetrics;
use crate::protocol::{
    ErrorCode, InfoColumn, Request, RequestBody, Response, ResponseBody, WireClusterStats,
    WireError, WireNodeStats, WireRanked, WireServiceStats, WireTable,
};
use crate::wire::Json;

/// Default replication factor: every key lives on two nodes, so the cluster
/// keeps answering (bit-identically) with any single node down.
pub const DEFAULT_REPLICAS: usize = 2;

/// Router request lines are bounded like the server's default.
const MAX_LINE_BYTES: usize = 64 << 20;

/// How a node is spoken to on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeTransport {
    /// Newline-delimited JSON over a raw TCP connection.
    Tcp,
    /// The HTTP/1.1 binding (`POST /v1/<op>`, identical JSON bodies).
    Http,
}

impl NodeTransport {
    /// The stable label reported in [`WireNodeStats::transport`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NodeTransport::Tcp => "tcp",
            NodeTransport::Http => "http",
        }
    }
}

/// One catalog node the router fronts.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// `host:port` of the node's listener for the chosen transport.
    pub addr: String,
    /// Which listener `addr` points at.
    pub transport: NodeTransport,
}

impl NodeSpec {
    /// A line-TCP node.
    #[must_use]
    pub fn tcp(addr: impl Into<String>) -> NodeSpec {
        NodeSpec {
            addr: addr.into(),
            transport: NodeTransport::Tcp,
        }
    }

    /// An HTTP/1.1 node.
    #[must_use]
    pub fn http(addr: impl Into<String>) -> NodeSpec {
        NodeSpec {
            addr: addr.into(),
            transport: NodeTransport::Http,
        }
    }
}

/// Why a [`Router`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterConfigError {
    /// No nodes were configured.
    NoNodes,
    /// `replicas` was zero.
    ZeroReplicas,
}

impl fmt::Display for RouterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterConfigError::NoNodes => f.write_str("a router needs at least one catalog node"),
            RouterConfigError::ZeroReplicas => f.write_str("replication factor must be at least 1"),
        }
    }
}

impl std::error::Error for RouterConfigError {}

/// The normative rendezvous weight of `docs/PROTOCOL.md` § Cluster routing:
/// 64-bit FNV-1a over `addr NUL table NUL column`, passed through a 64-bit
/// avalanche finalizer (FNV alone barely mixes a trailing-byte difference in
/// the node address into the high bits the comparison is decided by).
fn rendezvous_weight(addr: &str, table: &str, column: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    };
    addr.bytes().for_each(&mut fold);
    fold(0);
    table.bytes().for_each(&mut fold);
    fold(0);
    column.bytes().for_each(&mut fold);
    // Murmur3's 64-bit finalizer: full avalanche, so every input bit decides
    // the weight ordering with probability ~1/2.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^= hash >> 33;
    hash
}

/// The rendezvous owners of `(table, column)`: node indices ordered by
/// descending [`rendezvous_weight`] (ties broken by the lower index),
/// truncated to `replicas`.  Pure: every router over the same node list
/// computes the same placement, and removing a node only reassigns the keys
/// that node owned.
#[must_use]
pub fn owners(nodes: &[NodeSpec], replicas: usize, table: &str, column: &str) -> Vec<usize> {
    let mut ranked: Vec<(u64, usize)> = nodes
        .iter()
        .enumerate()
        .map(|(idx, node)| (rendezvous_weight(&node.addr, table, column), idx))
        .collect();
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    ranked.truncate(replicas.min(nodes.len()));
    ranked.into_iter().map(|(_, idx)| idx).collect()
}

/// Merges per-node rankings into the deterministic total order (score
/// descending via `total_cmp`, then `(table, column)` ascending), deduplicated
/// by `(table, column)` — replicas return bit-identical rows, so keeping the
/// first occurrence is exact — and truncated to `k`.
fn merge_rankings(per_node: Vec<Vec<WireRanked>>, k: u64) -> Vec<WireRanked> {
    let mut all: Vec<WireRanked> = per_node.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.table.cmp(&b.table))
            .then_with(|| a.column.cmp(&b.column))
    });
    let mut seen = BTreeSet::new();
    all.retain(|r| seen.insert((r.table.clone(), r.column.clone())));
    all.truncate(usize::try_from(k).unwrap_or(usize::MAX));
    all
}

/// Per-node health/error counters, shared across router connections.
#[derive(Debug)]
struct NodeState {
    errors: AtomicU64,
    healthy: AtomicBool,
}

/// Cluster-wide router counters backing the `info` response's `cluster`
/// member.
#[derive(Debug)]
struct RouterStats {
    requests: AtomicU64,
    fanouts: AtomicU64,
    failovers: AtomicU64,
    nodes: Vec<NodeState>,
}

/// A router-side sharded-ingest session: the client-facing id maps onto one
/// lazily-opened session per node that owns any announced column.
#[derive(Debug)]
struct RouterSession {
    /// The logical table every shard must carry (checked at the router so the
    /// error does not depend on which node sees the mismatch first).
    table: String,
    /// Node index → that node's session id, opened at first contact.  A
    /// `BTreeMap` so `ingest-finish` fans out in deterministic node order.
    node_sessions: BTreeMap<usize, u64>,
}

/// A node call outcome the router distinguishes: the node answered with a
/// protocol error (forwarded verbatim) versus the node was unreachable
/// (candidate for failover on reads, hard failure on writes).
enum NodeError {
    Remote(WireError),
    Unreachable(String),
}

/// The routing core: placement, fan-out, merge, and session mapping.  Owns no
/// sockets — each router connection thread brings its own [`NodePool`].
#[derive(Debug)]
pub struct Router {
    nodes: Vec<NodeSpec>,
    replicas: usize,
    stats: RouterStats,
    metrics: ServerMetrics,
    sessions: Mutex<HashMap<u64, Arc<Mutex<RouterSession>>>>,
    next_session: AtomicU64,
}

impl Router {
    /// Builds a router over `nodes` with the given replication factor
    /// (clamped to the node count).
    ///
    /// # Errors
    ///
    /// [`RouterConfigError`] when `nodes` is empty or `replicas` is zero.
    pub fn new(nodes: Vec<NodeSpec>, replicas: usize) -> Result<Router, RouterConfigError> {
        if nodes.is_empty() {
            return Err(RouterConfigError::NoNodes);
        }
        if replicas == 0 {
            return Err(RouterConfigError::ZeroReplicas);
        }
        let stats = RouterStats {
            requests: AtomicU64::new(0),
            fanouts: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            nodes: nodes
                .iter()
                .map(|_| NodeState {
                    errors: AtomicU64::new(0),
                    healthy: AtomicBool::new(true),
                })
                .collect(),
        };
        let replicas = replicas.min(nodes.len());
        Ok(Router {
            nodes,
            replicas,
            stats,
            metrics: ServerMetrics::default(),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
        })
    }

    /// The configured nodes.
    #[must_use]
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// The effective replication factor.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// A wire-ready snapshot of the cluster counters.
    #[must_use]
    pub fn cluster_stats(&self) -> WireClusterStats {
        WireClusterStats {
            replicas: self.replicas as u64,
            requests: self.stats.requests.load(Ordering::Relaxed),
            fanouts: self.stats.fanouts.load(Ordering::Relaxed),
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            nodes: self
                .nodes
                .iter()
                .zip(&self.stats.nodes)
                .map(|(spec, state)| WireNodeStats {
                    addr: spec.addr.clone(),
                    transport: spec.transport.label().to_string(),
                    healthy: state.healthy.load(Ordering::Relaxed),
                    errors: state.errors.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Column indices of `columns` grouped by owner node (preserving the
    /// shard's column order inside each group).
    fn partition(&self, table: &str, columns: &[crate::protocol::WireColumn]) -> Vec<Vec<usize>> {
        let mut per_node = vec![Vec::new(); self.nodes.len()];
        for (col_idx, column) in columns.iter().enumerate() {
            for node in owners(&self.nodes, self.replicas, table, &column.name) {
                per_node[node].push(col_idx);
            }
        }
        per_node
    }

    /// The sub-shard node `cols` sees: full keys, owned columns only.
    fn subset(table: &WireTable, cols: &[usize]) -> WireTable {
        WireTable {
            name: table.name.clone(),
            keys: table.keys.clone(),
            columns: cols.iter().map(|&i| table.columns[i].clone()).collect(),
        }
    }

    /// Executes one decoded request against the cluster.  `pool` is the
    /// calling connection's private set of node connections.
    ///
    /// # Errors
    ///
    /// Forwards node-side [`WireError`]s verbatim; unreachable nodes surface
    /// as `io` (writes, or reads with no live node at all).
    pub fn execute(
        &self,
        body: &RequestBody,
        pool: &mut NodePool<'_>,
    ) -> Result<ResponseBody, WireError> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        match body {
            RequestBody::Info { server } => self.info(*server, pool),
            RequestBody::Query { k, .. } => {
                let responses = self.fan_read(pool, body)?;
                let per_node = responses
                    .into_iter()
                    .map(|resp| match resp {
                        ResponseBody::Ranking(ranking) => Ok(ranking),
                        _ => Err(internal("node answered query with a non-ranking body")),
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(ResponseBody::Ranking(merge_rankings(per_node, *k)))
            }
            RequestBody::BatchQuery { k, queries, .. } => {
                let responses = self.fan_read(pool, body)?;
                let per_node = responses
                    .into_iter()
                    .map(|resp| match resp {
                        ResponseBody::Rankings(rankings) if rankings.len() == queries.len() => {
                            Ok(rankings)
                        }
                        ResponseBody::Rankings(_) => {
                            Err(internal("node answered batch-query with a mis-sized batch"))
                        }
                        _ => Err(internal("node answered batch-query with a non-batch body")),
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                let merged = (0..queries.len())
                    .map(|i| {
                        merge_rankings(per_node.iter().map(|node| node[i].clone()).collect(), *k)
                    })
                    .collect();
                Ok(ResponseBody::Rankings(merged))
            }
            RequestBody::Ingest { table, partitions } => {
                self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
                let per_node = self.partition(&table.name, &table.columns);
                let mut registered = BTreeSet::new();
                let mut skipped = BTreeSet::new();
                for (idx, cols) in per_node.iter().enumerate() {
                    if cols.is_empty() {
                        continue;
                    }
                    let sub = RequestBody::Ingest {
                        table: Self::subset(table, cols),
                        partitions: *partitions,
                    };
                    match self.call_write(pool, idx, &sub)? {
                        ResponseBody::Report {
                            registered: r,
                            skipped: s,
                        } => {
                            registered.extend(r);
                            skipped.extend(s);
                        }
                        _ => return Err(internal("node answered ingest with a non-report body")),
                    }
                }
                Ok(ResponseBody::Report {
                    registered: registered.into_iter().collect(),
                    skipped: skipped.into_iter().collect(),
                })
            }
            RequestBody::IngestBegin { table } => {
                let id = self.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                self.sessions.lock().expect("sessions lock").insert(
                    id,
                    Arc::new(Mutex::new(RouterSession {
                        table: table.clone(),
                        node_sessions: BTreeMap::new(),
                    })),
                );
                Ok(ResponseBody::Session(id))
            }
            RequestBody::IngestAnnounce { session, shard } => {
                self.session_shard_op(pool, *session, shard, true)
            }
            RequestBody::IngestSubmit { session, shard } => {
                self.session_shard_op(pool, *session, shard, false)
            }
            RequestBody::IngestFinish { session } => {
                let entry = self
                    .sessions
                    .lock()
                    .expect("sessions lock")
                    .remove(session)
                    .ok_or_else(|| unknown_session(*session))?;
                let state = entry.lock().expect("session lock");
                self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
                let mut registered = BTreeSet::new();
                let mut skipped = BTreeSet::new();
                for (&idx, &node_session) in &state.node_sessions {
                    let finish = RequestBody::IngestFinish {
                        session: node_session,
                    };
                    match self.call_write(pool, idx, &finish)? {
                        ResponseBody::Report {
                            registered: r,
                            skipped: s,
                        } => {
                            registered.extend(r);
                            skipped.extend(s);
                        }
                        _ => {
                            return Err(internal(
                                "node answered ingest-finish with a non-report body",
                            ))
                        }
                    }
                }
                Ok(ResponseBody::Report {
                    registered: registered.into_iter().collect(),
                    skipped: skipped.into_iter().collect(),
                })
            }
            RequestBody::DropColumn { table, column } => self.drop_column(pool, table, column),
        }
    }

    /// `ingest-announce` / `ingest-submit`: partition the shard column-wise
    /// and forward each owner its sub-shard under that node's session.
    fn session_shard_op(
        &self,
        pool: &mut NodePool<'_>,
        session: u64,
        shard: &WireTable,
        announce: bool,
    ) -> Result<ResponseBody, WireError> {
        let entry = self
            .sessions
            .lock()
            .expect("sessions lock")
            .get(&session)
            .cloned()
            .ok_or_else(|| unknown_session(session))?;
        // The per-session lock serialises shards racing in over different
        // connections, so every node folds announces in one well-defined
        // order (the same guarantee a single node gives).
        let mut state = entry.lock().expect("session lock");
        if shard.name != state.table {
            return Err(WireError {
                code: ErrorCode::Incompatible,
                message: format!(
                    "shard is for table `{}` but session {session} ingests `{}`",
                    shard.name, state.table
                ),
            });
        }
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let per_node = self.partition(&shard.name, &shard.columns);
        for (idx, cols) in per_node.iter().enumerate() {
            if cols.is_empty() {
                continue;
            }
            let node_session = match state.node_sessions.get(&idx) {
                Some(&id) => id,
                None => {
                    let begin = RequestBody::IngestBegin {
                        table: state.table.clone(),
                    };
                    let id = match self.call_write(pool, idx, &begin)? {
                        ResponseBody::Session(id) => id,
                        _ => {
                            return Err(internal(
                                "node answered ingest-begin with a non-session body",
                            ))
                        }
                    };
                    state.node_sessions.insert(idx, id);
                    id
                }
            };
            let sub_shard = Self::subset(shard, cols);
            let forwarded = if announce {
                RequestBody::IngestAnnounce {
                    session: node_session,
                    shard: sub_shard,
                }
            } else {
                RequestBody::IngestSubmit {
                    session: node_session,
                    shard: sub_shard,
                }
            };
            match self.call_write(pool, idx, &forwarded)? {
                ResponseBody::Session(_) => {}
                _ => return Err(internal("node answered a shard op with a non-session body")),
            }
        }
        Ok(ResponseBody::Session(session))
    }

    /// `info`: fan out, verify every node runs the same sketcher fingerprint,
    /// and merge columns/stats into one cluster-wide view (plus the `cluster`
    /// member only routers emit).
    fn info(&self, server: bool, pool: &mut NodePool<'_>) -> Result<ResponseBody, WireError> {
        let probe = RequestBody::Info { server: false };
        let responses = self.fan_read(pool, &probe)?;
        let mut head: Option<(String, String, String, Option<String>)> = None;
        let mut columns: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut hydrated = 0u64;
        let mut bytes_on_disk = 0u64;
        for resp in responses {
            let ResponseBody::Info {
                sketcher,
                fingerprint,
                method,
                format,
                columns: node_columns,
                stats,
                ..
            } = resp
            else {
                return Err(internal("node answered info with a non-info body"));
            };
            match &head {
                None => head = Some((sketcher, fingerprint, method, format)),
                Some((_, expected, _, _)) => {
                    if *expected != fingerprint {
                        return Err(WireError {
                            code: ErrorCode::Incompatible,
                            message: format!(
                                "catalog nodes disagree on the sketcher fingerprint \
                                 ({expected} vs {fingerprint})"
                            ),
                        });
                    }
                }
            }
            for column in node_columns {
                columns.insert((column.table, column.column), column.rows);
            }
            if let Some(stats) = stats {
                hydrated += stats.hydrated;
                bytes_on_disk += stats.bytes_on_disk;
            }
        }
        let (sketcher, fingerprint, method, format) =
            head.ok_or_else(|| internal("info fan-out returned no responses"))?;
        let distinct = columns.len() as u64;
        Ok(ResponseBody::Info {
            sketcher,
            fingerprint,
            method,
            format,
            columns: columns
                .into_iter()
                .map(|((table, column), rows)| InfoColumn {
                    table,
                    column,
                    rows,
                })
                .collect(),
            // `hydrated`/`bytes_on_disk` sum over nodes, so replicated blobs
            // count once per copy — that is the cluster's real footprint.
            // `columns` counts distinct keys.
            stats: Some(WireServiceStats {
                columns: distinct,
                hydrated,
                bytes_on_disk,
                last_compaction: None,
            }),
            server: server.then(|| self.metrics.snapshot()),
            cluster: Some(Box::new(self.cluster_stats())),
        })
    }

    /// `drop-column` fans to every node: placement-agnostic, so it works even
    /// for catalogs loaded into nodes out-of-band.
    fn drop_column(
        &self,
        pool: &mut NodePool<'_>,
        table: &str,
        column: &str,
    ) -> Result<ResponseBody, WireError> {
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let body = RequestBody::DropColumn {
            table: table.to_string(),
            column: column.to_string(),
        };
        let mut dropped = false;
        let mut remote: Option<WireError> = None;
        let mut unreachable: Option<String> = None;
        for idx in 0..self.nodes.len() {
            match pool.call(idx, &body) {
                Ok(ResponseBody::Dropped { .. }) => dropped = true,
                Ok(_) => {
                    return Err(internal(
                        "node answered drop-column with an unexpected body",
                    ))
                }
                Err(NodeError::Remote(e)) if e.code == ErrorCode::NotFound => {}
                Err(NodeError::Remote(e)) => {
                    remote.get_or_insert(e);
                }
                Err(NodeError::Unreachable(message)) => {
                    unreachable.get_or_insert(message);
                }
            }
        }
        if let Some(error) = remote {
            return Err(error);
        }
        if dropped {
            return Ok(ResponseBody::Dropped {
                table: table.to_string(),
                column: column.to_string(),
            });
        }
        if let Some(message) = unreachable {
            // Some node we could not reach might hold the key; `not_found`
            // would over-claim.
            return Err(WireError {
                code: ErrorCode::Io,
                message,
            });
        }
        Err(WireError {
            code: ErrorCode::NotFound,
            message: format!("no catalog node holds {table}.{column}"),
        })
    }

    /// Fans `body` to every node; unreachable nodes are skipped (and counted
    /// as failovers when at least one node answered), node-side protocol
    /// errors are forwarded verbatim.
    fn fan_read(
        &self,
        pool: &mut NodePool<'_>,
        body: &RequestBody,
    ) -> Result<Vec<ResponseBody>, WireError> {
        self.stats.fanouts.fetch_add(1, Ordering::Relaxed);
        let mut answered = Vec::new();
        let mut failed = 0u64;
        let mut last_unreachable = String::new();
        for idx in 0..self.nodes.len() {
            match pool.call(idx, body) {
                Ok(resp) => answered.push(resp),
                Err(NodeError::Remote(error)) => return Err(error),
                Err(NodeError::Unreachable(message)) => {
                    failed += 1;
                    last_unreachable = message;
                }
            }
        }
        if answered.is_empty() {
            return Err(WireError {
                code: ErrorCode::Io,
                message: format!("no catalog node reachable: {last_unreachable}"),
            });
        }
        if failed > 0 {
            self.stats.failovers.fetch_add(failed, Ordering::Relaxed);
        }
        Ok(answered)
    }

    /// One write call to one node; unreachable is a hard `io` error (a write
    /// must land on every owner or the client must hear about it).
    fn call_write(
        &self,
        pool: &mut NodePool<'_>,
        idx: usize,
        body: &RequestBody,
    ) -> Result<ResponseBody, WireError> {
        pool.call(idx, body).map_err(|error| match error {
            NodeError::Remote(e) => e,
            NodeError::Unreachable(message) => WireError {
                code: ErrorCode::Io,
                message,
            },
        })
    }

    fn record_node_error(&self, idx: usize) {
        self.stats.nodes[idx].errors.fetch_add(1, Ordering::Relaxed);
        self.stats.nodes[idx]
            .healthy
            .store(false, Ordering::Relaxed);
    }

    fn record_node_ok(&self, idx: usize) {
        self.stats.nodes[idx].healthy.store(true, Ordering::Relaxed);
    }
}

/// One pooled connection to a node.
struct NodeConn {
    transport: NodeTransport,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NodeConn {
    fn connect(spec: &NodeSpec) -> io::Result<NodeConn> {
        let stream = TcpStream::connect(&spec.addr)?;
        stream.set_nodelay(true)?;
        Ok(NodeConn {
            transport: spec.transport,
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/response round trip on this connection.
    fn call(&mut self, request: &Request) -> io::Result<Response> {
        let line = request.encode();
        match self.transport {
            NodeTransport::Tcp => {
                self.writer.write_all(line.as_bytes())?;
                self.writer.write_all(b"\n")?;
                let mut reply = String::new();
                let n = self.reader.read_line(&mut reply)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "node closed the connection",
                    ));
                }
                Response::decode(reply.trim_end_matches(['\r', '\n']))
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
            NodeTransport::Http => {
                let head = format!(
                    "POST /v1/{} HTTP/1.1\r\nHost: router\r\nContent-Length: {}\r\n\r\n",
                    request.body.op(),
                    line.len()
                );
                self.writer.write_all(head.as_bytes())?;
                self.writer.write_all(line.as_bytes())?;
                let mut status = String::new();
                if self.reader.read_line(&mut status)? == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "node closed the connection",
                    ));
                }
                let mut content_length: Option<usize> = None;
                loop {
                    let mut header = String::new();
                    if self.reader.read_line(&mut header)? == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "node closed mid-headers",
                        ));
                    }
                    let header = header.trim_end_matches(['\r', '\n']);
                    if header.is_empty() {
                        break;
                    }
                    if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:")
                    {
                        content_length = Some(value.trim().parse().map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                        })?);
                    }
                }
                let length = content_length.ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "node response had no length")
                })?;
                let mut body = vec![0u8; length];
                self.reader.read_exact(&mut body)?;
                let body = std::str::from_utf8(&body).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "node body is not UTF-8")
                })?;
                // Status is ignored on purpose: the JSON envelope carries the
                // same success/error information with more detail.
                let _ = status;
                Response::decode(body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
            }
        }
    }
}

/// One router connection's private node connections, opened lazily and
/// re-opened once per call after a stale keep-alive.
pub struct NodePool<'a> {
    router: &'a Router,
    conns: Vec<Option<NodeConn>>,
}

impl<'a> NodePool<'a> {
    /// An empty pool for `router`'s node list.
    #[must_use]
    pub fn new(router: &'a Router) -> NodePool<'a> {
        NodePool {
            conns: router.nodes.iter().map(|_| None).collect(),
            router,
        }
    }

    /// One round trip to node `idx`.  A failed round trip on a pooled
    /// connection is retried once on a fresh connection (the node may simply
    /// have dropped an idle keep-alive); a failure on a fresh connection
    /// marks the node unreachable.
    fn call(&mut self, idx: usize, body: &RequestBody) -> Result<ResponseBody, NodeError> {
        let request = Request {
            id: Json::Null,
            body: body.clone(),
        };
        let had_pooled = self.conns[idx].is_some();
        for attempt in 0..2 {
            if self.conns[idx].is_none() {
                match NodeConn::connect(&self.router.nodes[idx]) {
                    Ok(conn) => self.conns[idx] = Some(conn),
                    Err(error) => {
                        self.router.record_node_error(idx);
                        return Err(NodeError::Unreachable(format!(
                            "catalog node {} unreachable: {error}",
                            self.router.nodes[idx].addr
                        )));
                    }
                }
            }
            let conn = self.conns[idx].as_mut().expect("connected above");
            match conn.call(&request) {
                Ok(response) => {
                    self.router.record_node_ok(idx);
                    return match response.result {
                        Ok(body) => Ok(body),
                        Err(error) => Err(NodeError::Remote(error)),
                    };
                }
                Err(error) => {
                    self.conns[idx] = None;
                    if attempt == 0 && had_pooled {
                        continue;
                    }
                    self.router.record_node_error(idx);
                    return Err(NodeError::Unreachable(format!(
                        "catalog node {} failed: {error}",
                        self.router.nodes[idx].addr
                    )));
                }
            }
        }
        unreachable!("the retry loop always returns");
    }
}

fn internal(message: &str) -> WireError {
    WireError {
        code: ErrorCode::Internal,
        message: message.to_string(),
    }
}

fn unknown_session(session: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("no open ingest session {session}"),
    }
}

/// Shared state between the accept loop, connection threads, and the handle.
struct RouterShared {
    router: Router,
    stop: AtomicBool,
    client_streams: Mutex<Vec<TcpStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running router front end; dropping without [`shutdown`](Self::shutdown)
/// leaks the accept thread, so tests should always shut down.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listener address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the cluster counters.
    #[must_use]
    pub fn stats(&self) -> WireClusterStats {
        self.shared.router.cluster_stats()
    }

    /// Blocks until the accept loop exits (it only does when the process is
    /// killed or [`shutdown`](Self::shutdown) runs from another thread) — the
    /// CLI's run-until-killed mode.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting, closes every client connection, and joins all
    /// threads.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for stream in self
            .shared
            .client_streams
            .lock()
            .expect("streams lock")
            .drain(..)
        {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let threads: Vec<_> = self
            .shared
            .conn_threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

/// Binds `addr` and serves the line-JSON protocol over `router`: one blocking
/// thread per client connection, each with its own node-connection pool.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_router(router: Router, addr: SocketAddr) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(RouterShared {
        router,
        stop: AtomicBool::new(false),
        client_streams: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = thread::Builder::new()
        .name("router-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                if let Ok(clone) = stream.try_clone() {
                    accept_shared
                        .client_streams
                        .lock()
                        .expect("streams lock")
                        .push(clone);
                }
                let conn_shared = Arc::clone(&accept_shared);
                let handle = thread::Builder::new()
                    .name("router-conn".to_string())
                    .spawn(move || handle_connection(&conn_shared, stream))
                    .expect("spawn router connection thread");
                accept_shared
                    .conn_threads
                    .lock()
                    .expect("threads lock")
                    .push(handle);
            }
        })?;
    Ok(RouterHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

/// Reads one newline-terminated line, bounded by `max` bytes.  Returns
/// `Ok(None)` at EOF and `Err` with a wire error when the line overflowed.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    buf: &mut Vec<u8>,
) -> io::Result<Option<Result<(), WireError>>> {
    buf.clear();
    let n = reader
        .by_ref()
        .take((max + 2) as u64)
        .read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        if buf.len() > max {
            return Ok(Some(Err(WireError {
                code: ErrorCode::TooLarge,
                message: format!("request line exceeds the router's {max}-byte bound"),
            })));
        }
        // EOF mid-line: nothing well-formed to answer.
        return Ok(None);
    }
    Ok(Some(Ok(())))
}

fn handle_connection(shared: &RouterShared, stream: TcpStream) {
    let metrics = &shared.router.metrics;
    metrics.connections_open.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut pool = NodePool::new(&shared.router);
    let mut buf = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let framed = match read_line_bounded(&mut reader, MAX_LINE_BYTES, &mut buf) {
            Ok(Some(framed)) => framed,
            Ok(None) | Err(_) => break,
        };
        let started = Instant::now();
        let (response, op, close) = match framed {
            Err(error) => (
                Response {
                    id: Json::Null,
                    result: Err(error),
                },
                "invalid",
                true,
            ),
            Ok(()) => {
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim_end_matches(['\r', '\n']);
                match Request::decode(line) {
                    Err(decode_error) => (
                        Response {
                            id: decode_error.id,
                            result: Err(decode_error.error),
                        },
                        "invalid",
                        false,
                    ),
                    Ok(request) => {
                        let op = request.body.op();
                        let result = shared.router.execute(&request.body, &mut pool);
                        (
                            Response {
                                id: request.id,
                                result,
                            },
                            op,
                            false,
                        )
                    }
                }
            }
        };
        let is_error = response.result.is_err();
        metrics.record(op, started.elapsed(), is_error);
        let mut line = response.encode();
        line.push('\n');
        if writer.write_all(line.as_bytes()).is_err() {
            break;
        }
        if close {
            break;
        }
    }
    metrics.connections_open.fetch_sub(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WireColumn;

    fn nodes(n: usize) -> Vec<NodeSpec> {
        (0..n)
            .map(|i| NodeSpec::tcp(format!("127.0.0.1:{}", 7000 + i)))
            .collect()
    }

    #[test]
    fn rendezvous_placement_is_deterministic_and_replicated() {
        let cluster = nodes(5);
        for (table, column) in [("orders", "price"), ("orders", "qty"), ("users", "age")] {
            let first = owners(&cluster, 2, table, column);
            let second = owners(&cluster, 2, table, column);
            assert_eq!(first, second);
            assert_eq!(first.len(), 2);
            assert_ne!(first[0], first[1]);
        }
        // Replica count clamps to the cluster size.
        assert_eq!(owners(&cluster, 9, "t", "c").len(), 5);
    }

    #[test]
    fn rendezvous_spreads_keys_and_removal_only_moves_orphans() {
        let cluster = nodes(4);
        let keys: Vec<(String, String)> = (0..200)
            .map(|i| ("lake".to_string(), format!("col_{i}")))
            .collect();
        let mut load = [0usize; 4];
        for (table, column) in &keys {
            for idx in owners(&cluster, 1, table, column) {
                load[idx] += 1;
            }
        }
        // Each node should carry a non-trivial share of 200 keys.
        for (idx, count) in load.iter().enumerate() {
            assert!(*count > 10, "node {idx} got only {count} of 200 keys");
        }
        // Dropping the last node must not move keys between surviving nodes.
        let survivors = &cluster[..3];
        for (table, column) in &keys {
            let before = owners(&cluster, 1, table, column)[0];
            let after = owners(survivors, 1, table, column)[0];
            if before != 3 {
                assert_eq!(before, after, "key {table}.{column} moved needlessly");
            }
        }
    }

    #[test]
    fn merge_orders_deduplicates_and_truncates() {
        let ranked = |table: &str, column: &str, score: f64| WireRanked {
            table: table.to_string(),
            column: column.to_string(),
            score,
            join_size: 1.0,
            correlation: 0.0,
        };
        let node_a = vec![ranked("t", "a", 0.9), ranked("t", "b", 0.5)];
        let node_b = vec![ranked("t", "a", 0.9), ranked("t", "c", 0.5)];
        let merged = merge_rankings(vec![node_a, node_b], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!(
            (merged[0].table.as_str(), merged[0].column.as_str()),
            ("t", "a")
        );
        // Ties order by (table, column) ascending: `b` before `c`.
        assert_eq!(
            (merged[1].table.as_str(), merged[1].column.as_str()),
            ("t", "b")
        );
    }

    #[test]
    fn partition_covers_every_column_replicas_times() {
        let router = Router::new(nodes(3), 2).expect("config");
        let columns: Vec<WireColumn> = (0..40)
            .map(|i| WireColumn {
                name: format!("c{i}"),
                values: vec![1.0],
            })
            .collect();
        let per_node = router.partition("lake", &columns);
        let mut copies = vec![0usize; columns.len()];
        for cols in &per_node {
            for &idx in cols {
                copies[idx] += 1;
            }
        }
        assert!(copies.iter().all(|&c| c == 2), "every column on 2 nodes");
    }

    #[test]
    fn router_config_is_validated() {
        assert_eq!(
            Router::new(Vec::new(), 2).unwrap_err(),
            RouterConfigError::NoNodes
        );
        assert_eq!(
            Router::new(nodes(2), 0).unwrap_err(),
            RouterConfigError::ZeroReplicas
        );
        let clamped = Router::new(nodes(2), 5).expect("config");
        assert_eq!(clamped.replicas(), 2);
    }

    #[test]
    fn cluster_stats_report_every_node() {
        let router = Router::new(
            vec![
                NodeSpec::tcp("127.0.0.1:7001"),
                NodeSpec::http("127.0.0.1:7002"),
            ],
            2,
        )
        .expect("config");
        router.record_node_error(1);
        let stats = router.cluster_stats();
        assert_eq!(stats.replicas, 2);
        assert_eq!(stats.nodes.len(), 2);
        assert_eq!(stats.nodes[0].transport, "tcp");
        assert!(stats.nodes[0].healthy);
        assert_eq!(stats.nodes[1].transport, "http");
        assert!(!stats.nodes[1].healthy);
        assert_eq!(stats.nodes[1].errors, 1);
    }
}
