//! A minimal JSON value type for the wire protocol.
//!
//! The network front end speaks line-delimited JSON (see `docs/PROTOCOL.md`), and the
//! offline build image has no serde — so this module provides the exact JSON subset
//! the protocol needs, built for *lossless* numeric transport:
//!
//! * Numbers are stored as their **raw source token** ([`Json::Num`]), not as `f64`.
//!   A `u64` join key like `18446744073709551615` survives parse → serialize
//!   untouched (an `f64` round trip would silently round it), and an `f64` estimate
//!   serialized with Rust's shortest-round-trip formatting parses back to the
//!   bit-identical value — the property the loopback conformance tests assert.
//! * Serialization is canonical and compact (no whitespace), so a value's encoding
//!   is deterministic.
//! * Parsing is strict JSON (RFC 8259): no trailing commas, no comments, full input
//!   consumption, escape and surrogate-pair handling, and a nesting-depth bound so a
//!   hostile request cannot overflow the parser stack.
//!
//! Everything here is pure data manipulation — it compiles and is tested without the
//! `server` feature, which lets the `docs/PROTOCOL.md` conformance test run in the
//! tier-1 suite.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts.  The protocol needs 5 levels;
/// 64 leaves slack without letting `[[[[…` recurse unboundedly.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Object member order is preserved and duplicate keys are tolerated on parse;
/// [`get`](Self::get) returns the **first** match, and encoding writes members in
/// stored order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (see module docs for why).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An integer number value.
    #[must_use]
    pub fn u64(n: u64) -> Self {
        Json::Num(n.to_string())
    }

    /// A floating-point number value, formatted with Rust's shortest
    /// round-trip formatting (so parsing it back yields the bit-identical `f64`).
    /// Non-finite values have no JSON representation and encode as `null`.
    #[must_use]
    pub fn f64(x: f64) -> Self {
        if x.is_finite() {
            let mut token = x.to_string();
            // `(-)inf`/`NaN` are excluded above; `1e300`-style tokens never occur
            // (Display writes all digits), so the token is valid JSON except that
            // integral floats format bare ("2"). That is still a valid JSON number
            // and parses back to the same f64, so leave it — but keep `-0` signed.
            if token == "-0" {
                token = "-0.0".to_string();
            }
            Json::Num(token)
        } else {
            Json::Null
        }
    }

    /// Whether this value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Member lookup on an object (first match); `None` for other value kinds.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a number written as a non-negative JSON
    /// integer (no fraction, no exponent — `1.0` and `1e3` are rejected, so 64-bit
    /// join keys can never lose precision silently).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// [`as_u64`](Self::as_u64) narrowed to `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses a complete JSON document (leading/trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Canonical compact encoding (no whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(raw) => f.write_str(raw),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    value.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0; 4]))?,
        }
    }
    f.write_str("\"")
}

/// A JSON syntax error at a byte offset of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem in the parsed text.
    pub at: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, detail: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", char::from(c)))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain (non-escape, non-quote, non-control) bytes
            // are copied as one UTF-8 slice.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, and the run boundary bytes are all ASCII, so
                // the slice is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("runs between ASCII delimiters in a &str are valid UTF-8"),
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("raw control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.error("high surrogate not followed by \\u"))?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    unit
                };
                out.push(
                    char::from_u32(scalar)
                        .ok_or_else(|| self.error("escape is not a Unicode scalar"))?,
                );
            }
            other => {
                return Err(self.error(format!("unknown escape `\\{}`", char::from(other))));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("non-hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    /// Validates the RFC 8259 number grammar and returns the raw token.
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected digits in number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.error("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number tokens are ASCII")
            .to_string();
        Ok(Json::Num(token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> Json {
        let parsed = Json::parse(text).expect("parses");
        let reparsed = Json::parse(&parsed.to_string()).expect("re-parses");
        assert_eq!(parsed, reparsed, "encode→parse must be the identity");
        parsed
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), Json::Null);
        assert_eq!(round_trip("true"), Json::Bool(true));
        assert_eq!(round_trip("false"), Json::Bool(false));
        assert_eq!(round_trip("\"hi\""), Json::str("hi"));
        assert_eq!(round_trip("42").as_u64(), Some(42));
        assert_eq!(round_trip("-1.5e3").as_f64(), Some(-1500.0));
    }

    #[test]
    fn u64_keys_survive_untouched() {
        let max = u64::MAX.to_string();
        let parsed = Json::parse(&max).expect("parses");
        assert_eq!(parsed.as_u64(), Some(u64::MAX));
        assert_eq!(
            parsed.to_string(),
            max,
            "no f64 rounding on the way through"
        );
        // Fractions and exponents are not integers.
        assert_eq!(Json::parse("1.0").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn f64_encoding_is_bit_exact() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            2.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            123_456.789_012_345,
            1e-300,
        ] {
            let encoded = Json::f64(x).to_string();
            let back = Json::parse(&encoded)
                .expect("valid JSON")
                .as_f64()
                .expect("a number");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} → {encoded} → {back}");
        }
        assert!(Json::f64(f64::NAN).is_null());
        assert!(Json::f64(f64::INFINITY).is_null());
    }

    #[test]
    fn structures_and_lookup() {
        let doc = round_trip(r#"{"a": [1, {"b": "c"}], "d": null, "a": 2}"#);
        assert_eq!(
            doc.get("a").and_then(|a| a.as_arr()).map(<[Json]>::len),
            Some(2),
            "first duplicate wins"
        );
        assert!(doc.get("d").expect("member").is_null());
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.to_string(), r#"{"a":[1,{"b":"c"}],"d":null,"a":2}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let exotic = "quote\" slash\\ newline\n tab\t nul\u{0} emoji🦀 bmp\u{2603}";
        let encoded = Json::str(exotic).to_string();
        assert_eq!(
            Json::parse(&encoded).expect("parses").as_str(),
            Some(exotic)
        );
        // Escape forms parse to the same string.
        assert_eq!(Json::parse(r#""A\né🦀""#).unwrap().as_str(), Some("A\né🦀"));
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "tru",
            "nulll",
            "01",
            "1.",
            "1e",
            "+1",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\u{1}\"",
            r#""\ud800""#,
            r#""\ud800A""#,
            "[1,]",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":1,}",
            "{a:1}",
            "[1]]",
            "1 2",
        ] {
            let err = Json::parse(bad).expect_err(&format!("`{bad}` must fail"));
            assert!(!err.to_string().is_empty());
        }
        // Depth bound: 100 nested arrays exceed MAX_DEPTH.
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = Json::parse(&deep).expect_err("too deep");
        assert!(err.detail.contains("nesting"), "{err}");
    }

    #[test]
    fn builders_produce_valid_documents() {
        let doc = Json::Obj(vec![
            ("k".to_string(), Json::u64(7)),
            ("x".to_string(), Json::f64(0.5)),
            ("s".to_string(), Json::str("v")),
            (
                "a".to_string(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"k":7,"x":0.5,"s":"v","a":[true,null]}"#
        );
        assert_eq!(Json::parse(&doc.to_string()).expect("parses"), doc);
    }
}
