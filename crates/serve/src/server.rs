//! The concurrent network front end over a [`QueryService`]: both framers, one
//! reactor.
//!
//! Two wire framings share every layer below the socket: the line-delimited JSON
//! framing (one request or response per `\n`-terminated line; normative spec:
//! `docs/PROTOCOL.md`) and the HTTP/1.1 binding of the same protocol
//! ([`crate::http`]; `POST /v1/<op>`, `GET /v1/info`, curl-able).  A server binds
//! either or both through [`ServerConfig::builder`].  The design splits work
//! across three kinds of threads, sized so the sketch runner keeps headroom:
//!
//! * **Reactor (1 thread).**  A `poll(2)` readiness loop (the vendored [`polling`]
//!   shim — the offline image has no tokio) owns the listeners and every
//!   connection: it accepts, reads, frames requests (lines or HTTP messages), and
//!   writes responses.  It never parses JSON or touches the service, so a slow
//!   query cannot stall accepts or other connections' I/O.
//! * **Workers (`workers` threads).**  Pull framed requests from a queue, execute
//!   them against the shared state, and hand encoded responses back to the
//!   reactor.  Requests from *one* connection run strictly in order (responses
//!   come back in request order — no client-side correlation needed); requests
//!   from different connections run in parallel.
//! * **Maintenance (1 thread).**  Runs catalog compaction/re-manifest on an
//!   interval and after ingests, behind the same exclusive lock as registrations.
//!
//! The service sits behind a read-write lock: queries take shared read access and
//! fan each batch out on the work-claiming runner (`top_k_*_batch`), so a single
//! wire batch saturates cores; ingests and compaction take the write lock.  The
//! server holds a [`runner`] thread reservation for its own threads, so those
//! runner fan-outs automatically leave headroom for the accept loop instead of
//! oversubscribing the machine.
//!
//! Shard-partial ingest sessions ([`ShardedIngestState`]) live *outside* the service
//! lock in a session map: `announce`/`submit` sketch with a clone of the catalog's
//! estimator and take no service lock at all, so any number of registration sessions
//! make progress while queries are served; only `ingest-finish` (the catalog commit)
//! briefly takes the write lock.
//!
//! Overload is shed at two gates, both surfaced as the typed `overloaded` error
//! (HTTP `503`) and counted in [`ServerMetrics`]: past the connection cap a new
//! connection is answered and closed without ever reaching a worker; past the
//! queue-depth cap a framed request is refused but its connection stays usable, so
//! a client that backs off needs no reconnect.

use crate::http::{self, HttpRequest};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    ErrorCode, InfoColumn, Mode, Request, RequestBody, Response, ResponseBody, WireCompaction,
    WireError, WireNote, WireQuery, WireRanked, WireServiceStats, WireSketch,
};
use crate::service::{CascadeNote, QueryService, ShardedIngestState};
use crate::wire::Json;
use ipsketch_core::runner::{self, ThreadReservation};
use ipsketch_join::{JoinEstimator, SketchedColumn};
use parking_lot::{Mutex, RwLock};
use polling::{Event, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Poller key of the line-delimited TCP listener.
const TCP_LISTENER_KEY: usize = 0;
/// Poller key of the HTTP/1.1 listener.
const HTTP_LISTENER_KEY: usize = 1;
/// First key handed to an accepted connection.
const FIRST_CONN_KEY: usize = 2;

/// Smallest accepted `max_line_bytes`: below this even an empty batch-query
/// cannot be expressed, so the bound would only manufacture `too_large` errors.
const MIN_LINE_BYTES: usize = 1024;

/// Validated tuning knobs for [`serve`]; built through [`ServerConfig::builder`].
///
/// The fields are private on purpose: every constructed `ServerConfig` has passed
/// [`ServerConfigBuilder::build`]'s validation, so the server never has to
/// re-check or silently "fix" a nonsensical value at bind time.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    tcp: Option<String>,
    http: Option<String>,
    workers: usize,
    max_line_bytes: usize,
    max_connections: usize,
    max_queue_depth: usize,
    maintenance_interval: Option<Duration>,
    session_ttl: Duration,
}

impl ServerConfig {
    /// Starts a builder with the defaults: 2 workers, 64 MiB request bound,
    /// 1024-connection and 1024-request caps, 30 s maintenance interval, 15 min
    /// session TTL — and *no* bind address, which [`ServerConfigBuilder::build`]
    /// rejects until [`tcp`](ServerConfigBuilder::tcp) and/or
    /// [`http`](ServerConfigBuilder::http) is set.
    #[must_use]
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            tcp: None,
            http: None,
            workers: 2,
            max_line_bytes: 64 << 20,
            max_connections: 1024,
            max_queue_depth: 1024,
            maintenance_interval: Some(Duration::from_secs(30)),
            session_ttl: Duration::from_secs(15 * 60),
        }
    }

    /// The line-delimited TCP bind address, if one is configured.
    #[must_use]
    pub fn tcp(&self) -> Option<&str> {
        self.tcp.as_deref()
    }

    /// The HTTP/1.1 bind address, if one is configured.
    #[must_use]
    pub fn http(&self) -> Option<&str> {
        self.http.as_deref()
    }

    /// Request-executing worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Hard bound on one request (a line on the TCP framer, a body on the HTTP
    /// framer).
    #[must_use]
    pub fn max_line_bytes(&self) -> usize {
        self.max_line_bytes
    }

    /// Open-connection cap across both framers.
    #[must_use]
    pub fn max_connections(&self) -> usize {
        self.max_connections
    }

    /// Cap on requests queued for workers before new ones are refused.
    #[must_use]
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Idle interval between periodic maintenance passes (`None`: on demand only).
    #[must_use]
    pub fn maintenance_interval(&self) -> Option<Duration> {
        self.maintenance_interval
    }

    /// How long an ingest session may sit untouched before it is expired.
    #[must_use]
    pub fn session_ttl(&self) -> Duration {
        self.session_ttl
    }
}

/// Builder for [`ServerConfig`]; see [`ServerConfig::builder`] for the defaults.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    tcp: Option<String>,
    http: Option<String>,
    workers: usize,
    max_line_bytes: usize,
    max_connections: usize,
    max_queue_depth: usize,
    maintenance_interval: Option<Duration>,
    session_ttl: Duration,
}

impl ServerConfigBuilder {
    /// Binds the line-delimited TCP framer on `addr` (port 0 for ephemeral).
    #[must_use]
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp = Some(addr.into());
        self
    }

    /// Binds the HTTP/1.1 framer on `addr` (port 0 for ephemeral).
    #[must_use]
    pub fn http(mut self, addr: impl Into<String>) -> Self {
        self.http = Some(addr.into());
        self
    }

    /// Sets the worker-thread count.  Two by default: enough that a slow ingest
    /// does not block queries, while leaving the runner (which parallelizes each
    /// batch internally) most of the machine.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-request size bound.  Oversized TCP lines earn `too_large` and
    /// close the connection (line framing cannot resynchronize); oversized HTTP
    /// bodies earn `413` before the body is read.
    #[must_use]
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes;
        self
    }

    /// Sets the open-connection cap.  Connections past it are answered with the
    /// typed `overloaded` error and closed without reaching a worker.
    #[must_use]
    pub fn max_connections(mut self, connections: usize) -> Self {
        self.max_connections = connections;
        self
    }

    /// Sets the worker-queue depth cap.  Requests framed while the queue is full
    /// are answered `overloaded`; their connection stays open and usable.
    #[must_use]
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Sets how often the maintenance thread compacts the catalog when idle
    /// (`None` disables periodic passes; ingest-triggered ones still run).
    #[must_use]
    pub fn maintenance_interval(mut self, interval: Option<Duration>) -> Self {
        self.maintenance_interval = interval;
        self
    }

    /// Sets how long an ingest session may sit untouched before a maintenance
    /// pass expires it.  Sessions hold folded partial sketches, so abandoned ones
    /// (client crashed before `ingest-finish`) would otherwise leak for the
    /// server's lifetime.
    #[must_use]
    pub fn session_ttl(mut self, ttl: Duration) -> Self {
        self.session_ttl = ttl;
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first violated rule: at least one
    /// bind address, at least one worker, nonzero connection and queue caps, and
    /// a request bound of at least 1 KiB.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        if self.tcp.is_none() && self.http.is_none() {
            return Err(ConfigError::NoBindAddress);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.max_connections == 0 {
            return Err(ConfigError::ZeroConnectionCap);
        }
        if self.max_queue_depth == 0 {
            return Err(ConfigError::ZeroQueueDepth);
        }
        if self.max_line_bytes < MIN_LINE_BYTES {
            return Err(ConfigError::LineBoundTooSmall {
                got: self.max_line_bytes,
                min: MIN_LINE_BYTES,
            });
        }
        Ok(ServerConfig {
            tcp: self.tcp,
            http: self.http,
            workers: self.workers,
            max_line_bytes: self.max_line_bytes,
            max_connections: self.max_connections,
            max_queue_depth: self.max_queue_depth,
            maintenance_interval: self.maintenance_interval,
            session_ttl: self.session_ttl,
        })
    }
}

/// A [`ServerConfigBuilder::build`] rejection: which rule the configuration broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Neither a TCP nor an HTTP bind address was set.
    NoBindAddress,
    /// `workers` was 0; the server needs at least one request executor.
    ZeroWorkers,
    /// `max_connections` was 0; the server could never accept anything.
    ZeroConnectionCap,
    /// `max_queue_depth` was 0; the server could never execute anything.
    ZeroQueueDepth,
    /// `max_line_bytes` was below the smallest useful request bound.
    LineBoundTooSmall {
        /// The configured bound.
        got: usize,
        /// The smallest accepted bound.
        min: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoBindAddress => {
                write!(f, "no bind address: set a TCP and/or an HTTP address")
            }
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::ZeroConnectionCap => write!(f, "max connections must be at least 1"),
            ConfigError::ZeroQueueDepth => write!(f, "max queue depth must be at least 1"),
            ConfigError::LineBoundTooSmall { got, min } => {
                write!(
                    f,
                    "request bound of {got} bytes is below the {min}-byte minimum"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Running totals of the maintenance thread, exposed for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Completed compaction passes.
    pub passes: u64,
    /// Total unreferenced files removed across all passes.
    pub files_removed: u64,
    /// Passes that failed (I/O errors); the service keeps running.
    pub failures: u64,
    /// Ingest sessions expired for sitting idle past the configured TTL.
    pub sessions_expired: u64,
}

/// Handle to a running server: address introspection, observability, shutdown.
///
/// Dropping the handle shuts the server down and joins its threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    tcp_addr: Option<SocketAddr>,
    http_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
    /// Keeps runner headroom for the reactor + workers while the server lives.
    _reservation: ThreadReservation,
}

impl ServerHandle {
    /// The bound line-delimited TCP address (useful with port 0), if configured.
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound HTTP/1.1 address (useful with port 0), if configured.
    #[must_use]
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// The live observability state: per-op latency histograms, counters, gauges.
    #[must_use]
    pub fn metrics(&self) -> &ServerMetrics {
        &self.shared.metrics
    }

    /// Maintenance totals so far.
    #[must_use]
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        *self.shared.maintenance_stats.lock()
    }

    /// Asks the maintenance thread for an immediate compaction pass.
    pub fn request_maintenance(&self) {
        self.shared.signal_maintenance();
    }

    /// Stops accepting, drains nothing further, and joins every thread.  In-flight
    /// requests finish; queued-but-unstarted requests on other connections are
    /// dropped along with their connections.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Blocks until the server stops on its own — which only happens on a fatal
    /// reactor error (e.g. `poll(2)` failing) — and joins every thread.  This is
    /// what a serve-until-killed front end (the CLI) parks on: if it returns, the
    /// listeners are gone and the process should exit with an error instead of
    /// lingering as a live-looking corpse.
    pub fn wait(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        self.shared.maint_cv.notify_all();
        let _ = self.shared.poller.notify();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Starts a server over `service` with the validated `config` and returns
/// immediately with its handle.  Bind addresses may carry port 0 for an ephemeral
/// port; read them back with [`ServerHandle::tcp_addr`] / [`ServerHandle::http_addr`].
///
/// # Errors
///
/// Returns the OS error if a listener cannot bind or the reactor cannot be set up.
pub fn serve(service: QueryService, config: ServerConfig) -> io::Result<ServerHandle> {
    let poller = Poller::new()?;
    let bind = |addr: &str, key: usize| -> io::Result<(TcpListener, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        poller.add(&listener, Event::readable(key))?;
        Ok((listener, addr))
    };
    let tcp = config
        .tcp
        .as_deref()
        .map(|addr| bind(addr, TCP_LISTENER_KEY))
        .transpose()?;
    let http = config
        .http
        .as_deref()
        .map(|addr| bind(addr, HTTP_LISTENER_KEY))
        .transpose()?;
    let (tcp_listener, tcp_addr) = tcp.map_or((None, None), |(l, a)| (Some(l), Some(a)));
    let (http_listener, http_addr) = http.map_or((None, None), |(l, a)| (Some(l), Some(a)));

    // The service's estimator is cloned once for the session map: sharded-ingest
    // sketching must not need any service lock.  The configuration is immutable for
    // the catalog's lifetime, so the clone can never go stale.
    let estimator = service.estimator().clone();
    let companion_estimator = service.companion_estimator().cloned();
    let shared = Arc::new(Shared {
        service: RwLock::new(service),
        estimator,
        companion_estimator,
        sessions: Mutex::new(SessionMap {
            next_id: 1,
            slots: HashMap::new(),
        }),
        queue: StdMutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        maint: StdMutex::new(false),
        maint_cv: Condvar::new(),
        maintenance_stats: Mutex::new(MaintenanceStats::default()),
        metrics: ServerMetrics::default(),
        outbox: Mutex::new(Vec::new()),
        poller,
        shutdown: AtomicBool::new(false),
        config: config.clone(),
    });

    // Reactor + workers occupy cores for as long as the server runs; reserving them
    // makes every runner-backed batch fan-out leave that headroom automatically.
    let reservation = runner::reserve_threads(1 + config.workers);

    let mut threads = Vec::with_capacity(config.workers + 2);
    let reactor_shared = Arc::clone(&shared);
    threads.push(
        std::thread::Builder::new()
            .name("ipsketch-reactor".to_string())
            .spawn(move || reactor_loop(&reactor_shared, tcp_listener, http_listener))?,
    );
    for worker in 0..config.workers {
        let worker_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ipsketch-worker-{worker}"))
                .spawn(move || worker_loop(&worker_shared))?,
        );
    }
    let maint_shared = Arc::clone(&shared);
    threads.push(
        std::thread::Builder::new()
            .name("ipsketch-maintenance".to_string())
            .spawn(move || maintenance_loop(&maint_shared))?,
    );

    Ok(ServerHandle {
        shared,
        tcp_addr,
        http_addr,
        threads,
        _reservation: reservation,
    })
}

/// Which wire framing a connection speaks (fixed by the listener it arrived on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Framing {
    /// One `\n`-terminated JSON line per request/response.
    Line,
    /// The HTTP/1.1 binding.
    Http,
}

/// A framed request waiting for a worker, in its framer's shape.
enum Payload {
    /// A raw request line (newline stripped).
    Line(Vec<u8>),
    /// A parsed HTTP message.
    Http(HttpRequest),
}

/// One framed request queued for the workers.
struct Job {
    conn: usize,
    payload: Payload,
}

/// An encoded response (complete wire bytes) waiting for the reactor.
struct Outgoing {
    conn: usize,
    bytes: Vec<u8>,
    /// Close the connection once these bytes flush (HTTP `Connection: close`).
    close_after: bool,
}

/// One live shard-partial ingest session.  The state slot holds `None` while
/// `ingest-finish` consumes it, so a racing operation on the same session gets a
/// clean `unknown_session` instead of blocking or corrupting it.
struct SessionSlot {
    state: Arc<Mutex<Option<ShardedIngestState>>>,
    /// When the session was last looked up; maintenance expires sessions whose
    /// idle time exceeds the configured TTL.
    touched: Instant,
}

struct SessionMap {
    next_id: u64,
    slots: HashMap<u64, SessionSlot>,
}

impl SessionMap {
    /// Looks up a session's state, refreshing its idle clock.
    fn touch(&mut self, session: u64) -> Option<Arc<Mutex<Option<ShardedIngestState>>>> {
        self.slots.get_mut(&session).map(|slot| {
            slot.touched = Instant::now();
            Arc::clone(&slot.state)
        })
    }
}

/// State shared by the reactor, workers, and maintenance threads.
struct Shared {
    service: RwLock<QueryService>,
    estimator: JoinEstimator,
    /// Clone of the catalog's companion (cheap-tier) estimator, when it stores
    /// one: cascade queries sketch their cheap-tier query outside any lock,
    /// exactly like the primary tier.
    companion_estimator: Option<JoinEstimator>,
    sessions: Mutex<SessionMap>,
    queue: StdMutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// "A maintenance pass is requested" flag under its condvar's mutex.
    maint: StdMutex<bool>,
    maint_cv: Condvar,
    maintenance_stats: Mutex<MaintenanceStats>,
    metrics: ServerMetrics,
    outbox: Mutex<Vec<Outgoing>>,
    poller: Poller,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn signal_maintenance(&self) {
        *self
            .maint
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.maint_cv.notify_all();
    }
}

/// Splits complete `\n`-terminated lines off the front of `buf`, tolerating `\r\n`
/// and skipping empty lines.  Leaves the trailing partial line in place.
fn drain_lines(buf: &mut Vec<u8>) -> Vec<Vec<u8>> {
    let mut lines = Vec::new();
    let mut start = 0;
    while let Some(nl) = buf[start..].iter().position(|&b| b == b'\n') {
        let mut end = start + nl;
        if end > start && buf[end - 1] == b'\r' {
            end -= 1;
        }
        if end > start {
            lines.push(buf[start..end].to_vec());
        }
        start += nl + 1;
    }
    buf.drain(..start);
    lines
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    framing: Framing,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Requests framed but not yet dispatched (per-connection requests run in order).
    pending: VecDeque<Payload>,
    /// Whether a request from this connection is currently queued or executing.
    in_flight: bool,
    /// Peer sent FIN (or an HTTP exchange asked to close): serve what is in
    /// flight, flush, then drop.
    peer_closed: bool,
    /// Fatal framing state (oversized line, malformed HTTP): stop reading, answer
    /// everything framed before the break, then emit the error and drop.
    poisoned: bool,
    /// The encoded framing-error response, emitted only after every request framed
    /// before the poisoning bytes has been answered — preserving the documented
    /// per-connection response order.
    poison_response: Option<Vec<u8>>,
    /// Whether an interim `100 Continue` has been sent for the HTTP request
    /// currently being framed.
    sent_continue: bool,
}

impl Conn {
    fn new(stream: TcpStream, framing: Framing) -> Self {
        Conn {
            stream,
            framing,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            pending: VecDeque::new(),
            in_flight: false,
            peer_closed: false,
            poisoned: false,
            poison_response: None,
            sent_continue: false,
        }
    }

    fn wants_close(&self) -> bool {
        (self.peer_closed || self.poisoned)
            && self.write_buf.is_empty()
            && !self.in_flight
            && self.pending.is_empty()
            && self.poison_response.is_none()
    }
}

/// The reactor: owns the listeners and all connection I/O.
fn reactor_loop(shared: &Shared, tcp: Option<TcpListener>, http: Option<TcpListener>) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = FIRST_CONN_KEY;
    let mut events: Vec<Event> = Vec::new();
    loop {
        events.clear();
        // A modest timeout backstops lost wakeups; all real work is notify-driven.
        if shared
            .poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .is_err()
        {
            // A failing poll(2) is unrecoverable for the reactor; shut down rather
            // than spin.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            shared.maint_cv.notify_all();
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            for conn in conns.values() {
                let _ = shared.poller.delete(&conn.stream);
            }
            return;
        }

        for event in &events {
            match event.key {
                TCP_LISTENER_KEY => {
                    if let Some(listener) = &tcp {
                        accept_ready(shared, listener, Framing::Line, &mut conns, &mut next_key);
                    }
                }
                HTTP_LISTENER_KEY => {
                    if let Some(listener) = &http {
                        accept_ready(shared, listener, Framing::Http, &mut conns, &mut next_key);
                    }
                }
                key => {
                    if let Some(conn) = conns.get_mut(&key) {
                        if event.readable {
                            read_ready(shared, key, conn);
                        }
                        if event.writable {
                            flush(conn);
                        }
                    }
                }
            }
        }

        // Move completed responses from the workers into connection write buffers;
        // each response retires its connection's in-flight request.
        let outgoing = std::mem::take(&mut *shared.outbox.lock());
        for out in outgoing {
            if let Some(conn) = conns.get_mut(&out.conn) {
                conn.write_buf.extend_from_slice(&out.bytes);
                conn.in_flight = false;
                if out.close_after {
                    conn.peer_closed = true;
                }
                dispatch_next(shared, out.conn, conn);
                flush(conn);
            }
        }

        // Re-arm interests and reap finished connections.  Poisoned connections
        // drop read interest entirely: whatever the client keeps sending is
        // undecodable past a broken frame, so it is left in the kernel buffer and
        // the connection closes as soon as the error response flushes.
        conns.retain(|&key, conn| {
            if conn.wants_close() {
                let _ = shared.poller.delete(&conn.stream);
                return false;
            }
            let interest = if conn.poisoned {
                Event::writable(key)
            } else if conn.write_buf.is_empty() {
                Event::readable(key)
            } else {
                Event::all(key)
            };
            let _ = shared.poller.modify(&conn.stream, interest);
            true
        });
        shared
            .metrics
            .connections_open
            .store(conns.len() as u64, Ordering::Relaxed);
    }
}

/// Accepts every pending connection on one listener; past the connection cap each
/// is answered `overloaded` in its framer's encoding and closed without ever
/// reaching a worker.
fn accept_ready(
    shared: &Shared,
    listener: &TcpListener,
    framing: Framing,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let key = *next_key;
                *next_key += 1;
                let mut conn = Conn::new(stream, framing);
                if conns.len() >= shared.config.max_connections {
                    // Reject: pre-fill the response, poison so reads never arm and
                    // the connection drops as soon as the bytes flush.
                    shared
                        .metrics
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    let response = http::overloaded_response(&format!(
                        "connection cap of {} reached; retry after backoff",
                        shared.config.max_connections
                    ));
                    conn.write_buf = encode_for(framing, &response, false);
                    conn.poisoned = true;
                }
                if shared.poller.add(&conn.stream, Event::all(key)).is_ok() {
                    conns.insert(key, conn);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Per-connection failures (ECONNABORTED & co) and resource exhaustion
            // (EMFILE/ENFILE).  The latter leaves the backlogged connection pending,
            // so the level-triggered poller would re-report the listener instantly;
            // a brief backoff keeps the reactor from spinning at 100% while the
            // kernel backlog drains or descriptors free up.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                return;
            }
        }
    }
}

/// Encodes one protocol [`Response`] in a framing's wire shape.
fn encode_for(framing: Framing, response: &Response, keep_alive: bool) -> Vec<u8> {
    match framing {
        Framing::Line => {
            let mut bytes = response.encode().into_bytes();
            bytes.push(b'\n');
            bytes
        }
        Framing::Http => http::encode_protocol_response(response, keep_alive),
    }
}

/// How many socket reads one readable event may perform before yielding back to
/// the reactor loop: bounds one fast sender's monopoly on the reactor thread
/// (level-triggered polling re-reports whatever is left).
const READS_PER_EVENT: usize = 64;

/// Reads what is available (bounded per event), frames requests eagerly so the
/// size bound applies *per request* — a pipelined burst of individually legal
/// requests is never rejected on its aggregate size — and dispatches if idle.
fn read_ready(shared: &Shared, key: usize, conn: &mut Conn) {
    if conn.poisoned {
        // Nothing past a broken frame is decodable; stop consuming input so the
        // connection reaches its flush-then-close state instead of buffering an
        // unbounded stream.
        return;
    }
    let mut chunk = [0u8; 16 * 1024];
    for _ in 0..READS_PER_EVENT {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                match conn.framing {
                    Framing::Line => frame_lines(shared, conn),
                    Framing::Http => frame_http(shared, conn),
                }
                if conn.poisoned {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.peer_closed = true;
                break;
            }
        }
    }
    dispatch_next(shared, key, conn);
}

/// Frames complete lines off a line-framed connection's read buffer.
fn frame_lines(shared: &Shared, conn: &mut Conn) {
    for line in drain_lines(&mut conn.read_buf) {
        if line.len() > shared.config.max_line_bytes {
            poison_too_large(shared, conn);
            return;
        }
        conn.pending.push_back(Payload::Line(line));
    }
    // Only the *unframed tail* is held to the bound: a single line still growing
    // past it can never complete legally.
    if conn.read_buf.len() > shared.config.max_line_bytes {
        poison_too_large(shared, conn);
    }
}

/// Frames complete HTTP requests off an HTTP connection's read buffer.  A framing
/// violation poisons the connection with the typed closing response; `Expect:
/// 100-continue` earns one interim response per request.
fn frame_http(shared: &Shared, conn: &mut Conn) {
    loop {
        match http::try_frame(&mut conn.read_buf, shared.config.max_line_bytes) {
            Ok(http::FrameStep::Request(request)) => {
                conn.sent_continue = false;
                conn.pending.push_back(Payload::Http(request));
            }
            Ok(http::FrameStep::Incomplete { needs_continue }) => {
                if needs_continue && !conn.sent_continue {
                    conn.sent_continue = true;
                    conn.write_buf.extend_from_slice(http::CONTINUE_RESPONSE);
                }
                return;
            }
            Err(e) => {
                shared.metrics.record("invalid", Duration::ZERO, true);
                conn.poison_response = Some(http::encode_framing_error(&e));
                conn.read_buf.clear();
                conn.poisoned = true;
                return;
            }
        }
    }
}

/// Poisons a line-framed connection on an oversized line (framing cannot resync):
/// reading stops, requests framed *before* the break still get answered in order,
/// and the `too_large` error goes out last (see [`dispatch_next`]) before the
/// close.  Idempotent: a line crossing the bound more than once still earns one
/// response.
fn poison_too_large(shared: &Shared, conn: &mut Conn) {
    if conn.poisoned {
        return;
    }
    shared.metrics.record("invalid", Duration::ZERO, true);
    let response = Response {
        id: Json::Null,
        result: Err(WireError {
            code: ErrorCode::TooLarge,
            message: format!(
                "request line exceeds the {}-byte bound",
                shared.config.max_line_bytes
            ),
        }),
    };
    let mut bytes = response.encode().into_bytes();
    bytes.push(b'\n');
    conn.poison_response = Some(bytes);
    conn.read_buf.clear();
    conn.poisoned = true;
}

/// Hands the next pending request of `conn` to the workers, if it is idle.  Past
/// the queue-depth cap the request is answered `overloaded` right here and the
/// connection stays usable.  On a poisoned connection, the stored framing error is
/// emitted only once every earlier request has been answered, preserving response
/// order.
fn dispatch_next(shared: &Shared, key: usize, conn: &mut Conn) {
    if conn.in_flight {
        return;
    }
    while let Some(payload) = conn.pending.pop_front() {
        let mut queue = shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if queue.len() >= shared.config.max_queue_depth {
            drop(queue);
            shared
                .metrics
                .queue_rejected
                .fetch_add(1, Ordering::Relaxed);
            let response = http::overloaded_response(&format!(
                "request queue is full ({} queued); retry after backoff",
                shared.config.max_queue_depth
            ));
            let keep_alive = match &payload {
                Payload::Line(_) => true,
                Payload::Http(request) => request.keep_alive,
            };
            conn.write_buf
                .extend_from_slice(&encode_for(conn.framing, &response, keep_alive));
            if !keep_alive {
                conn.peer_closed = true;
            }
            continue;
        }
        queue.push_back(Job { conn: key, payload });
        shared
            .metrics
            .queue_depth
            .store(queue.len() as u64, Ordering::Relaxed);
        drop(queue);
        conn.in_flight = true;
        shared.queue_cv.notify_one();
        return;
    }
    if let Some(bytes) = conn.poison_response.take() {
        conn.write_buf.extend_from_slice(&bytes);
    }
}

/// Writes as much buffered output as the socket accepts.
fn flush(conn: &mut Conn) {
    while !conn.write_buf.is_empty() {
        match conn.stream.write(&conn.write_buf) {
            Ok(0) => {
                conn.peer_closed = true;
                return;
            }
            Ok(n) => {
                conn.write_buf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.peer_closed = true;
                conn.write_buf.clear();
                return;
            }
        }
    }
}

/// A worker: executes framed requests against the shared state, timing each one
/// into the metrics under its op label.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    shared
                        .metrics
                        .queue_depth
                        .store(queue.len() as u64, Ordering::Relaxed);
                    break job;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let started = Instant::now();
        let (bytes, op, is_error, close_after) = match &job.payload {
            Payload::Line(line) => {
                let (response, op) = handle_line(shared, line);
                let mut bytes = response.encode().into_bytes();
                bytes.push(b'\n');
                (bytes, op, response.result.is_err(), false)
            }
            Payload::Http(request) => handle_http(shared, request),
        };
        shared.metrics.record(op, started.elapsed(), is_error);
        shared.outbox.lock().push(Outgoing {
            conn: job.conn,
            bytes,
            close_after,
        });
        let _ = shared.poller.notify();
    }
}

/// Parses and executes one line-framed request; returns the response and the op
/// label to account it under (`"invalid"` when no op could be decoded).
fn handle_line(shared: &Shared, line: &[u8]) -> (Response, &'static str) {
    let text = match std::str::from_utf8(line) {
        Ok(text) => text,
        Err(_) => {
            return (
                Response {
                    id: Json::Null,
                    result: Err(WireError::bad_request("request line is not valid UTF-8")),
                },
                "invalid",
            )
        }
    };
    let request = match Request::decode(text) {
        Ok(request) => request,
        Err(failure) => {
            return (
                Response {
                    id: failure.id,
                    result: Err(failure.error),
                },
                "invalid",
            )
        }
    };
    let op = request.body.op();
    (
        Response {
            result: execute(shared, &request.body),
            id: request.id,
        },
        op,
    )
}

/// Routes, decodes, and executes one HTTP request; returns the complete response
/// bytes, the op label, whether the outcome was an error, and whether the
/// connection must close after the response flushes.
fn handle_http(shared: &Shared, request: &HttpRequest) -> (Vec<u8>, &'static str, bool, bool) {
    let keep_alive = request.keep_alive;
    let close_after = !keep_alive;
    let (path, query_string) = http::split_target(&request.target);
    let Some(op) = http::route_op(path) else {
        let response = Response {
            id: Json::Null,
            result: Err(WireError {
                code: ErrorCode::UnknownOp,
                message: format!("no route `{path}` (see docs/PROTOCOL.md for the route table)"),
            }),
        };
        return (
            http::encode_protocol_response(&response, keep_alive),
            "invalid",
            true,
            close_after,
        );
    };
    let typed = match request.method.as_str() {
        "POST" => http::decode_request(op, &request.body),
        "GET" if op == "info" => Ok(http::info_request(query_string)),
        method => {
            let response = Response {
                id: Json::Null,
                result: Err(WireError::bad_request(format!(
                    "method {method} not allowed on {path}; use POST (GET only on /v1/info)"
                ))),
            };
            let mut line = response.encode();
            line.push('\n');
            return (
                http::encode_response(405, line.as_bytes(), keep_alive),
                "invalid",
                true,
                close_after,
            );
        }
    };
    match typed {
        Ok(typed) => {
            let response = Response {
                result: execute(shared, &typed.body),
                id: typed.id,
            };
            let is_error = response.result.is_err();
            (
                http::encode_protocol_response(&response, keep_alive),
                op,
                is_error,
                close_after,
            )
        }
        Err(failure) => {
            let response = Response {
                id: failure.id,
                result: Err(failure.error),
            };
            (
                http::encode_protocol_response(&response, keep_alive),
                "invalid",
                true,
                close_after,
            )
        }
    }
}

/// Executes a decoded request body against the shared state.
fn execute(shared: &Shared, body: &RequestBody) -> Result<ResponseBody, WireError> {
    match body {
        RequestBody::Info { server } => {
            let service = shared.service.read();
            let stats = service.stats();
            Ok(ResponseBody::Info {
                columns: service
                    .catalog()
                    .live_entries()
                    .map(|e| InfoColumn {
                        table: e.table.clone(),
                        column: e.column.clone(),
                        rows: e.rows,
                    })
                    .collect(),
                stats: Some(WireServiceStats {
                    columns: stats.columns as u64,
                    hydrated: stats.hydrated as u64,
                    bytes_on_disk: stats.bytes_on_disk,
                    last_compaction: stats.last_compaction.as_ref().map(|report| WireCompaction {
                        removed_files: report.removed_files.len() as u64,
                        live_columns: report.live_columns as u64,
                    }),
                }),
                sketcher: stats.sketcher,
                fingerprint: stats.fingerprint,
                method: stats.method,
                format: Some(stats.format),
                server: server.then(|| shared.metrics.snapshot()),
                // Single catalog nodes never report cluster state; only the
                // router synthesizes info responses with a `cluster` member.
                cluster: None,
            })
        }
        RequestBody::Query {
            mode,
            k,
            min_join_size,
            cascade,
            query,
        } => {
            let (rankings, note) = run_batch(
                shared,
                std::slice::from_ref(query),
                *mode,
                *k,
                *min_join_size,
                *cascade,
            )?;
            let [ranking] =
                <[Vec<WireRanked>; 1]>::try_from(rankings).expect("one query yields one ranking");
            Ok(ResponseBody::Ranking { ranking, note })
        }
        RequestBody::BatchQuery {
            mode,
            k,
            min_join_size,
            cascade,
            queries,
        } => {
            let (rankings, note) = run_batch(shared, queries, *mode, *k, *min_join_size, *cascade)?;
            Ok(ResponseBody::Rankings { rankings, note })
        }
        RequestBody::Ingest { table, partitions } => {
            let table = table.to_table()?;
            // Sketch every column *outside* the service lock (the expensive part —
            // seconds for a large table), so queries keep flowing; only the final
            // registration commit below needs exclusive access.
            let mut sketched = Vec::new();
            let mut companions = Vec::new();
            let mut skipped = Vec::new();
            for column in table.columns() {
                let result = match partitions {
                    Some(partitions) => shared.estimator.sketch_column_partitioned(
                        &table,
                        &column.name,
                        usize::try_from(*partitions).unwrap_or(usize::MAX),
                    ),
                    None => shared.estimator.sketch_column(&table, &column.name),
                };
                match result {
                    Ok(primary) => {
                        // The companion (cheap-tier) sketch is always built
                        // one-shot: its sketchers are mergeable, so the result
                        // is independent of the primary's partitioning.
                        let companion = match &shared.companion_estimator {
                            Some(est) => Some(
                                est.sketch_column(&table, &column.name)
                                    .map_err(WireError::from)?,
                            ),
                            None => None,
                        };
                        sketched.push(primary);
                        companions.push(companion);
                    }
                    Err(ipsketch_join::JoinError::EmptyColumn { .. }) => {
                        skipped.push(column.name.clone());
                    }
                    Err(other) => return Err(other.into()),
                }
            }
            let report = shared
                .service
                .write()
                .register_sketched_with_companions(sketched, companions)
                .map_err(WireError::from)?;
            shared.signal_maintenance();
            Ok(ResponseBody::Report {
                registered: report.registered,
                skipped,
            })
        }
        RequestBody::IngestBegin { table } => {
            let mut sessions = shared.sessions.lock();
            let id = sessions.next_id;
            sessions.next_id += 1;
            sessions.slots.insert(
                id,
                SessionSlot {
                    state: Arc::new(Mutex::new(Some(
                        ShardedIngestState::new(table.clone())
                            .with_companion(shared.companion_estimator.clone()),
                    ))),
                    touched: Instant::now(),
                },
            );
            Ok(ResponseBody::Session(id))
        }
        RequestBody::IngestAnnounce { session, shard } => {
            with_session(shared, *session, |state| {
                state.announce(&shard.to_table()?).map_err(WireError::from)
            })?;
            Ok(ResponseBody::Session(*session))
        }
        RequestBody::IngestSubmit { session, shard } => {
            with_session(shared, *session, |state| {
                state
                    .submit(&shared.estimator, &shard.to_table()?)
                    .map_err(WireError::from)
            })?;
            Ok(ResponseBody::Session(*session))
        }
        RequestBody::IngestFinish { session } => {
            let slot = shared
                .sessions
                .lock()
                .touch(*session)
                .ok_or_else(|| unknown_session(*session))?;
            // Take the state out of its slot first, so a racing second finish (or
            // announce/submit) observes an empty slot — not a deadlock on the
            // service write lock below.
            let state = slot
                .lock()
                .take()
                .ok_or_else(|| unknown_session(*session))?;
            // The session is consumed whether the commit succeeds or fails (its
            // partial sketches are moved into the registration); drop the map entry.
            shared.sessions.lock().slots.remove(session);
            let result = shared.service.write().finish_sharded_ingest(state);
            let report = result.map_err(WireError::from)?;
            shared.signal_maintenance();
            Ok(ResponseBody::Report {
                registered: report.registered,
                skipped: report.skipped,
            })
        }
        RequestBody::DropColumn { table, column } => {
            shared
                .service
                .write()
                .drop_column(table, column)
                .map_err(WireError::from)?;
            // The tombstoned blob is garbage now; let the maintenance thread's
            // next compaction pass reclaim it.
            shared.signal_maintenance();
            Ok(ResponseBody::Dropped {
                table: table.clone(),
                column: column.clone(),
            })
        }
        RequestBody::ExportColumn { table, column } => {
            let service = shared.service.read();
            let (rows, bytes) = service
                .catalog()
                .export_blob(table, column)
                .map_err(WireError::from)?;
            Ok(ResponseBody::Sketch(WireSketch {
                table: table.clone(),
                column: column.clone(),
                rows,
                bytes,
            }))
        }
        RequestBody::ImportColumn { sketch } => {
            let registered = shared
                .service
                .write()
                .import_sketched_blob(&sketch.table, &sketch.column, &sketch.bytes)
                .map_err(WireError::from)?;
            shared.signal_maintenance();
            Ok(ResponseBody::Report {
                registered: if registered {
                    vec![(sketch.table.clone(), sketch.column.clone())]
                } else {
                    Vec::new()
                },
                skipped: if registered {
                    Vec::new()
                } else {
                    vec![sketch.column.clone()]
                },
            })
        }
    }
}

fn unknown_session(session: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("no live ingest session {session} (finished, failed, or never begun)"),
    }
}

/// Runs `f` on the live state of `session`, refreshing its idle clock.
fn with_session<T>(
    shared: &Shared,
    session: u64,
    f: impl FnOnce(&mut ShardedIngestState) -> Result<T, WireError>,
) -> Result<T, WireError> {
    let slot = shared
        .sessions
        .lock()
        .touch(session)
        .ok_or_else(|| unknown_session(session))?;
    let mut guard = slot.lock();
    let state = guard.as_mut().ok_or_else(|| unknown_session(session))?;
    f(state)
}

/// Sketches the query columns and ranks them as one runner-backed batch, under a
/// shared read lock — the same code path as `QueryService::query_*_batch`, so wire
/// answers are bit-identical to in-process answers.
fn run_batch(
    shared: &Shared,
    queries: &[WireQuery],
    mode: Mode,
    k: u64,
    min_join_size: f64,
    cascade: bool,
) -> Result<(Vec<Vec<WireRanked>>, Option<WireNote>), WireError> {
    if cascade && mode == Mode::Related {
        return Err(WireError::bad_request(
            "`cascade` applies to `joinable` queries only",
        ));
    }
    let k = usize::try_from(k).unwrap_or(usize::MAX);
    // A cascade request against a catalog with no companion tier is answered by
    // the flat scan with an advisory note — never an error (the answer is the
    // same ranking, just computed the slow way).
    let companion_est = if cascade {
        shared.companion_estimator.as_ref()
    } else {
        None
    };
    let note = if cascade && companion_est.is_none() {
        let fallback = CascadeNote::fallback();
        Some(WireNote {
            code: fallback.code.to_string(),
            message: fallback.message,
        })
    } else {
        None
    };
    // Sketch the query columns *outside* any lock, with the immutable estimator
    // clone (identical configuration → bit-identical sketches): the CPU-heavy
    // phase of a large batch must never hold the read lock, or it would stall
    // ingest commits and compaction behind it (and, on writer-preferring lock
    // implementations, every later query behind those).
    let mut sketched: Vec<SketchedColumn> = Vec::with_capacity(queries.len());
    let mut cascade_pairs: Vec<(SketchedColumn, SketchedColumn)> = Vec::new();
    for query in queries {
        let table = query.to_table()?;
        let primary = shared
            .estimator
            .sketch_column(&table, &query.column)
            .map_err(WireError::from)?;
        if let Some(est) = companion_est {
            let companion = est
                .sketch_column(&table, &query.column)
                .map_err(WireError::from)?;
            cascade_pairs.push((primary.clone(), companion));
        }
        sketched.push(primary);
    }
    loop {
        {
            let service = shared.service.read();
            if service.is_fully_hydrated() {
                let rankings = match mode {
                    Mode::Joinable if companion_est.is_some() => {
                        service.index().top_k_joinable_cascade_batch(
                            &cascade_pairs,
                            k,
                            ipsketch_join::DEFAULT_CASCADE_CONFIDENCE,
                        )
                    }
                    Mode::Joinable => service.index().top_k_joinable_batch(&sketched, k),
                    Mode::Related => {
                        service
                            .index()
                            .top_k_correlated_batch(&sketched, k, min_join_size)
                    }
                }
                .map_err(WireError::from)?;
                return Ok((
                    rankings
                        .iter()
                        .map(|ranking| ranking.iter().map(WireRanked::from).collect())
                        .collect(),
                    note,
                ));
            }
        }
        // Columns exist that are not in the index yet (catalog opened cold):
        // hydrate under the write lock, then retry the read-locked fast path.
        shared
            .service
            .write()
            .ensure_hydrated()
            .map_err(WireError::from)?;
    }
}

/// The maintenance thread: compacts the catalog periodically and on demand.
fn maintenance_loop(shared: &Shared) {
    loop {
        {
            let mut pending = shared
                .maint
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while !*pending && !shared.shutdown.load(Ordering::SeqCst) {
                match shared.config.maintenance_interval {
                    Some(interval) => {
                        let (guard, timeout) = shared
                            .maint_cv
                            .wait_timeout(pending, interval)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        pending = guard;
                        if timeout.timed_out() {
                            break; // Periodic pass.
                        }
                    }
                    None => {
                        pending = shared
                            .maint_cv
                            .wait(pending)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            *pending = false;
        }
        // Expire ingest sessions idle past the TTL before compacting: their folded
        // partial sketches are the only server-side state a vanished client leaks.
        let expired = {
            let mut sessions = shared.sessions.lock();
            let before = sessions.slots.len();
            sessions
                .slots
                .retain(|_, slot| slot.touched.elapsed() <= shared.config.session_ttl);
            (before - sessions.slots.len()) as u64
        };
        let result = shared.service.write().compact();
        let mut stats = shared.maintenance_stats.lock();
        stats.sessions_expired += expired;
        match result {
            Ok(report) => {
                stats.passes += 1;
                stats.files_removed += report.removed_files.len() as u64;
            }
            Err(_) => stats.failures += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_lines_frames_and_keeps_partials() {
        let mut buf = b"one\r\ntwo\n\n\r\npartial".to_vec();
        let lines = drain_lines(&mut buf);
        assert_eq!(lines, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(buf, b"partial");
        let lines = drain_lines(&mut buf);
        assert!(lines.is_empty());
        buf.extend_from_slice(b" more\n");
        assert_eq!(drain_lines(&mut buf), vec![b"partial more".to_vec()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn builder_defaults_keep_worker_headroom_small() {
        let config = ServerConfig::builder()
            .tcp("127.0.0.1:0")
            .build()
            .expect("valid");
        assert_eq!(config.workers(), 2);
        assert!(config.max_line_bytes() >= 1 << 20);
        assert!(config.maintenance_interval().is_some());
        assert!(config.max_connections() >= 1);
        assert!(config.max_queue_depth() >= 1);
        assert_eq!(config.tcp(), Some("127.0.0.1:0"));
        assert_eq!(config.http(), None);
    }

    #[test]
    fn builder_rejects_nonsense_with_typed_errors() {
        assert_eq!(
            ServerConfig::builder().build().expect_err("no address"),
            ConfigError::NoBindAddress
        );
        assert_eq!(
            ServerConfig::builder()
                .tcp("127.0.0.1:0")
                .workers(0)
                .build()
                .expect_err("zero workers"),
            ConfigError::ZeroWorkers
        );
        assert_eq!(
            ServerConfig::builder()
                .http("127.0.0.1:0")
                .max_connections(0)
                .build()
                .expect_err("zero connections"),
            ConfigError::ZeroConnectionCap
        );
        assert_eq!(
            ServerConfig::builder()
                .http("127.0.0.1:0")
                .max_queue_depth(0)
                .build()
                .expect_err("zero queue"),
            ConfigError::ZeroQueueDepth
        );
        assert!(matches!(
            ServerConfig::builder()
                .tcp("127.0.0.1:0")
                .max_line_bytes(16)
                .build()
                .expect_err("tiny bound"),
            ConfigError::LineBoundTooSmall { got: 16, .. }
        ));
        // Every error renders a human-readable sentence.
        for err in [
            ConfigError::NoBindAddress,
            ConfigError::ZeroWorkers,
            ConfigError::ZeroConnectionCap,
            ConfigError::ZeroQueueDepth,
            ConfigError::LineBoundTooSmall { got: 1, min: 2 },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn dual_binds_accept_both_framers() {
        let config = ServerConfig::builder()
            .tcp("127.0.0.1:0")
            .http("127.0.0.1:0")
            .build()
            .expect("valid");
        assert!(config.tcp().is_some() && config.http().is_some());
    }
}
