//! The concurrent TCP front end over a [`QueryService`].
//!
//! One request or response per `\n`-terminated line of JSON (normative spec:
//! `docs/PROTOCOL.md`; typed model: [`crate::protocol`]).  The design splits work
//! across three kinds of threads, sized so the sketch runner keeps headroom:
//!
//! * **Reactor (1 thread).**  A `poll(2)` readiness loop (the vendored [`polling`]
//!   shim — the offline image has no tokio) owns the listener and every connection:
//!   it accepts, reads, frames lines, and writes responses.  It never parses JSON or
//!   touches the service, so a slow query cannot stall accepts or other
//!   connections' I/O.
//! * **Workers (`ServerConfig::workers` threads).**  Pull framed request lines from
//!   a queue, execute them against the shared state, and hand encoded response
//!   lines back to the reactor.  Requests from *one* connection run strictly in
//!   order (responses come back in request order — no client-side correlation
//!   needed); requests from different connections run in parallel.
//! * **Maintenance (1 thread).**  Runs catalog compaction/re-manifest on an
//!   interval and after ingests, behind the same exclusive lock as registrations.
//!
//! The service sits behind a read-write lock: queries take shared read access and
//! fan each batch out on the work-claiming runner (`top_k_*_batch`), so a single
//! wire batch saturates cores; ingests and compaction take the write lock.  The
//! server holds a [`runner`] thread reservation for its own threads, so those
//! runner fan-outs automatically leave headroom for the accept loop instead of
//! oversubscribing the machine.
//!
//! Shard-partial ingest sessions ([`ShardedIngestState`]) live *outside* the service
//! lock in a session map: `announce`/`submit` sketch with a clone of the catalog's
//! estimator and take no service lock at all, so any number of registration sessions
//! make progress while queries are served; only `ingest-finish` (the catalog commit)
//! briefly takes the write lock.

use crate::protocol::{
    ErrorCode, InfoColumn, Mode, Request, RequestBody, Response, ResponseBody, WireError,
    WireQuery, WireRanked,
};
use crate::service::{QueryService, ShardedIngestState};
use crate::wire::Json;
use ipsketch_core::runner::{self, ThreadReservation};
use ipsketch_join::{JoinEstimator, SketchedColumn};
use parking_lot::{Mutex, RwLock};
use polling::{Event, Poller};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Poller key of the listening socket; connections get keys starting above it.
const LISTENER_KEY: usize = 0;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Request-executing worker threads.  Two by default: enough that a slow ingest
    /// does not block queries, while leaving the runner (which parallelizes each
    /// batch internally) most of the machine.
    pub workers: usize,
    /// Hard bound on one request line; longer lines earn a `too_large` error and
    /// close the connection (the framing cannot resynchronize).
    pub max_line_bytes: usize,
    /// How often the maintenance thread compacts the catalog when idle.  Ingests
    /// also trigger a pass.  `None` disables periodic passes (ingest-triggered ones
    /// still run).
    pub maintenance_interval: Option<Duration>,
    /// How long an ingest session may sit untouched before a maintenance pass
    /// expires it.  Sessions hold folded partial sketches, so abandoned ones
    /// (client crashed before `ingest-finish`) would otherwise leak for the
    /// server's lifetime.  Operations on an expired id get `unknown_session`.
    pub session_ttl: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_line_bytes: 64 << 20,
            maintenance_interval: Some(Duration::from_secs(30)),
            session_ttl: Duration::from_secs(15 * 60),
        }
    }
}

/// Running totals of the maintenance thread, exposed for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Completed compaction passes.
    pub passes: u64,
    /// Total unreferenced files removed across all passes.
    pub files_removed: u64,
    /// Passes that failed (I/O errors); the service keeps running.
    pub failures: u64,
    /// Ingest sessions expired for sitting idle past the configured TTL.
    pub sessions_expired: u64,
}

/// Handle to a running server: address introspection and shutdown.
///
/// Dropping the handle shuts the server down and joins its threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    /// Keeps runner headroom for the reactor + workers while the server lives.
    _reservation: ThreadReservation,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Maintenance totals so far.
    #[must_use]
    pub fn maintenance_stats(&self) -> MaintenanceStats {
        *self.shared.maintenance_stats.lock()
    }

    /// Asks the maintenance thread for an immediate compaction pass.
    pub fn request_maintenance(&self) {
        self.shared.signal_maintenance();
    }

    /// Stops accepting, drains nothing further, and joins every thread.  In-flight
    /// requests finish; queued-but-unstarted requests on other connections are
    /// dropped along with their connections.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Blocks until the server stops on its own — which only happens on a fatal
    /// reactor error (e.g. `poll(2)` failing) — and joins every thread.  This is
    /// what a serve-until-killed front end (the CLI) parks on: if it returns, the
    /// listener is gone and the process should exit with an error instead of
    /// lingering as a live-looking corpse.
    pub fn wait(mut self) {
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        self.shared.maint_cv.notify_all();
        let _ = self.shared.poller.notify();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Starts a server over `service` on `addr` and returns immediately with its handle.
///
/// `addr` may carry port 0 to bind an ephemeral port; read it back with
/// [`ServerHandle::local_addr`].
///
/// # Errors
///
/// Returns the OS error if the listener cannot bind or the reactor cannot be set up.
pub fn serve(
    service: QueryService,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    // Normalize once so the spawn count, the runner reservation, and the stored
    // config can never disagree (a `workers: 0` caller still gets one worker).
    let config = ServerConfig {
        workers: config.workers.max(1),
        ..config
    };
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let poller = Poller::new()?;
    poller.add(&listener, Event::readable(LISTENER_KEY))?;

    // The service's estimator is cloned once for the session map: sharded-ingest
    // sketching must not need any service lock.  The configuration is immutable for
    // the catalog's lifetime, so the clone can never go stale.
    let estimator = service.estimator().clone();
    let shared = Arc::new(Shared {
        service: RwLock::new(service),
        estimator,
        sessions: Mutex::new(SessionMap {
            next_id: 1,
            slots: HashMap::new(),
        }),
        queue: StdMutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        maint: StdMutex::new(false),
        maint_cv: Condvar::new(),
        maintenance_stats: Mutex::new(MaintenanceStats::default()),
        outbox: Mutex::new(Vec::new()),
        poller,
        shutdown: AtomicBool::new(false),
        config: config.clone(),
    });

    // Reactor + workers occupy cores for as long as the server runs; reserving them
    // makes every runner-backed batch fan-out leave that headroom automatically.
    let reservation = runner::reserve_threads(1 + config.workers);

    let mut threads = Vec::with_capacity(config.workers + 2);
    let reactor_shared = Arc::clone(&shared);
    threads.push(
        std::thread::Builder::new()
            .name("ipsketch-reactor".to_string())
            .spawn(move || reactor_loop(&reactor_shared, &listener))?,
    );
    for worker in 0..config.workers {
        let worker_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("ipsketch-worker-{worker}"))
                .spawn(move || worker_loop(&worker_shared))?,
        );
    }
    let maint_shared = Arc::clone(&shared);
    threads.push(
        std::thread::Builder::new()
            .name("ipsketch-maintenance".to_string())
            .spawn(move || maintenance_loop(&maint_shared))?,
    );

    Ok(ServerHandle {
        shared,
        addr,
        threads,
        _reservation: reservation,
    })
}

/// A framed request line waiting for a worker.
struct Job {
    conn: usize,
    line: Vec<u8>,
}

/// An encoded response line (newline included) waiting for the reactor.
struct Outgoing {
    conn: usize,
    bytes: Vec<u8>,
}

/// One live shard-partial ingest session.  The state slot holds `None` while
/// `ingest-finish` consumes it, so a racing operation on the same session gets a
/// clean `unknown_session` instead of blocking or corrupting it.
struct SessionSlot {
    state: Arc<Mutex<Option<ShardedIngestState>>>,
    /// When the session was last looked up; maintenance expires sessions whose
    /// idle time exceeds [`ServerConfig::session_ttl`].
    touched: std::time::Instant,
}

struct SessionMap {
    next_id: u64,
    slots: HashMap<u64, SessionSlot>,
}

impl SessionMap {
    /// Looks up a session's state, refreshing its idle clock.
    fn touch(&mut self, session: u64) -> Option<Arc<Mutex<Option<ShardedIngestState>>>> {
        self.slots.get_mut(&session).map(|slot| {
            slot.touched = std::time::Instant::now();
            Arc::clone(&slot.state)
        })
    }
}

/// State shared by the reactor, workers, and maintenance threads.
struct Shared {
    service: RwLock<QueryService>,
    estimator: JoinEstimator,
    sessions: Mutex<SessionMap>,
    queue: StdMutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// "A maintenance pass is requested" flag under its condvar's mutex.
    maint: StdMutex<bool>,
    maint_cv: Condvar,
    maintenance_stats: Mutex<MaintenanceStats>,
    outbox: Mutex<Vec<Outgoing>>,
    poller: Poller,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn signal_maintenance(&self) {
        *self
            .maint
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.maint_cv.notify_all();
    }
}

/// Splits complete `\n`-terminated lines off the front of `buf`, tolerating `\r\n`
/// and skipping empty lines.  Leaves the trailing partial line in place.
fn drain_lines(buf: &mut Vec<u8>) -> Vec<Vec<u8>> {
    let mut lines = Vec::new();
    let mut start = 0;
    while let Some(nl) = buf[start..].iter().position(|&b| b == b'\n') {
        let mut end = start + nl;
        if end > start && buf[end - 1] == b'\r' {
            end -= 1;
        }
        if end > start {
            lines.push(buf[start..end].to_vec());
        }
        start += nl + 1;
    }
    buf.drain(..start);
    lines
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Lines framed but not yet dispatched (per-connection requests run in order).
    pending: VecDeque<Vec<u8>>,
    /// Whether a request from this connection is currently queued or executing.
    in_flight: bool,
    /// Peer sent FIN: serve what is in flight, flush, then drop.
    peer_closed: bool,
    /// Fatal framing state (oversized line): stop reading, answer everything framed
    /// before the break, then emit the error and drop.
    poisoned: bool,
    /// The encoded `too_large` response, emitted only after every request framed
    /// before the poisoning line has been answered — preserving the documented
    /// per-connection response order.
    poison_response: Option<Vec<u8>>,
}

impl Conn {
    fn wants_close(&self) -> bool {
        (self.peer_closed || self.poisoned)
            && self.write_buf.is_empty()
            && !self.in_flight
            && self.pending.is_empty()
            && self.poison_response.is_none()
    }
}

/// The reactor: owns the listener and all connection I/O.
fn reactor_loop(shared: &Shared, listener: &TcpListener) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key = LISTENER_KEY + 1;
    let mut events: Vec<Event> = Vec::new();
    loop {
        events.clear();
        // A modest timeout backstops lost wakeups; all real work is notify-driven.
        if shared
            .poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .is_err()
        {
            // A failing poll(2) is unrecoverable for the reactor; shut down rather
            // than spin.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            shared.maint_cv.notify_all();
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            for conn in conns.values() {
                let _ = shared.poller.delete(&conn.stream);
            }
            return;
        }

        for event in &events {
            if event.key == LISTENER_KEY {
                accept_ready(shared, listener, &mut conns, &mut next_key);
            } else if let Some(conn) = conns.get_mut(&event.key) {
                if event.readable {
                    read_ready(shared, event.key, conn);
                }
                if event.writable {
                    flush(conn);
                }
            }
        }

        // Move completed responses from the workers into connection write buffers;
        // each response retires its connection's in-flight request.
        let outgoing = std::mem::take(&mut *shared.outbox.lock());
        for out in outgoing {
            if let Some(conn) = conns.get_mut(&out.conn) {
                conn.write_buf.extend_from_slice(&out.bytes);
                conn.in_flight = false;
                dispatch_next(shared, out.conn, conn);
                flush(conn);
            }
        }

        // Re-arm interests and reap finished connections.  Poisoned connections
        // drop read interest entirely: whatever the client keeps sending is
        // undecodable past a broken frame, so it is left in the kernel buffer and
        // the connection closes as soon as the error response flushes.
        conns.retain(|&key, conn| {
            if conn.wants_close() {
                let _ = shared.poller.delete(&conn.stream);
                return false;
            }
            let interest = if conn.poisoned {
                Event::writable(key)
            } else if conn.write_buf.is_empty() {
                Event::readable(key)
            } else {
                Event::all(key)
            };
            let _ = shared.poller.modify(&conn.stream, interest);
            true
        });
    }
}

/// Accepts every pending connection.
fn accept_ready(
    shared: &Shared,
    listener: &TcpListener,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let key = *next_key;
                *next_key += 1;
                if shared.poller.add(&stream, Event::readable(key)).is_ok() {
                    conns.insert(
                        key,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            pending: VecDeque::new(),
                            in_flight: false,
                            peer_closed: false,
                            poisoned: false,
                            poison_response: None,
                        },
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Per-connection failures (ECONNABORTED & co) and resource exhaustion
            // (EMFILE/ENFILE).  The latter leaves the backlogged connection pending,
            // so the level-triggered poller would re-report the listener instantly;
            // a brief backoff keeps the reactor from spinning at 100% while the
            // kernel backlog drains or descriptors free up.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                return;
            }
        }
    }
}

/// How many socket reads one readable event may perform before yielding back to
/// the reactor loop: bounds one fast sender's monopoly on the reactor thread
/// (level-triggered polling re-reports whatever is left).
const READS_PER_EVENT: usize = 64;

/// Reads what is available (bounded per event), frames lines eagerly so the size
/// bound applies *per line* — a pipelined burst of individually legal requests is
/// never rejected on its aggregate size — and dispatches if idle.
fn read_ready(shared: &Shared, key: usize, conn: &mut Conn) {
    if conn.poisoned {
        // Nothing past a broken frame is decodable; stop consuming input so the
        // connection reaches its flush-then-close state instead of buffering an
        // unbounded stream.
        return;
    }
    let mut chunk = [0u8; 16 * 1024];
    for _ in 0..READS_PER_EVENT {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                for line in drain_lines(&mut conn.read_buf) {
                    if line.len() > shared.config.max_line_bytes {
                        poison_too_large(shared, conn);
                        break;
                    }
                    conn.pending.push_back(line);
                }
                // Only the *unframed tail* is held to the bound: a single line
                // still growing past it can never complete legally.
                if conn.read_buf.len() > shared.config.max_line_bytes {
                    poison_too_large(shared, conn);
                }
                if conn.poisoned {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.peer_closed = true;
                break;
            }
        }
    }
    dispatch_next(shared, key, conn);
}

/// Poisons the connection on an oversized line (framing cannot resync): reading
/// stops, requests framed *before* the break still get answered in order, and the
/// `too_large` error goes out last (see [`dispatch_next`]) before the close.
/// Idempotent: a line crossing the bound more than once still earns one response.
fn poison_too_large(shared: &Shared, conn: &mut Conn) {
    if conn.poisoned {
        return;
    }
    let response = Response {
        id: Json::Null,
        result: Err(WireError {
            code: ErrorCode::TooLarge,
            message: format!(
                "request line exceeds the {}-byte bound",
                shared.config.max_line_bytes
            ),
        }),
    };
    let mut bytes = response.encode().into_bytes();
    bytes.push(b'\n');
    conn.poison_response = Some(bytes);
    conn.read_buf.clear();
    conn.poisoned = true;
}

/// Hands the next pending line of `conn` to the workers, if it is idle.  On a
/// poisoned connection, the stored `too_large` error is emitted only once every
/// earlier request has been answered, preserving response order.
fn dispatch_next(shared: &Shared, key: usize, conn: &mut Conn) {
    if conn.in_flight {
        return;
    }
    if let Some(line) = conn.pending.pop_front() {
        conn.in_flight = true;
        shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push_back(Job { conn: key, line });
        shared.queue_cv.notify_one();
        return;
    }
    if let Some(bytes) = conn.poison_response.take() {
        conn.write_buf.extend_from_slice(&bytes);
    }
}

/// Writes as much buffered output as the socket accepts.
fn flush(conn: &mut Conn) {
    while !conn.write_buf.is_empty() {
        match conn.stream.write(&conn.write_buf) {
            Ok(0) => {
                conn.peer_closed = true;
                return;
            }
            Ok(n) => {
                conn.write_buf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.peer_closed = true;
                conn.write_buf.clear();
                return;
            }
        }
    }
}

/// A worker: executes framed requests against the shared state.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let response = handle_line(shared, &job.line);
        let mut bytes = response.encode().into_bytes();
        bytes.push(b'\n');
        shared.outbox.lock().push(Outgoing {
            conn: job.conn,
            bytes,
        });
        let _ = shared.poller.notify();
    }
}

/// Parses and executes one request line.
fn handle_line(shared: &Shared, line: &[u8]) -> Response {
    let text = match std::str::from_utf8(line) {
        Ok(text) => text,
        Err(_) => {
            return Response {
                id: Json::Null,
                result: Err(WireError::bad_request("request line is not valid UTF-8")),
            }
        }
    };
    let request = match Request::decode(text) {
        Ok(request) => request,
        Err(failure) => {
            return Response {
                id: failure.id,
                result: Err(failure.error),
            }
        }
    };
    Response {
        result: execute(shared, &request.body),
        id: request.id,
    }
}

/// Executes a decoded request body against the shared state.
fn execute(shared: &Shared, body: &RequestBody) -> Result<ResponseBody, WireError> {
    match body {
        RequestBody::Info => {
            let service = shared.service.read();
            let catalog = service.catalog();
            let spec = catalog.spec();
            Ok(ResponseBody::Info {
                sketcher: spec.to_string(),
                fingerprint: format!("{:016x}", spec.fingerprint()),
                method: spec.method().label().to_string(),
                columns: catalog
                    .entries()
                    .iter()
                    .map(|e| InfoColumn {
                        table: e.table.clone(),
                        column: e.column.clone(),
                        rows: e.rows,
                    })
                    .collect(),
            })
        }
        RequestBody::Query {
            mode,
            k,
            min_join_size,
            query,
        } => {
            let rankings = run_batch(
                shared,
                std::slice::from_ref(query),
                *mode,
                *k,
                *min_join_size,
            )?;
            let [ranking] =
                <[Vec<WireRanked>; 1]>::try_from(rankings).expect("one query yields one ranking");
            Ok(ResponseBody::Ranking(ranking))
        }
        RequestBody::BatchQuery {
            mode,
            k,
            min_join_size,
            queries,
        } => Ok(ResponseBody::Rankings(run_batch(
            shared,
            queries,
            *mode,
            *k,
            *min_join_size,
        )?)),
        RequestBody::Ingest { table, partitions } => {
            let table = table.to_table()?;
            // Sketch every column *outside* the service lock (the expensive part —
            // seconds for a large table), so queries keep flowing; only the final
            // registration commit below needs exclusive access.
            let mut sketched = Vec::new();
            let mut skipped = Vec::new();
            for column in table.columns() {
                let result = match partitions {
                    Some(partitions) => shared.estimator.sketch_column_partitioned(
                        &table,
                        &column.name,
                        usize::try_from(*partitions).unwrap_or(usize::MAX),
                    ),
                    None => shared.estimator.sketch_column(&table, &column.name),
                };
                match result {
                    Ok(column) => sketched.push(column),
                    Err(ipsketch_join::JoinError::EmptyColumn { .. }) => {
                        skipped.push(column.name.clone());
                    }
                    Err(other) => return Err(other.into()),
                }
            }
            let report = shared
                .service
                .write()
                .register_sketched(sketched)
                .map_err(WireError::from)?;
            shared.signal_maintenance();
            Ok(ResponseBody::Report {
                registered: report.registered,
                skipped,
            })
        }
        RequestBody::IngestBegin { table } => {
            let mut sessions = shared.sessions.lock();
            let id = sessions.next_id;
            sessions.next_id += 1;
            sessions.slots.insert(
                id,
                SessionSlot {
                    state: Arc::new(Mutex::new(Some(ShardedIngestState::new(table.clone())))),
                    touched: std::time::Instant::now(),
                },
            );
            Ok(ResponseBody::Session(id))
        }
        RequestBody::IngestAnnounce { session, shard } => {
            with_session(shared, *session, |state| {
                state.announce(&shard.to_table()?).map_err(WireError::from)
            })?;
            Ok(ResponseBody::Session(*session))
        }
        RequestBody::IngestSubmit { session, shard } => {
            with_session(shared, *session, |state| {
                state
                    .submit(&shared.estimator, &shard.to_table()?)
                    .map_err(WireError::from)
            })?;
            Ok(ResponseBody::Session(*session))
        }
        RequestBody::IngestFinish { session } => {
            let slot = shared
                .sessions
                .lock()
                .touch(*session)
                .ok_or_else(|| unknown_session(*session))?;
            // Take the state out of its slot first, so a racing second finish (or
            // announce/submit) observes an empty slot — not a deadlock on the
            // service write lock below.
            let state = slot
                .lock()
                .take()
                .ok_or_else(|| unknown_session(*session))?;
            // The session is consumed whether the commit succeeds or fails (its
            // partial sketches are moved into the registration); drop the map entry.
            shared.sessions.lock().slots.remove(session);
            let result = shared.service.write().finish_sharded_ingest(state);
            let report = result.map_err(WireError::from)?;
            shared.signal_maintenance();
            Ok(ResponseBody::Report {
                registered: report.registered,
                skipped: report.skipped,
            })
        }
    }
}

fn unknown_session(session: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("no live ingest session {session} (finished, failed, or never begun)"),
    }
}

/// Runs `f` on the live state of `session`, refreshing its idle clock.
fn with_session<T>(
    shared: &Shared,
    session: u64,
    f: impl FnOnce(&mut ShardedIngestState) -> Result<T, WireError>,
) -> Result<T, WireError> {
    let slot = shared
        .sessions
        .lock()
        .touch(session)
        .ok_or_else(|| unknown_session(session))?;
    let mut guard = slot.lock();
    let state = guard.as_mut().ok_or_else(|| unknown_session(session))?;
    f(state)
}

/// Sketches the query columns and ranks them as one runner-backed batch, under a
/// shared read lock — the same code path as `QueryService::query_*_batch`, so wire
/// answers are bit-identical to in-process answers.
fn run_batch(
    shared: &Shared,
    queries: &[WireQuery],
    mode: Mode,
    k: u64,
    min_join_size: f64,
) -> Result<Vec<Vec<WireRanked>>, WireError> {
    let k = usize::try_from(k).unwrap_or(usize::MAX);
    // Sketch the query columns *outside* any lock, with the immutable estimator
    // clone (identical configuration → bit-identical sketches): the CPU-heavy
    // phase of a large batch must never hold the read lock, or it would stall
    // ingest commits and compaction behind it (and, on writer-preferring lock
    // implementations, every later query behind those).
    let mut sketched: Vec<SketchedColumn> = Vec::with_capacity(queries.len());
    for query in queries {
        let table = query.to_table()?;
        sketched.push(
            shared
                .estimator
                .sketch_column(&table, &query.column)
                .map_err(WireError::from)?,
        );
    }
    loop {
        {
            let service = shared.service.read();
            if service.is_fully_hydrated() {
                let rankings = match mode {
                    Mode::Joinable => service.index().top_k_joinable_batch(&sketched, k),
                    Mode::Related => {
                        service
                            .index()
                            .top_k_correlated_batch(&sketched, k, min_join_size)
                    }
                }
                .map_err(WireError::from)?;
                return Ok(rankings
                    .iter()
                    .map(|ranking| ranking.iter().map(WireRanked::from).collect())
                    .collect());
            }
        }
        // Columns exist that are not in the index yet (catalog opened cold):
        // hydrate under the write lock, then retry the read-locked fast path.
        shared
            .service
            .write()
            .ensure_hydrated()
            .map_err(WireError::from)?;
    }
}

/// The maintenance thread: compacts the catalog periodically and on demand.
fn maintenance_loop(shared: &Shared) {
    loop {
        {
            let mut pending = shared
                .maint
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while !*pending && !shared.shutdown.load(Ordering::SeqCst) {
                match shared.config.maintenance_interval {
                    Some(interval) => {
                        let (guard, timeout) = shared
                            .maint_cv
                            .wait_timeout(pending, interval)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        pending = guard;
                        if timeout.timed_out() {
                            break; // Periodic pass.
                        }
                    }
                    None => {
                        pending = shared
                            .maint_cv
                            .wait(pending)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            *pending = false;
        }
        // Expire ingest sessions idle past the TTL before compacting: their folded
        // partial sketches are the only server-side state a vanished client leaks.
        let expired = {
            let mut sessions = shared.sessions.lock();
            let before = sessions.slots.len();
            sessions
                .slots
                .retain(|_, slot| slot.touched.elapsed() <= shared.config.session_ttl);
            (before - sessions.slots.len()) as u64
        };
        let result = shared.service.write().compact();
        let mut stats = shared.maintenance_stats.lock();
        stats.sessions_expired += expired;
        match result {
            Ok(report) => {
                stats.passes += 1;
                stats.files_removed += report.removed_files.len() as u64;
            }
            Err(_) => stats.failures += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_lines_frames_and_keeps_partials() {
        let mut buf = b"one\r\ntwo\n\n\r\npartial".to_vec();
        let lines = drain_lines(&mut buf);
        assert_eq!(lines, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(buf, b"partial");
        let lines = drain_lines(&mut buf);
        assert!(lines.is_empty());
        buf.extend_from_slice(b" more\n");
        assert_eq!(drain_lines(&mut buf), vec![b"partial more".to_vec()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn config_defaults_keep_worker_headroom_small() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 2);
        assert!(config.max_line_bytes >= 1 << 20);
        assert!(config.maintenance_interval.is_some());
    }
}
