//! The query service: a [`Catalog`] fronted by an in-memory [`SketchIndex`].
//!
//! The service owns the whole serving workflow the ROADMAP describes: open a catalog,
//! lazily hydrate its stored sketches into the index, ingest new tables (one-shot,
//! chunk-partitioned, or shard-partial with the announced-norm exchange), and answer
//! single or batched joinability/relatedness queries.  Hydration is incremental — a
//! column is decoded from disk at most once per service, on the first query after it
//! becomes visible — so opening a service over a large catalog costs only the manifest
//! read.

use crate::catalog::{Catalog, CompactionReport};
use crate::error::CatalogError;
use ipsketch_core::SketcherSpec;
use ipsketch_data::{Column, Table};
use ipsketch_join::{
    ColumnNormPartials, JoinError, JoinEstimator, RankedColumn, SketchIndex, SketchedColumn,
};
use std::collections::HashSet;
use std::path::PathBuf;

/// Stable machine-readable code of the [`CascadeNote`] a cascade query answers
/// with when it fell back to the flat scan (the catalog stores no companion
/// sketches — e.g. it was migrated from a format that could not derive them).
pub const NOTE_CASCADE_FALLBACK: &str = "cascade_fallback";

/// The one fallback message, shared by every node so routed cascade answers stay
/// byte-identical to a single-node twin's (notes merge lexicographically).
const CASCADE_FALLBACK_MESSAGE: &str =
    "catalog stores no companion sketches; answered by the flat scan";

/// A typed informational note attached to a cascade answer: the query succeeded,
/// but not through the two-tier path the client asked for.  Never an error — a
/// v1-migrated or companion-less catalog still answers every cascade query, just
/// by the flat scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CascadeNote {
    /// Stable machine-readable note class ([`NOTE_CASCADE_FALLBACK`]).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl CascadeNote {
    /// The note attached when a cascade request is answered by the flat scan
    /// because the catalog stores no companion sketches.  The message is a
    /// fixed string (no paths, no per-node state), so routed answers stay
    /// byte-identical to their single-node twins.
    #[must_use]
    pub fn fallback() -> Self {
        CascadeNote {
            code: NOTE_CASCADE_FALLBACK,
            message: CASCADE_FALLBACK_MESSAGE.to_string(),
        }
    }
}

/// Splits a table into (up to) `shards` contiguous row-range shards, each carrying the
/// same table name and column layout — the shape [`ShardedIngestState`] expects.  In a real
/// deployment shards exist because the data arrives partitioned; this helper lets
/// single-process callers (tests, the CLI) rehearse the identical protocol.
#[must_use]
pub fn shard_rows(table: &Table, shards: usize) -> Vec<Table> {
    let rows = table.rows();
    if rows == 0 || shards == 0 {
        return Vec::new();
    }
    let chunk = rows.div_ceil(shards);
    (0..rows)
        .step_by(chunk)
        .map(|start| {
            let end = (start + chunk).min(rows);
            Table::new(
                table.name(),
                table.keys()[start..end].to_vec(),
                table
                    .columns()
                    .iter()
                    .map(|c| Column::new(c.name.clone(), c.values[start..end].to_vec()))
                    .collect(),
            )
            .expect("a contiguous row range of a valid table is a valid table")
        })
        .collect()
}

/// What an ingest call did: which columns were registered and which were skipped as
/// unsketchable (all-zero value mass).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// `(table, column)` keys registered into the catalog.
    pub registered: Vec<(String, String)>,
    /// Columns skipped because they carry no value mass.
    pub skipped: Vec<String>,
}

/// A typed snapshot of a service's state — the single source every surface
/// (`ipsketch info`, the TCP `info` op, `GET /v1/info`) renders from.  All fields
/// are deterministic functions of the catalog's ingest/compaction history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Human-readable sketcher configuration (the `SketcherSpec` display form).
    pub sketcher: String,
    /// The spec fingerprint, 16 lowercase hex digits.
    pub fingerprint: String,
    /// The sketch method label.
    pub method: String,
    /// The catalog's on-disk format version label (e.g. `"v2"`); `"v1"` catalogs
    /// serve read-only until migrated.
    pub format: String,
    /// Registered (live) column count.
    pub columns: usize,
    /// How many registered columns are hydrated into the in-memory index.
    pub hydrated: usize,
    /// Total bytes of sketch blobs on disk (sum of manifest blob lengths).
    pub bytes_on_disk: u64,
    /// The most recent compaction's report, if one ran in this service's lifetime.
    pub last_compaction: Option<CompactionReport>,
}

/// A persistent sketch catalog served through an in-memory index.  The estimator
/// lives inside the index (single source of truth); [`estimator`](Self::estimator)
/// borrows it from there, so queries are always sketched under exactly the
/// configuration the index ranks with.
///
/// # Example
///
/// Create a catalog, ingest a table, and rank a fresh query column against it —
/// then reopen the same directory cold and get identical answers from the lazily
/// hydrated sketches:
///
/// ```
/// use ipsketch_core::method::{AnySketcher, SketchMethod};
/// use ipsketch_data::{Column, Table};
/// use ipsketch_serve::QueryService;
///
/// let root = std::env::temp_dir().join(format!("ipsketch-doc-qs-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&root);
/// let spec = AnySketcher::for_budget(SketchMethod::Kmv, 128.0, 7).unwrap().spec();
/// let mut service = QueryService::create(&root, spec).unwrap();
///
/// let weather = Table::new(
///     "weather",
///     (100..300).collect(),
///     vec![Column::new("precip", (100..300).map(f64::from).collect())],
/// ).unwrap();
/// service.ingest_table(&weather).unwrap();
///
/// let taxi = Table::new(
///     "taxi",
///     (0..250).collect(),
///     vec![Column::new("rides", (0..250).map(|i| f64::from(i) + 1.0).collect())],
/// ).unwrap();
/// let query = service.sketch_query(&taxi, "rides").unwrap();
/// let ranked = service.query_joinable(&query, 5).unwrap();
/// assert_eq!(ranked[0].id.table, "weather");
///
/// let mut reopened = QueryService::open(&root).unwrap();
/// let query = reopened.sketch_query(&taxi, "rides").unwrap();
/// assert_eq!(reopened.query_joinable(&query, 5).unwrap(), ranked);
/// # std::fs::remove_dir_all(&root).unwrap();
/// ```
#[derive(Debug)]
pub struct QueryService {
    catalog: Catalog,
    index: SketchIndex,
    hydrated: HashSet<(String, String)>,
    last_compaction: Option<CompactionReport>,
}

impl QueryService {
    /// Initializes a fresh catalog at `root` and serves it.  The catalog declares
    /// the default cheap-sketch companion tier ([`Catalog::default_companion_spec`]),
    /// so its columns serve cascade queries; use
    /// [`create_with_companion`](Self::create_with_companion) to choose a different
    /// companion configuration or none at all.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for filesystem failures, an already-initialized
    /// directory, or a spec that cannot build a sketcher.
    pub fn create(root: impl Into<PathBuf>, spec: SketcherSpec) -> Result<Self, CatalogError> {
        Self::create_with_companion(root, spec, Some(Catalog::default_companion_spec(spec)))
    }

    /// [`create`](Self::create) with an explicit companion (cheap-tier) choice:
    /// `None` builds a flat catalog whose cascade queries fall back to the flat
    /// scan (with a typed [`CascadeNote`]).
    ///
    /// # Errors
    ///
    /// As for [`create`](Self::create), plus [`CatalogError::Incompatible`] for a
    /// companion spec that is not prefilter-eligible (see
    /// [`Catalog::init_with_companion`]).
    pub fn create_with_companion(
        root: impl Into<PathBuf>,
        spec: SketcherSpec,
        companion_spec: Option<SketcherSpec>,
    ) -> Result<Self, CatalogError> {
        Self::from_catalog(Catalog::init_with_companion(root, spec, companion_spec)?)
    }

    /// Opens an existing catalog at `root` and serves it.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] if the directory is not a catalog, its manifest is
    /// corrupt, or its recorded spec cannot build a sketcher.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, CatalogError> {
        Self::from_catalog(Catalog::open(root)?)
    }

    fn from_catalog(catalog: Catalog) -> Result<Self, CatalogError> {
        let mut index = SketchIndex::new(JoinEstimator::new(catalog.spec().build()?));
        if let Some(companion_spec) = catalog.companion_spec() {
            index.set_companion_estimator(Some(JoinEstimator::new(companion_spec.build()?)));
        }
        Ok(Self {
            catalog,
            index,
            hydrated: HashSet::new(),
            last_compaction: None,
        })
    }

    /// The underlying catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The in-memory index the service ranks with.  Combined with
    /// [`is_fully_hydrated`](Self::is_fully_hydrated), this is the shared-read path a
    /// concurrent front end takes: hydrate once under an exclusive lock, then answer
    /// any number of queries through `&self` under a shared lock (the batch methods
    /// of [`SketchIndex`] are exactly the ones the `query_*` methods here call).
    #[must_use]
    pub fn index(&self) -> &SketchIndex {
        &self.index
    }

    /// Whether every cataloged column is already hydrated into the index — i.e.
    /// whether queries can run without the exclusive access
    /// [`ensure_hydrated`](Self::ensure_hydrated) needs.
    #[must_use]
    pub fn is_fully_hydrated(&self) -> bool {
        self.hydrated.len() == self.catalog.len()
    }

    /// Compacts the underlying catalog (see [`Catalog::compact`]): removes
    /// unreferenced blob and temp files and rewrites the manifest.  Takes `&mut self`
    /// so a front end schedules it on its maintenance thread behind the same
    /// exclusive lock as ingests — never concurrent with a registration writing new
    /// blobs.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Io`] for filesystem failures.
    pub fn compact(&mut self) -> Result<CompactionReport, CatalogError> {
        let report = self.catalog.compact()?;
        self.last_compaction = Some(report.clone());
        Ok(report)
    }

    /// Drops a column: writes a deletion tombstone into the catalog manifest (see
    /// [`Catalog::drop_column`]) and evicts the column from the in-memory index, so
    /// it disappears from rankings immediately.  The blob bytes are reclaimed by the
    /// next [`compact`](Self::compact).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::NotFound`] for unknown keys,
    /// [`CatalogError::Incompatible`] for read-only (format-v1) catalogs, and
    /// [`CatalogError::Io`] for filesystem failures; on error neither the catalog
    /// nor the index changes.
    pub fn drop_column(&mut self, table: &str, column: &str) -> Result<(), CatalogError> {
        self.catalog.drop_column(table, column)?;
        if self
            .hydrated
            .remove(&(table.to_string(), column.to_string()))
        {
            // The catalog committed the tombstone and the index held the column, so
            // this remove cannot miss.
            self.index
                .remove(table, column)
                .map_err(CatalogError::Join)?;
        }
        Ok(())
    }

    /// A typed snapshot of the service: configuration, column/hydration counts,
    /// on-disk footprint, and the last compaction's report.  Every info surface
    /// (CLI, TCP `info`, `GET /v1/info`) renders from this one struct.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let spec = self.catalog.spec();
        ServiceStats {
            sketcher: spec.to_string(),
            fingerprint: format!("{:016x}", spec.fingerprint()),
            method: spec.method().label().to_string(),
            format: self.catalog.format().label().to_string(),
            columns: self.catalog.len(),
            hydrated: self.hydrated.len(),
            bytes_on_disk: self
                .catalog
                .live_entries()
                .map(|e| e.blob_len + e.companion.as_ref().map_or(0, |c| c.blob_len))
                .sum(),
            last_compaction: self.last_compaction.clone(),
        }
    }

    /// The estimator rebuilt from the catalog's recorded spec (borrowed from the
    /// index, which owns the single copy).
    #[must_use]
    pub fn estimator(&self) -> &JoinEstimator {
        self.index.estimator()
    }

    /// The cheap-tier companion estimator, when the catalog declares a companion
    /// spec; `None` means this catalog has no cascade tier.
    #[must_use]
    pub fn companion_estimator(&self) -> Option<&JoinEstimator> {
        self.index.companion_estimator()
    }

    /// Number of columns already hydrated into the in-memory index.
    #[must_use]
    pub fn hydrated_len(&self) -> usize {
        self.hydrated.len()
    }

    /// Loads every catalog column not yet in the in-memory index.  Called implicitly
    /// by the query methods; exposed for warm-up.  Returns the number of columns
    /// hydrated by this call.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] if a stored blob is corrupt or incompatible — the
    /// load-time gate that keeps bad sketches out of estimates.
    pub fn ensure_hydrated(&mut self) -> Result<usize, CatalogError> {
        // Hot path: everything registered is already in the index; queries pay
        // nothing beyond this length comparison (keys are inserted in lock-step with
        // catalog registration, so the counts only diverge when columns were added
        // behind our back — i.e. loaded from disk on open).
        if self.hydrated.len() == self.catalog.len() {
            return Ok(0);
        }
        let missing: Vec<_> = self
            .catalog
            .live_entries()
            .filter(|e| !self.hydrated.contains(&(e.table.clone(), e.column.clone())))
            .cloned()
            .collect();
        for entry in &missing {
            let column = self.catalog.load_entry(entry)?;
            let companion = self.catalog.load_companion_entry(entry)?;
            self.index
                .insert_sketched_with_companion(column, companion)?;
            self.hydrated
                .insert((entry.table.clone(), entry.column.clone()));
        }
        Ok(missing.len())
    }

    /// Sketches, registers and hydrates every column of `table` in one shot.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for sketching failures, duplicate columns, or
    /// filesystem failures.
    pub fn ingest_table(&mut self, table: &Table) -> Result<IngestReport, CatalogError> {
        self.ingest_with(table, |est, table, column| est.sketch_column(table, column))
    }

    /// Like [`ingest_table`](Self::ingest_table) but sketches each column as
    /// `partitions` row-chunks merged through the mergeable-sketcher path — the
    /// single-process rehearsal of distributed ingest.
    ///
    /// # Errors
    ///
    /// As for [`ingest_table`](Self::ingest_table), plus non-mergeable methods
    /// (SimHash).
    pub fn ingest_table_partitioned(
        &mut self,
        table: &Table,
        partitions: usize,
    ) -> Result<IngestReport, CatalogError> {
        self.ingest_with(table, |est, table, column| {
            est.sketch_column_partitioned(table, column, partitions)
        })
    }

    fn ingest_with(
        &mut self,
        table: &Table,
        sketch: impl Fn(&JoinEstimator, &Table, &str) -> Result<SketchedColumn, JoinError>,
    ) -> Result<IngestReport, CatalogError> {
        let mut report = IngestReport::default();
        let mut sketched_columns = Vec::new();
        let mut companions = Vec::new();
        for column in table.columns() {
            match sketch(self.index.estimator(), table, &column.name) {
                Ok(sketched) => {
                    // The companion rides through the same sketching path (one-shot
                    // or partitioned) as the primary; a column sketchable by the
                    // primary is sketchable by the companion (same value mass).
                    let companion = match self.index.companion_estimator() {
                        Some(est) => Some(sketch(est, table, &column.name)?),
                        None => None,
                    };
                    report
                        .registered
                        .push((table.name().to_string(), column.name.clone()));
                    sketched_columns.push(sketched);
                    companions.push(companion);
                }
                Err(JoinError::EmptyColumn { .. }) => report.skipped.push(column.name.clone()),
                Err(other) => return Err(other.into()),
            }
        }
        self.register_all_hydrated_with(sketched_columns, companions)?;
        Ok(report)
    }

    /// Registers already-sketched columns into the catalog (one manifest commit) and
    /// the in-memory index, returning what was registered.  This is the
    /// write-lock-minimizing path a concurrent front end takes: the expensive
    /// sketching runs outside any service lock (with a clone of
    /// [`estimator`](Self::estimator) — the configuration is immutable for the
    /// catalog's lifetime), and only this commit needs exclusive access.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Incompatible`] for sketches not built under this
    /// catalog's configuration, plus duplicate-column and filesystem failures; on
    /// error nothing from the batch is committed.
    pub fn register_sketched(
        &mut self,
        sketched: Vec<SketchedColumn>,
    ) -> Result<IngestReport, CatalogError> {
        let companions = vec![None; sketched.len()];
        self.register_sketched_with_companions(sketched, companions)
    }

    /// [`register_sketched`](Self::register_sketched) with one optional companion
    /// (cheap-tier) sketch per column, built by the caller with a clone of
    /// [`companion_estimator`](Self::companion_estimator) — the same
    /// outside-the-lock division of labor as the primaries.  A `None` slot
    /// registers the column companion-less; the cascade then reranks it
    /// unconditionally instead of prefiltering it.
    ///
    /// # Errors
    ///
    /// As for [`register_sketched`](Self::register_sketched), plus
    /// [`CatalogError::Incompatible`] for companions not built under the
    /// catalog's companion spec (or supplied to a catalog that declares none).
    pub fn register_sketched_with_companions(
        &mut self,
        sketched: Vec<SketchedColumn>,
        companions: Vec<Option<SketchedColumn>>,
    ) -> Result<IngestReport, CatalogError> {
        let report = IngestReport {
            registered: sketched
                .iter()
                .map(|c| (c.table.clone(), c.column.clone()))
                .collect(),
            skipped: Vec::new(),
        };
        self.register_all_hydrated_with(sketched, companions)?;
        Ok(report)
    }

    /// Registers a sketch blob exported by a peer catalog (`export-column` on the
    /// wire): decodes and validates it, checks it names the expected key, and
    /// registers it like any other sketched column.  Returns `false` — without
    /// touching anything — when the key is already registered, so replaying an
    /// import is a harmless no-op (rebalance retries rely on this).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Corrupt`] for undecodable bytes,
    /// [`CatalogError::Incompatible`] when the blob names a different column than
    /// the request or was sketched under a different configuration, plus
    /// filesystem failures.
    pub fn import_sketched_blob(
        &mut self,
        table: &str,
        column: &str,
        blob: &[u8],
    ) -> Result<bool, CatalogError> {
        let (sketched, _format) =
            SketchedColumn::from_bytes_versioned(blob).map_err(|e| match e {
                JoinError::Sketch(s) => CatalogError::Corrupt {
                    detail: format!("imported blob: {s}"),
                },
                other => CatalogError::Join(other),
            })?;
        if sketched.table != table || sketched.column != column {
            return Err(CatalogError::Incompatible {
                detail: format!(
                    "imported blob names column `{}.{}` but the request says `{table}.{column}`",
                    sketched.table, sketched.column
                ),
            });
        }
        match self.register_all_hydrated(vec![sketched]) {
            Ok(()) => Ok(true),
            Err(CatalogError::DuplicateColumn { .. }) => Ok(false),
            Err(other) => Err(other),
        }
    }

    /// Registers a batch of finished columns into the catalog (one manifest commit)
    /// and the in-memory index.
    fn register_all_hydrated(&mut self, sketched: Vec<SketchedColumn>) -> Result<(), CatalogError> {
        let companions = vec![None; sketched.len()];
        self.register_all_hydrated_with(sketched, companions)
    }

    /// [`register_all_hydrated`](Self::register_all_hydrated) carrying one optional
    /// companion sketch per column into both the catalog and the index.
    fn register_all_hydrated_with(
        &mut self,
        sketched: Vec<SketchedColumn>,
        companions: Vec<Option<SketchedColumn>>,
    ) -> Result<(), CatalogError> {
        self.catalog
            .register_all_with_companions(&sketched, &companions)?;
        for (column, companion) in sketched.into_iter().zip(companions) {
            let key = (column.table.clone(), column.column.clone());
            self.index
                .insert_sketched_with_companion(column, companion)?;
            self.hydrated.insert(key);
        }
        Ok(())
    }

    /// Starts a shard-partial ingest of a table named `table_name` — the genuinely
    /// distributed registration path.  See [`ShardedIngestState`] for the two-pass
    /// protocol.
    ///
    /// The returned state is owned and borrows nothing: sequential callers (the
    /// CLI, tests) and a concurrent front end running many sessions at once drive
    /// the *same* API shape — [`announce`](ShardedIngestState::announce) and
    /// [`submit`](ShardedIngestState::submit) shards (passing
    /// [`estimator`](Self::estimator) or a clone of it), then register the outcome
    /// with [`finish_sharded_ingest`](Self::finish_sharded_ingest).
    #[must_use]
    pub fn begin_sharded_ingest(&self, table_name: impl Into<String>) -> ShardedIngestState {
        ShardedIngestState::new(table_name)
            .with_companion(self.index.companion_estimator().cloned())
    }

    /// Registers the folded columns of a completed [`ShardedIngestState`] into the
    /// catalog and index — the terminal step of a concurrent shard-partial session.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for duplicate columns or filesystem failures, and
    /// [`CatalogError::Incompatible`] if no shard was ever successfully submitted or
    /// the session's partials were sketched under a different configuration than
    /// this service's.
    pub fn finish_sharded_ingest(
        &mut self,
        state: ShardedIngestState,
    ) -> Result<IngestReport, CatalogError> {
        let (table_name, columns, partials, companion_partials) = state.into_folded()?;
        let mut report = IngestReport::default();
        let mut folded_columns = Vec::new();
        let mut folded_companions = Vec::new();
        for ((column, partial), companion) in
            columns.into_iter().zip(partials).zip(companion_partials)
        {
            match partial {
                Some(folded) => {
                    report.registered.push((table_name.clone(), column));
                    folded_columns.push(folded);
                    folded_companions.push(companion);
                }
                None => report.skipped.push(column),
            }
        }
        // One catalog commit for the whole table, moving (not cloning) the folds.
        self.register_all_hydrated_with(folded_columns, folded_companions)?;
        Ok(report)
    }

    /// Sketches a query column with the catalog's configuration (queries are sketched
    /// fresh, not registered).
    ///
    /// # Errors
    ///
    /// Returns [`JoinError`] if the column is missing or unsketchable.
    pub fn sketch_query(&self, table: &Table, column: &str) -> Result<SketchedColumn, JoinError> {
        self.index.estimator().sketch_column(table, column)
    }

    /// Sketches a query column with the companion (cheap-tier) configuration.
    /// `Ok(None)` means the catalog declares no cascade tier — pass it through to
    /// [`query_joinable_cascade`](Self::query_joinable_cascade), which then answers
    /// by the flat scan with a typed note.
    ///
    /// # Errors
    ///
    /// Returns [`JoinError`] if the column is missing or unsketchable.
    pub fn sketch_query_companion(
        &self,
        table: &Table,
        column: &str,
    ) -> Result<Option<SketchedColumn>, JoinError> {
        self.index.sketch_companion_query(table, column)
    }

    /// Ranks all served columns by estimated join size with the query and returns the
    /// top `k`.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for hydration failures or incompatible query sketches.
    pub fn query_joinable(
        &mut self,
        query: &SketchedColumn,
        k: usize,
    ) -> Result<Vec<RankedColumn>, CatalogError> {
        self.ensure_hydrated()?;
        Ok(self.index.top_k_joinable(query, k)?)
    }

    /// [`query_joinable`](Self::query_joinable) through the two-tier cascade: the
    /// cheap companion sketches score every candidate, the Table 1 error bounds
    /// (scaled by `confidence`, see
    /// [`DEFAULT_CASCADE_CONFIDENCE`](ipsketch_join::DEFAULT_CASCADE_CONFIDENCE))
    /// prune candidates that provably cannot reach the top `k`, and the primary
    /// sketches rerank the survivors under the same deterministic
    /// `(score, table, column)` total order — so at the default margin the answer
    /// is byte-identical to the flat scan's.
    ///
    /// When the catalog stores no companion sketches (`companion_query` is `None`
    /// because [`sketch_query_companion`](Self::sketch_query_companion) found no
    /// tier — e.g. a catalog migrated from v1 under a non-derivable method), the
    /// query is answered by the flat scan and the returned [`CascadeNote`] says so;
    /// this is never an error.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for hydration failures or incompatible query
    /// sketches.
    pub fn query_joinable_cascade(
        &mut self,
        query: &SketchedColumn,
        companion_query: Option<&SketchedColumn>,
        k: usize,
        confidence: f64,
    ) -> Result<(Vec<RankedColumn>, Option<CascadeNote>), CatalogError> {
        self.ensure_hydrated()?;
        match companion_query {
            Some(cq) if self.index.companion_estimator().is_some() => {
                let (ranking, _stats) = self
                    .index
                    .top_k_joinable_cascade(query, cq, k, confidence)?;
                Ok((ranking, None))
            }
            _ => Ok((
                self.index.top_k_joinable(query, k)?,
                Some(CascadeNote::fallback()),
            )),
        }
    }

    /// Answers a batch of cascade queries (see
    /// [`query_joinable_cascade`](Self::query_joinable_cascade)); result `i` ranks
    /// query `i`, ranked in parallel on the work-claiming runner.  The whole batch
    /// shares one fallback note: either the catalog has a companion tier and every
    /// query cascades, or it has none and every query falls back.
    ///
    /// # Errors
    ///
    /// Returns the first failure — batches are all-or-nothing.
    pub fn query_joinable_cascade_batch(
        &mut self,
        queries: &[(SketchedColumn, Option<SketchedColumn>)],
        k: usize,
        confidence: f64,
    ) -> Result<(Vec<Vec<RankedColumn>>, Option<CascadeNote>), CatalogError> {
        self.ensure_hydrated()?;
        if self.index.companion_estimator().is_some()
            && queries.iter().all(|(_, companion)| companion.is_some())
        {
            let pairs: Vec<(SketchedColumn, SketchedColumn)> = queries
                .iter()
                .map(|(query, companion)| {
                    (
                        query.clone(),
                        companion.clone().expect("all companions checked above"),
                    )
                })
                .collect();
            Ok((
                self.index
                    .top_k_joinable_cascade_batch(&pairs, k, confidence)?,
                None,
            ))
        } else {
            let flat: Vec<SketchedColumn> =
                queries.iter().map(|(query, _)| query.clone()).collect();
            Ok((
                self.index.top_k_joinable_batch(&flat, k)?,
                Some(CascadeNote::fallback()),
            ))
        }
    }

    /// Ranks all served columns by |estimated post-join correlation| and returns the
    /// top `k`, excluding candidates whose estimated join size is below
    /// `min_join_size`.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError`] for hydration failures or incompatible query sketches.
    pub fn query_related(
        &mut self,
        query: &SketchedColumn,
        k: usize,
        min_join_size: f64,
    ) -> Result<Vec<RankedColumn>, CatalogError> {
        self.ensure_hydrated()?;
        Ok(self.index.top_k_correlated(query, k, min_join_size)?)
    }

    /// Answers a batch of joinability queries; result `i` ranks query `i`.  The batch
    /// is ranked in parallel on the work-claiming runner (see
    /// [`SketchIndex::top_k_joinable_batch`]), so batched serving scales across cores
    /// while results stay in input order.
    ///
    /// # Errors
    ///
    /// Returns the first failure — batches are all-or-nothing.
    pub fn query_joinable_batch(
        &mut self,
        queries: &[SketchedColumn],
        k: usize,
    ) -> Result<Vec<Vec<RankedColumn>>, CatalogError> {
        self.ensure_hydrated()?;
        Ok(self.index.top_k_joinable_batch(queries, k)?)
    }

    /// Answers a batch of relatedness queries; result `i` ranks query `i`, ranked in
    /// parallel like [`query_joinable_batch`](Self::query_joinable_batch).
    ///
    /// # Errors
    ///
    /// Returns the first failure — batches are all-or-nothing.
    pub fn query_related_batch(
        &mut self,
        queries: &[SketchedColumn],
        k: usize,
        min_join_size: f64,
    ) -> Result<Vec<Vec<RankedColumn>>, CatalogError> {
        self.ensure_hydrated()?;
        Ok(self
            .index
            .top_k_correlated_batch(queries, k, min_join_size)?)
    }
}

/// The coordinator state of one two-pass shard-partial ingest session, owned and
/// self-contained: it borrows nothing, so a concurrent front end can run one state
/// per table in flight (the session map), feeding each from whichever connection the
/// shard arrives on, while queries keep reading the service.
///
/// Shards hold disjoint row ranges of one logical table.  The protocol mirrors what a
/// distributed deployment does:
///
/// 1. **Announce (first pass).**  Every shard reports its `Σv²` partial sums per
///    column via [`announce`](Self::announce) — a cheap local reduction.  The
///    coordinator folds them so all shards agree on each column's full-vector norm,
///    which the normalized samplers (WMH, ICWS) must know *before* sketching
///    (Algorithm 3 normalizes by the whole vector's norm).
/// 2. **Submit (second pass).**  Every shard sketches its rows against the announced
///    norms via [`submit`](Self::submit); the coordinator folds the partial sketches
///    with `MergeableSketcher::merge` semantics as they arrive.
/// 3. **[`QueryService::finish_sharded_ingest`]** registers the folded columns into
///    the catalog and index and reports what was registered or skipped.
///
/// The first `submit` seals the announcement; announcing afterwards is an error, as it
/// would change norms that sketches were already built against.
#[derive(Debug)]
pub struct ShardedIngestState {
    table_name: String,
    columns: Vec<String>,
    norms: Vec<ColumnNormPartials>,
    partials: Vec<Option<SketchedColumn>>,
    /// When set, every submitted shard is additionally sketched with this
    /// cheap-tier estimator (against the same announced norms) and folded, so the
    /// finished table carries cascade companions.
    companion_estimator: Option<JoinEstimator>,
    companion_partials: Vec<Option<SketchedColumn>>,
    /// Set on the first `submit` *attempt* (even a failed one): norms may already
    /// have been used to sketch, so further announcements are refused.
    sealed: bool,
    /// Set only by a fully successful `submit`: the gate `finish` requires.
    submitted: bool,
}

impl ShardedIngestState {
    /// Opens a session for the logical table `table_name`.
    #[must_use]
    pub fn new(table_name: impl Into<String>) -> Self {
        ShardedIngestState {
            table_name: table_name.into(),
            columns: Vec::new(),
            norms: Vec::new(),
            partials: Vec::new(),
            companion_estimator: None,
            companion_partials: Vec::new(),
            sealed: false,
            submitted: false,
        }
    }

    /// Attaches the catalog's companion (cheap-tier) estimator, so submitted shards
    /// also fold companion sketches ([`QueryService::begin_sharded_ingest`] does
    /// this automatically; front ends constructing sessions directly pass a clone
    /// of [`QueryService::companion_estimator`]).  Must be called before the first
    /// [`submit`](Self::submit); `None` leaves the session companion-less.
    #[must_use]
    pub fn with_companion(mut self, estimator: Option<JoinEstimator>) -> Self {
        self.companion_estimator = estimator;
        self
    }

    /// The logical table this session ingests.
    #[must_use]
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// First pass: folds `shard`'s per-column `Σv²` partial sums into the announced
    /// norms.  All shards must present the same column set, in the same order, under
    /// the session's table name.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Incompatible`] for a shard of a different table or
    /// column layout, or if called after the first [`submit`](Self::submit).
    pub fn announce(&mut self, shard: &Table) -> Result<(), CatalogError> {
        if self.sealed {
            return Err(CatalogError::Incompatible {
                detail: "norms are sealed once the first shard sketch is submitted".to_string(),
            });
        }
        self.check_shape(shard)?;
        if self.columns.is_empty() {
            self.columns = shard.columns().iter().map(|c| c.name.clone()).collect();
            self.norms = vec![ColumnNormPartials::default(); self.columns.len()];
            self.partials = vec![None; self.columns.len()];
            self.companion_partials = vec![None; self.columns.len()];
        }
        for (i, column) in self.columns.iter().enumerate() {
            let partial = JoinEstimator::column_norm_partials(shard, column)?;
            self.norms[i].add(&partial);
        }
        Ok(())
    }

    /// Second pass: sketches `shard` with `estimator` against the announced norms and
    /// folds the partial sketches into the session state.  Columns whose announced
    /// value mass is zero are skipped here and reported at finish.
    ///
    /// Every call must pass the estimator of the service the session will finish
    /// into (the front end clones it once at startup — the configuration is fixed
    /// for the catalog's lifetime).
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::Incompatible`] for a shard of a different table or
    /// column layout or a session with no announcements, and sketching errors
    /// (including non-mergeable methods).
    pub fn submit(&mut self, estimator: &JoinEstimator, shard: &Table) -> Result<(), CatalogError> {
        if self.columns.is_empty() {
            return Err(CatalogError::Incompatible {
                detail: "no norms announced: every shard must announce before any submits"
                    .to_string(),
            });
        }
        self.check_shape(shard)?;
        // Any submit attempt — even one that fails below — seals the norms: sketches
        // may already have been built against them on other shards.
        self.sealed = true;
        for (i, column) in self.columns.iter().enumerate() {
            if self.norms[i].values_sq <= 0.0 {
                continue; // Skipped column; reported at finish.
            }
            let sketched = estimator.sketch_column_shard(shard, column, &self.norms[i])?;
            self.partials[i] = Some(match self.partials[i].take() {
                None => sketched,
                Some(acc) => estimator.merge_sketched_columns(&acc, &sketched)?,
            });
            if let Some(companion_est) = &self.companion_estimator {
                let companion = companion_est.sketch_column_shard(shard, column, &self.norms[i])?;
                self.companion_partials[i] = Some(match self.companion_partials[i].take() {
                    None => companion,
                    Some(acc) => companion_est.merge_sketched_columns(&acc, &companion)?,
                });
            }
        }
        // Only a fully successful submit counts toward finish's "at least one shard
        // was submitted" requirement.
        self.submitted = true;
        Ok(())
    }

    /// Consumes the session, yielding the table name, column names, and folded
    /// partials (`None` for all-zero skipped columns).
    fn into_folded(self) -> Result<FoldedIngest, CatalogError> {
        if !self.submitted {
            return Err(CatalogError::Incompatible {
                detail: "sharded ingest finished before any shard was successfully submitted"
                    .to_string(),
            });
        }
        Ok((
            self.table_name,
            self.columns,
            self.partials,
            self.companion_partials,
        ))
    }

    /// Validates that a shard belongs to this session: same table name and, once the
    /// column layout is fixed, the same columns in the same order.
    fn check_shape(&self, shard: &Table) -> Result<(), CatalogError> {
        if shard.name() != self.table_name {
            return Err(CatalogError::Incompatible {
                detail: format!(
                    "shard names table `{}`, session ingests `{}`",
                    shard.name(),
                    self.table_name
                ),
            });
        }
        if !self.columns.is_empty() {
            let names: Vec<&str> = shard.columns().iter().map(|c| c.name.as_str()).collect();
            if names != self.columns.iter().map(String::as_str).collect::<Vec<_>>() {
                return Err(CatalogError::Incompatible {
                    detail: format!(
                        "shard columns {names:?} do not match the session's {:?}",
                        self.columns
                    ),
                });
            }
        }
        Ok(())
    }
}

/// What a completed session hands to registration: the table name, its column
/// names, one folded partial per column (`None` for skipped all-zero columns), and
/// one folded companion per column (`None` when the session has no companion
/// estimator or the column was skipped).
type FoldedIngest = (
    String,
    Vec<String>,
    Vec<Option<SketchedColumn>>,
    Vec<Option<SketchedColumn>>,
);

#[cfg(test)]
mod tests {
    use super::*;
    use ipsketch_core::method::{AnySketcher, SketchMethod};
    use ipsketch_data::Column;
    use std::fs;
    use std::path::PathBuf;

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ipsketch-service-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec_for(method: SketchMethod, seed: u64) -> SketcherSpec {
        AnySketcher::for_budget(method, 256.0, seed)
            .expect("budget fits")
            .spec()
    }

    /// A lake where "query.rides" joins heavily with "good.precip" and not with "bad".
    fn lake() -> (Table, Table, Table) {
        let query = Table::new(
            "query",
            (0..400).collect(),
            vec![Column::new(
                "rides",
                (0..400).map(|i| f64::from(i) + 1.0).collect(),
            )],
        )
        .expect("table");
        let good = Table::new(
            "good",
            (100..500).collect(),
            vec![
                Column::new(
                    "precip",
                    (100..500).map(|i| 2.0 * f64::from(i) + 3.0).collect(),
                ),
                Column::new(
                    "noise",
                    (0..400).map(|i| f64::from((i * 37) % 11) - 5.0).collect(),
                ),
            ],
        )
        .expect("table");
        let bad = Table::new(
            "bad",
            (10_000..10_400).collect(),
            vec![Column::new(
                "other",
                (0..400).map(|i| f64::from(i % 7) + 1.0).collect(),
            )],
        )
        .expect("table");
        (query, good, bad)
    }

    /// Splits a table into `n` contiguous row-range shards carrying the same name and
    /// column layout.
    fn shards_of(table: &Table, n: usize) -> Vec<Table> {
        shard_rows(table, n)
    }

    #[test]
    fn ingest_query_reopen_matches_in_memory_index() {
        let root = temp_root("e2e");
        let (query, good, bad) = lake();
        let spec = spec_for(SketchMethod::WeightedMinHash, 11);
        let mut service = QueryService::create(&root, spec).expect("create");
        service.ingest_table(&good).expect("ingest good");
        service.ingest_table(&bad).expect("ingest bad");

        let q = service.sketch_query(&query, "rides").expect("query sketch");
        let ranked = service.query_joinable(&q, 3).expect("query");
        assert_eq!(ranked[0].id.table, "good");

        // An in-memory index built with the same spec ranks identically, with
        // identical estimates — the acceptance criterion for the serving layer.
        let est = JoinEstimator::new(spec.build().expect("build"));
        let mut mem = SketchIndex::new(est.clone());
        mem.insert_table(&good).expect("mem good");
        mem.insert_table(&bad).expect("mem bad");
        let mem_ranked = mem
            .top_k_joinable(&mem.sketch_query(&query, "rides").expect("mem query"), 3)
            .expect("mem rank");
        assert_eq!(ranked.len(), mem_ranked.len());
        for (served, in_mem) in ranked.iter().zip(&mem_ranked) {
            assert_eq!(served.id, in_mem.id);
            assert_eq!(served.estimated_join_size, in_mem.estimated_join_size);
            assert_eq!(served.estimated_correlation, in_mem.estimated_correlation);
        }

        // Reopening the catalog cold reproduces the same answers (lazy hydration).
        let mut reopened = QueryService::open(&root).expect("open");
        assert_eq!(reopened.hydrated_len(), 0);
        let q2 = reopened.sketch_query(&query, "rides").expect("sketch");
        let ranked2 = reopened.query_joinable(&q2, 3).expect("query");
        assert_eq!(reopened.hydrated_len(), 3);
        assert_eq!(ranked, ranked2);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn batched_queries_match_single_queries() {
        let root = temp_root("batch");
        let (query, good, bad) = lake();
        let mut service =
            QueryService::create(&root, spec_for(SketchMethod::Kmv, 5)).expect("create");
        service.ingest_table(&good).expect("good");
        service.ingest_table(&bad).expect("bad");
        let q1 = service.sketch_query(&query, "rides").expect("q1");
        let q2 = service.sketch_query(&good, "precip").expect("q2");
        let batch = service
            .query_joinable_batch(&[q1.clone(), q2.clone()], 5)
            .expect("batch");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], service.query_joinable(&q1, 5).expect("single 1"));
        assert_eq!(batch[1], service.query_joinable(&q2, 5).expect("single 2"));
        let related = service
            .query_related_batch(std::slice::from_ref(&q1), 2, 10.0)
            .expect("related batch");
        assert_eq!(
            related[0],
            service.query_related(&q1, 2, 10.0).expect("related single")
        );
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn sharded_ingest_matches_one_shot_for_every_mergeable_method() {
        for (tag, method) in [
            ("jl", SketchMethod::Jl),
            ("cs", SketchMethod::CountSketch),
            ("mh", SketchMethod::MinHash),
            ("kmv", SketchMethod::Kmv),
            ("wmh", SketchMethod::WeightedMinHash),
            ("icws", SketchMethod::Icws),
        ] {
            let root = temp_root(&format!("shard-{tag}"));
            let (query, good, bad) = lake();
            let spec = spec_for(method, 17);
            let mut service = QueryService::create(&root, spec).expect("create");
            for table in [&good, &bad] {
                let mut ingest = service.begin_sharded_ingest(table.name());
                let shards = shards_of(table, 3);
                for shard in &shards {
                    ingest.announce(shard).expect("announce");
                }
                for shard in &shards {
                    ingest.submit(service.estimator(), shard).expect("submit");
                }
                let report = service.finish_sharded_ingest(ingest).expect("finish");
                assert_eq!(report.registered.len(), table.columns().len(), "{method:?}");
            }
            let q = service.sketch_query(&query, "rides").expect("sketch");
            let ranked = service.query_joinable(&q, 3).expect("query");

            // One-shot in-memory baseline with identical configuration.
            let est = JoinEstimator::new(spec.build().expect("build"));
            let mut mem = SketchIndex::new(est.clone());
            mem.insert_table(&good).expect("good");
            mem.insert_table(&bad).expect("bad");
            let mem_ranked = mem
                .top_k_joinable(&mem.sketch_query(&query, "rides").expect("q"), 3)
                .expect("rank");
            assert_eq!(
                ranked.iter().map(|r| r.id.clone()).collect::<Vec<_>>(),
                mem_ranked.iter().map(|r| r.id.clone()).collect::<Vec<_>>(),
                "{method:?}: shard-partial ranking must match one-shot"
            );
            for (a, b) in ranked.iter().zip(&mem_ranked) {
                // Sampling methods merge bit-exactly; the linear maps agree up to
                // float addition order; WMH up to its grid rounding.
                let tolerance = match method {
                    SketchMethod::WeightedMinHash => {
                        0.1 * a.estimated_join_size.max(b.estimated_join_size).max(50.0)
                    }
                    _ => 1e-6 * (1.0 + b.estimated_join_size.abs()),
                };
                assert!(
                    (a.estimated_join_size - b.estimated_join_size).abs() <= tolerance,
                    "{method:?}: {} vs {}",
                    a.estimated_join_size,
                    b.estimated_join_size
                );
            }
            fs::remove_dir_all(&root).expect("cleanup");
        }
    }

    #[test]
    fn owned_session_states_interleave_across_tables() {
        // The front-end shape: two sessions live at once, fed in interleaved order,
        // sketching with a *clone* of the service estimator and finished
        // independently — answers match a sequential run exactly.
        let root = temp_root("interleaved");
        let (query, good, bad) = lake();
        let spec = spec_for(SketchMethod::WeightedMinHash, 17);
        let mut service = QueryService::create(&root, spec).expect("create");
        let estimator = service.estimator().clone();

        let mut good_session = ShardedIngestState::new(good.name());
        let mut bad_session = ShardedIngestState::new(bad.name());
        let good_shards = shards_of(&good, 2);
        let bad_shards = shards_of(&bad, 3);
        for shard in &good_shards {
            good_session.announce(shard).expect("announce good");
        }
        for shard in &bad_shards {
            bad_session.announce(shard).expect("announce bad");
        }
        // Interleave the submit passes across the two sessions.
        good_session
            .submit(&estimator, &good_shards[0])
            .expect("good 0");
        for shard in &bad_shards {
            bad_session.submit(&estimator, shard).expect("bad shard");
        }
        good_session
            .submit(&estimator, &good_shards[1])
            .expect("good 1");
        let bad_report = service.finish_sharded_ingest(bad_session).expect("finish");
        let good_report = service.finish_sharded_ingest(good_session).expect("finish");
        assert_eq!(bad_report.registered.len(), 1);
        assert_eq!(good_report.registered.len(), 2);

        // Identical outcome to a sequential one-session-at-a-time run over a twin
        // catalog, driven through the same owned-state API.
        let root2 = temp_root("interleaved-seq");
        let mut sequential = QueryService::create(&root2, spec).expect("create");
        for table in [&good, &bad] {
            let mut ingest = sequential.begin_sharded_ingest(table.name());
            for shard in &shards_of(table, if table.name() == "good" { 2 } else { 3 }) {
                ingest.announce(shard).expect("announce");
            }
            for shard in &shards_of(table, if table.name() == "good" { 2 } else { 3 }) {
                ingest
                    .submit(sequential.estimator(), shard)
                    .expect("submit");
            }
            sequential.finish_sharded_ingest(ingest).expect("finish");
        }
        let q = service.sketch_query(&query, "rides").expect("sketch");
        let q2 = sequential.sketch_query(&query, "rides").expect("sketch");
        assert_eq!(
            service.query_joinable(&q, 3).expect("query"),
            sequential.query_joinable(&q2, 3).expect("query"),
            "interleaved owned sessions must be indistinguishable from sequential"
        );
        fs::remove_dir_all(&root).expect("cleanup");
        fs::remove_dir_all(&root2).expect("cleanup");
    }

    #[test]
    fn sharded_ingest_protocol_violations_are_typed_errors() {
        let root = temp_root("protocol");
        let (_, good, _) = lake();
        let mut service = QueryService::create(&root, spec_for(SketchMethod::WeightedMinHash, 3))
            .expect("create");
        let shards = shards_of(&good, 2);

        // Submitting before announcing fails.
        let mut ingest = service.begin_sharded_ingest("good");
        assert!(matches!(
            ingest.submit(service.estimator(), &shards[0]),
            Err(CatalogError::Incompatible { .. })
        ));
        // A shard of a different table fails.
        assert!(matches!(
            ingest.announce(&lake().2),
            Err(CatalogError::Incompatible { .. })
        ));
        ingest.announce(&shards[0]).expect("announce 0");
        ingest.announce(&shards[1]).expect("announce 1");
        ingest
            .submit(service.estimator(), &shards[0])
            .expect("submit 0");
        // Announcing after the first submit fails (norms are sealed).
        assert!(matches!(
            ingest.announce(&shards[1]),
            Err(CatalogError::Incompatible { .. })
        ));
        ingest
            .submit(service.estimator(), &shards[1])
            .expect("submit 1");
        service.finish_sharded_ingest(ingest).expect("finish");

        // Finishing a session that never submitted fails.
        let ingest = service.begin_sharded_ingest("empty");
        assert!(matches!(
            service.finish_sharded_ingest(ingest),
            Err(CatalogError::Incompatible { .. })
        ));
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn all_zero_columns_are_skipped_in_both_ingest_paths() {
        let root = temp_root("zeros");
        let zero = Table::new(
            "zeros",
            (0..50).collect(),
            vec![
                Column::new("z", vec![0.0; 50]),
                Column::new("ok", (0..50).map(|i| f64::from(i) + 1.0).collect()),
            ],
        )
        .expect("table");
        let mut service = QueryService::create(&root, spec_for(SketchMethod::WeightedMinHash, 7))
            .expect("create");
        let report = service.ingest_table(&zero).expect("one-shot ingest");
        assert_eq!(report.skipped, vec!["z".to_string()]);
        assert_eq!(report.registered.len(), 1);

        // The same column through the sharded path is also skipped, after the norm
        // exchange reveals zero value mass.
        let root2 = temp_root("zeros2");
        let mut service2 = QueryService::create(&root2, spec_for(SketchMethod::WeightedMinHash, 7))
            .expect("create");
        let mut ingest = service2.begin_sharded_ingest("zeros");
        let shards = shards_of(&zero, 2);
        for shard in &shards {
            ingest.announce(shard).expect("announce");
        }
        for shard in &shards {
            ingest.submit(service2.estimator(), shard).expect("submit");
        }
        let report = service2.finish_sharded_ingest(ingest).expect("finish");
        assert_eq!(report.skipped, vec!["z".to_string()]);
        assert_eq!(report.registered.len(), 1);
        fs::remove_dir_all(&root).expect("cleanup");
        fs::remove_dir_all(&root2).expect("cleanup");
    }

    #[test]
    fn stats_track_ingest_hydration_and_compaction() {
        let root = temp_root("stats");
        let (query, good, _) = lake();
        let spec = spec_for(SketchMethod::WeightedMinHash, 11);
        let mut service = QueryService::create(&root, spec).expect("create");
        let empty = service.stats();
        assert_eq!(
            (empty.columns, empty.hydrated, empty.bytes_on_disk),
            (0, 0, 0)
        );
        assert_eq!(empty.fingerprint.len(), 16);
        assert_eq!(empty.sketcher, spec.to_string());
        assert_eq!(empty.format, "v2", "fresh catalogs are the current format");
        assert!(empty.last_compaction.is_none());

        service.ingest_table(&good).expect("ingest");
        let after_ingest = service.stats();
        assert_eq!(after_ingest.columns, 2);
        assert_eq!(after_ingest.hydrated, 2, "direct ingest hydrates");
        assert!(after_ingest.bytes_on_disk > 0);

        let report = service.compact().expect("compact");
        assert_eq!(service.stats().last_compaction, Some(report));

        // A cold reopen reports zero hydrated until the first query.
        drop(service);
        let mut reopened = QueryService::open(&root).expect("open");
        assert_eq!(reopened.stats().hydrated, 0);
        assert!(reopened.stats().last_compaction.is_none());
        let q = reopened.sketch_query(&query, "rides").expect("sketch");
        reopened.query_joinable(&q, 1).expect("query");
        assert_eq!(reopened.stats().hydrated, 2);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn drop_column_hides_immediately_and_compact_reclaims() {
        let root = temp_root("drop");
        let (query, good, bad) = lake();
        let mut service =
            QueryService::create(&root, spec_for(SketchMethod::Kmv, 9)).expect("create");
        service.ingest_table(&good).expect("good");
        service.ingest_table(&bad).expect("bad");
        let q = service.sketch_query(&query, "rides").expect("sketch");
        assert!(service
            .query_joinable(&q, 10)
            .expect("query")
            .iter()
            .any(|r| r.id.table == "good" && r.id.column == "precip"));

        service.drop_column("good", "precip").expect("drop");
        // Gone from rankings in the same process, with no rehydration needed.
        assert!(service
            .query_joinable(&q, 10)
            .expect("query")
            .iter()
            .all(|r| !(r.id.table == "good" && r.id.column == "precip")));
        assert_eq!(service.stats().columns, 2);
        assert!(service.is_fully_hydrated());
        // Unknown or already-dropped keys are NotFound.
        assert!(matches!(
            service.drop_column("good", "precip"),
            Err(CatalogError::NotFound { .. })
        ));

        // Gone after a cold reopen too, and compaction reclaims the blob bytes.
        let mut reopened = QueryService::open(&root).expect("open");
        let q2 = reopened.sketch_query(&query, "rides").expect("sketch");
        assert!(reopened
            .query_joinable(&q2, 10)
            .expect("query")
            .iter()
            .all(|r| !(r.id.table == "good" && r.id.column == "precip")));
        let before = reopened.stats().bytes_on_disk;
        let report = reopened.compact().expect("compact");
        // The dropped column's primary blob and its cascade companion blob.
        assert_eq!(report.removed_files.len(), 2);
        assert_eq!(report.live_columns, 2);
        assert_eq!(reopened.stats().bytes_on_disk, before);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn cascade_answers_match_the_flat_scan_and_survive_reopen() {
        let root = temp_root("cascade");
        let (query, good, bad) = lake();
        let spec = spec_for(SketchMethod::WeightedMinHash, 23);
        let mut service = QueryService::create(&root, spec).expect("create");
        assert!(
            service.companion_estimator().is_some(),
            "companions default on"
        );
        service.ingest_table(&good).expect("good");
        service.ingest_table(&bad).expect("bad");

        let q = service.sketch_query(&query, "rides").expect("sketch");
        let cq = service
            .sketch_query_companion(&query, "rides")
            .expect("companion sketch")
            .expect("companion tier exists");
        let flat = service.query_joinable(&q, 3).expect("flat");
        let (cascaded, note) = service
            .query_joinable_cascade(&q, Some(&cq), 3, ipsketch_join::DEFAULT_CASCADE_CONFIDENCE)
            .expect("cascade");
        assert!(note.is_none(), "a served cascade carries no fallback note");
        assert_eq!(
            cascaded, flat,
            "cascade answers are bit-identical to the flat scan"
        );

        // The batch path agrees, sharing the same (absent) note.
        let (batch, batch_note) = service
            .query_joinable_cascade_batch(
                &[(q.clone(), Some(cq.clone()))],
                3,
                ipsketch_join::DEFAULT_CASCADE_CONFIDENCE,
            )
            .expect("batch");
        assert!(batch_note.is_none());
        assert_eq!(batch, vec![flat.clone()]);

        // A cold reopen hydrates the companions from disk and cascades identically.
        drop(service);
        let mut reopened = QueryService::open(&root).expect("open");
        assert!(reopened.companion_estimator().is_some());
        let q2 = reopened.sketch_query(&query, "rides").expect("sketch");
        let cq2 = reopened
            .sketch_query_companion(&query, "rides")
            .expect("companion sketch")
            .expect("companion tier persists");
        let (cascaded2, note2) = reopened
            .query_joinable_cascade(
                &q2,
                Some(&cq2),
                3,
                ipsketch_join::DEFAULT_CASCADE_CONFIDENCE,
            )
            .expect("cascade");
        assert!(note2.is_none());
        assert_eq!(cascaded2, flat);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn companionless_catalogs_fall_back_to_the_flat_scan_with_a_note() {
        let root = temp_root("cascade-fallback");
        let (query, good, _) = lake();
        let mut service = QueryService::create_with_companion(
            &root,
            spec_for(SketchMethod::WeightedMinHash, 29),
            None,
        )
        .expect("create flat");
        assert!(service.companion_estimator().is_none());
        service.ingest_table(&good).expect("ingest");

        let q = service.sketch_query(&query, "rides").expect("sketch");
        assert!(service
            .sketch_query_companion(&query, "rides")
            .expect("companion sketch")
            .is_none());
        let flat = service.query_joinable(&q, 2).expect("flat");
        let (ranking, note) = service
            .query_joinable_cascade(&q, None, 2, ipsketch_join::DEFAULT_CASCADE_CONFIDENCE)
            .expect("cascade never errors on flat catalogs");
        let note = note.expect("fallback is reported");
        assert_eq!(note.code, NOTE_CASCADE_FALLBACK);
        assert_eq!(ranking, flat);

        let (batch, batch_note) = service
            .query_joinable_cascade_batch(
                &[(q.clone(), None)],
                2,
                ipsketch_join::DEFAULT_CASCADE_CONFIDENCE,
            )
            .expect("batch");
        assert_eq!(batch_note.expect("noted").code, NOTE_CASCADE_FALLBACK);
        assert_eq!(batch, vec![flat]);
        fs::remove_dir_all(&root).expect("cleanup");
    }

    #[test]
    fn sharded_ingest_stores_companions_that_match_one_shot_ingest() {
        // Both ingest paths must produce byte-identical companion blobs (CountSketch
        // folds are order-exact over disjoint shards), so cascade answers never
        // depend on which path registered a column.
        let (query, good, _) = lake();
        let spec = spec_for(SketchMethod::Kmv, 31);
        let root_shot = temp_root("cmp-oneshot");
        let root_shard = temp_root("cmp-sharded");
        let mut one_shot = QueryService::create(&root_shot, spec).expect("create");
        one_shot.ingest_table(&good).expect("ingest");
        let mut sharded = QueryService::create(&root_shard, spec).expect("create");
        let mut ingest = sharded.begin_sharded_ingest(good.name());
        let shards = shards_of(&good, 3);
        for shard in &shards {
            ingest.announce(shard).expect("announce");
        }
        for shard in &shards {
            ingest.submit(sharded.estimator(), shard).expect("submit");
        }
        sharded.finish_sharded_ingest(ingest).expect("finish");

        let q1 = one_shot.sketch_query(&query, "rides").expect("sketch");
        let c1 = one_shot
            .sketch_query_companion(&query, "rides")
            .expect("companion")
            .expect("tier");
        let q2 = sharded.sketch_query(&query, "rides").expect("sketch");
        let c2 = sharded
            .sketch_query_companion(&query, "rides")
            .expect("companion")
            .expect("tier");
        let (a, note_a) = one_shot
            .query_joinable_cascade(&q1, Some(&c1), 2, ipsketch_join::DEFAULT_CASCADE_CONFIDENCE)
            .expect("cascade");
        let (b, note_b) = sharded
            .query_joinable_cascade(&q2, Some(&c2), 2, ipsketch_join::DEFAULT_CASCADE_CONFIDENCE)
            .expect("cascade");
        assert!(note_a.is_none() && note_b.is_none());
        assert_eq!(a, b, "companion-backed cascades agree across ingest paths");
        fs::remove_dir_all(&root_shot).expect("cleanup");
        fs::remove_dir_all(&root_shard).expect("cleanup");
    }

    #[test]
    fn simhash_catalogs_serve_queries_but_reject_sharded_ingest() {
        let root = temp_root("simhash");
        let (query, good, _) = lake();
        let mut service =
            QueryService::create(&root, spec_for(SketchMethod::SimHash, 3)).expect("create");
        service.ingest_table(&good).expect("one-shot works");
        let q = service.sketch_query(&query, "rides").expect("sketch");
        assert!(!service.query_joinable(&q, 2).expect("query").is_empty());

        let mut ingest = service.begin_sharded_ingest("bad");
        let shards = shards_of(&lake().2, 2);
        ingest
            .announce(&shards[0])
            .expect("announce is method-agnostic");
        assert!(
            ingest.submit(service.estimator(), &shards[0]).is_err(),
            "SimHash partials cannot merge"
        );
        // A session whose only submit failed must not finish as if the table were
        // all-zero "skipped" columns — finishing is a typed error.
        assert!(matches!(
            service.finish_sharded_ingest(ingest),
            Err(CatalogError::Incompatible { .. })
        ));
        fs::remove_dir_all(&root).expect("cleanup");
    }
}
