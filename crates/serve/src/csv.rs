//! A minimal CSV reader for the CLI: `key,<col>,<col>,…` with one u64 join key and
//! f64 value columns.
//!
//! This is deliberately tiny — it exists so the `ipsketch` binary can drive the
//! catalog end to end without any external dependency, not to be a general CSV
//! implementation.  No quoting, no escaping; fields are comma-separated and trimmed.

use ipsketch_data::{Column, Table};
use std::fmt;
use std::fs;
use std::path::Path;

/// A CSV parse failure, with enough location to fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// The file being parsed.
    pub path: String,
    /// 1-based line number of the problem (0 for file-level problems).
    pub line: usize,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.path, self.detail)
        } else {
            write!(f, "{}:{}: {}", self.path, self.line, self.detail)
        }
    }
}

impl std::error::Error for CsvError {}

fn err(path: &Path, line: usize, detail: impl Into<String>) -> CsvError {
    CsvError {
        path: path.display().to_string(),
        line,
        detail: detail.into(),
    }
}

/// Loads a table from a CSV file.  The first header field names the key column
/// (ignored beyond requiring it to exist); the rest name value columns.  The table is
/// named `name`, or the file stem when `None`.
///
/// # Errors
///
/// Returns [`CsvError`] for unreadable files, missing headers, ragged rows,
/// unparseable numbers, or table-level problems (duplicate keys).
pub fn load_table(path: &Path, name: Option<&str>) -> Result<Table, CsvError> {
    let text = fs::read_to_string(path).map_err(|e| err(path, 0, e.to_string()))?;
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(path, 0, "empty file: expected a `key,<col>,…` header"))?;
    let fields: Vec<&str> = header.split(',').map(str::trim).collect();
    if fields.len() < 2 {
        return Err(err(
            path,
            1,
            "header must name a key column and at least one value column",
        ));
    }
    let column_names: Vec<String> = fields[1..].iter().map(|s| (*s).to_string()).collect();

    let mut keys = Vec::new();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); column_names.len()];
    for (line_index, line) in lines {
        let line_no = line_index + 1;
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != fields.len() {
            return Err(err(
                path,
                line_no,
                format!("expected {} fields, found {}", fields.len(), cells.len()),
            ));
        }
        let key: u64 = cells[0]
            .parse()
            .map_err(|_| err(path, line_no, format!("invalid join key `{}`", cells[0])))?;
        keys.push(key);
        for (column, cell) in columns.iter_mut().zip(&cells[1..]) {
            let value: f64 = cell
                .parse()
                .map_err(|_| err(path, line_no, format!("invalid number `{cell}`")))?;
            column.push(value);
        }
    }

    let table_name = match name {
        Some(n) => n.to_string(),
        None => path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "table".to_string()),
    };
    Table::new(
        table_name,
        keys,
        column_names
            .into_iter()
            .zip(columns)
            .map(|(name, values)| Column::new(name, values))
            .collect(),
    )
    .map_err(|e| err(path, 0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn write_temp(tag: &str, contents: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("ipsketch-csv-{tag}-{}.csv", std::process::id()));
        fs::write(&path, contents).expect("write temp CSV");
        path
    }

    #[test]
    fn parses_a_well_formed_file() {
        let path = write_temp("ok", "key,a,b\n1,2.5,3\n2,-1,0.25\n\n3,0,7\n");
        let table = load_table(&path, None).expect("parses");
        assert!(table.name().starts_with("ipsketch-csv-ok"));
        assert_eq!(table.rows(), 3);
        assert_eq!(table.keys(), &[1, 2, 3]);
        assert_eq!(table.columns()[0].name, "a");
        assert_eq!(table.columns()[1].values, vec![3.0, 0.25, 7.0]);
        let named = load_table(&path, Some("taxi")).expect("parses");
        assert_eq!(named.name(), "taxi");
        fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn rejects_malformed_files_with_line_numbers() {
        let ragged = write_temp("ragged", "key,a\n1,2\n3\n");
        let e = load_table(&ragged, None).expect_err("ragged row");
        assert_eq!(e.line, 3);
        let bad_key = write_temp("badkey", "key,a\nx,2\n");
        let e = load_table(&bad_key, None).expect_err("bad key");
        assert!(e.detail.contains("join key"), "{e}");
        let bad_value = write_temp("badval", "key,a\n1,nope\n");
        assert!(load_table(&bad_value, None).is_err());
        let no_columns = write_temp("nocol", "key\n1\n");
        assert!(load_table(&no_columns, None).is_err());
        let empty = write_temp("empty", "");
        assert!(load_table(&empty, None).is_err());
        let duplicate = write_temp("dupkey", "key,a\n1,2\n1,3\n");
        let e = load_table(&duplicate, None).expect_err("duplicate keys");
        assert!(e.detail.contains("unique"), "{e}");
        for p in [ragged, bad_key, bad_value, no_columns, empty, duplicate] {
            fs::remove_file(p).expect("cleanup");
        }
    }
}
