//! Typed request/response model of the network protocol.
//!
//! The wire format itself — line-delimited JSON over TCP, one request or response
//! per `\n`-terminated line — is specified normatively in `docs/PROTOCOL.md`; this
//! module is its executable counterpart: typed [`Request`] / [`Response`] values
//! with `encode`/`decode` that both the server and clients (the example client, the
//! loopback tests, and the doc-driven conformance test that parses the spec's
//! embedded examples) share.  Everything here is pure data: it compiles and runs
//! without the `server` feature, so protocol conformance is locked by the tier-1
//! test suite even on builds that never open a socket.
//!
//! Versioning (normative rules in `docs/PROTOCOL.md` § Versioning): every request
//! carries `"v": 1` ([`PROTOCOL_VERSION`]); servers answer requests of exactly that
//! major version and reject others with [`ErrorCode::UnsupportedVersion`].  Unknown
//! *fields* are ignored (forward-compatible additions); unknown *ops* are
//! [`ErrorCode::UnknownOp`].

use crate::error::CatalogError;
use crate::wire::Json;
use ipsketch_data::{Column, Table};
use ipsketch_join::{JoinError, RankedColumn};
use std::fmt;

/// The protocol major version this build speaks, sent and required as `"v"`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default ranking depth when a query omits `"k"`.
pub const DEFAULT_TOP_K: u64 = 10;

/// Machine-readable error classes carried in `error.code` of failure responses.
///
/// The catalog-layer codes mirror [`CatalogError`] variant for variant, so a wire
/// client can distinguish exactly what a library caller could; the protocol-layer
/// codes cover failures that only exist on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON, or a field was missing or mistyped.
    BadRequest,
    /// The request's `"v"` is not a version this server speaks.
    UnsupportedVersion,
    /// The request's `"op"` names no known operation.
    UnknownOp,
    /// The request line exceeded the server's size bound.
    TooLarge,
    /// An `ingest-*` op referenced a session id that does not exist (or was
    /// already finished).
    UnknownSession,
    /// The server is at a configured capacity limit (connection cap or request
    /// queue depth); retry after a backoff.
    Overloaded,
    /// A per-attempt deadline elapsed before the remote side answered.  Routers
    /// answer this for non-idempotent operations that timed out against a node
    /// whose true outcome is therefore unknown — clients must check state (e.g.
    /// `info`) before retrying.  Idempotent reads never surface this code from a
    /// router; they fail over to replicas instead.
    DeadlineExceeded,
    /// A filesystem operation failed ([`CatalogError::Io`]).
    Io,
    /// Stored catalog data did not decode ([`CatalogError::Corrupt`]).
    Corrupt,
    /// The served directory is not a catalog ([`CatalogError::NotACatalog`]).
    NotACatalog,
    /// Sketch/spec mismatch or protocol-state violation
    /// ([`CatalogError::Incompatible`]).
    Incompatible,
    /// The `(table, column)` key is already registered
    /// ([`CatalogError::DuplicateColumn`]).
    DuplicateColumn,
    /// No such `(table, column)` key ([`CatalogError::NotFound`]).
    NotFound,
    /// A sketching-layer failure ([`CatalogError::Sketch`]).
    Sketch,
    /// A join/estimation-layer failure ([`CatalogError::Join`]).
    Join,
    /// The server hit an unexpected internal state.
    Internal,
}

impl ErrorCode {
    /// Every code, in the order documented in `docs/PROTOCOL.md`'s error table
    /// (the doc conformance test asserts the two lists match).
    pub const ALL: [ErrorCode; 16] = [
        ErrorCode::BadRequest,
        ErrorCode::UnsupportedVersion,
        ErrorCode::UnknownOp,
        ErrorCode::TooLarge,
        ErrorCode::UnknownSession,
        ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded,
        ErrorCode::Io,
        ErrorCode::Corrupt,
        ErrorCode::NotACatalog,
        ErrorCode::Incompatible,
        ErrorCode::DuplicateColumn,
        ErrorCode::NotFound,
        ErrorCode::Sketch,
        ErrorCode::Join,
        ErrorCode::Internal,
    ];

    /// The stable wire token for this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Io => "io",
            ErrorCode::Corrupt => "corrupt",
            ErrorCode::NotACatalog => "not_a_catalog",
            ErrorCode::Incompatible => "incompatible",
            ErrorCode::DuplicateColumn => "duplicate_column",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Sketch => "sketch",
            ErrorCode::Join => "join",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire token produced by [`as_str`](Self::as_str).
    #[must_use]
    pub fn parse(token: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|c| c.as_str() == token)
    }

    /// The HTTP status the HTTP/1.1 binding answers this code with (the table in
    /// `docs/PROTOCOL.md` § HTTP/1.1 binding; the doc conformance test asserts the
    /// two stay in lockstep).  Client-state failures map into 4xx, server-side
    /// failures into 5xx, so HTTP-generic middleware (retries, alerting) classifies
    /// them correctly without reading the JSON body.
    #[must_use]
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadRequest | ErrorCode::UnsupportedVersion => 400,
            ErrorCode::UnknownOp | ErrorCode::UnknownSession | ErrorCode::NotFound => 404,
            ErrorCode::TooLarge => 413,
            ErrorCode::Overloaded => 503,
            ErrorCode::DeadlineExceeded => 504,
            ErrorCode::Incompatible | ErrorCode::DuplicateColumn => 409,
            ErrorCode::Sketch | ErrorCode::Join => 422,
            ErrorCode::Io | ErrorCode::Corrupt | ErrorCode::NotACatalog | ErrorCode::Internal => {
                500
            }
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol-level failure: a machine-readable code plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable detail (never required for dispatch).
    pub message: String,
}

impl WireError {
    /// Constructs a [`ErrorCode::BadRequest`] error.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        WireError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<CatalogError> for WireError {
    fn from(e: CatalogError) -> Self {
        let code = match &e {
            CatalogError::Io { .. } => ErrorCode::Io,
            CatalogError::Corrupt { .. } => ErrorCode::Corrupt,
            CatalogError::NotACatalog { .. } => ErrorCode::NotACatalog,
            CatalogError::Incompatible { .. } => ErrorCode::Incompatible,
            CatalogError::DuplicateColumn { .. } => ErrorCode::DuplicateColumn,
            CatalogError::NotFound { .. } => ErrorCode::NotFound,
            CatalogError::Sketch(_) => ErrorCode::Sketch,
            CatalogError::Join(_) => ErrorCode::Join,
        };
        WireError {
            code,
            message: e.to_string(),
        }
    }
}

impl From<JoinError> for WireError {
    fn from(e: JoinError) -> Self {
        WireError {
            code: ErrorCode::Join,
            message: e.to_string(),
        }
    }
}

/// One value column of a wire table.
#[derive(Debug, Clone, PartialEq)]
pub struct WireColumn {
    /// Column name.
    pub name: String,
    /// One `f64` value per key, in key order.
    pub values: Vec<f64>,
}

/// A table shipped over the wire: named columns over shared `u64` join keys —
/// exactly the in-memory [`Table`] shape, in JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTable {
    /// Table name.
    pub name: String,
    /// The join keys (JSON integers — `u64` precision is preserved end to end).
    pub keys: Vec<u64>,
    /// The value columns, each aligned with `keys`.
    pub columns: Vec<WireColumn>,
}

impl WireTable {
    /// Converts into the in-memory [`Table`], enforcing its invariants (aligned
    /// columns, unique keys).
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::BadRequest`] describing the violated invariant.
    pub fn to_table(&self) -> Result<Table, WireError> {
        Table::new(
            self.name.clone(),
            self.keys.clone(),
            self.columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.values.clone()))
                .collect(),
        )
        .map_err(|e| WireError::bad_request(format!("invalid table: {e}")))
    }

    /// Builds the wire form of an in-memory table.
    #[must_use]
    pub fn from_table(table: &Table) -> Self {
        WireTable {
            name: table.name().to_string(),
            keys: table.keys().to_vec(),
            columns: table
                .columns()
                .iter()
                .map(|c| WireColumn {
                    name: c.name.clone(),
                    values: c.values.clone(),
                })
                .collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::str(&self.name)),
            (
                "keys".to_string(),
                Json::Arr(self.keys.iter().map(|&k| Json::u64(k)).collect()),
            ),
            (
                "columns".to_string(),
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::str(&c.name)),
                                (
                                    "values".to_string(),
                                    Json::Arr(c.values.iter().map(|&v| Json::f64(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        let name = require_str(value, "name")?;
        let keys = require_u64_array(value, "keys")?;
        let columns_json = value
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError::bad_request("table needs a `columns` array"))?;
        let mut columns = Vec::with_capacity(columns_json.len());
        for column in columns_json {
            columns.push(WireColumn {
                name: require_str(column, "name")?,
                values: require_f64_array(column, "values")?,
            });
        }
        Ok(WireTable {
            name,
            keys,
            columns,
        })
    }
}

/// A query column shipped over the wire: one named column of keyed values.  The
/// server sketches it with the catalog's configuration (queries are sketched fresh,
/// never registered), exactly as `QueryService::sketch_query` does in-process.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuery {
    /// Name of the (virtual) table the query column belongs to.  Candidates from a
    /// cataloged table of the same name are excluded from its ranking, mirroring the
    /// in-process behavior.
    pub table: String,
    /// The query column's name.
    pub column: String,
    /// The join keys.
    pub keys: Vec<u64>,
    /// One value per key.
    pub values: Vec<f64>,
}

impl WireQuery {
    /// Converts into a single-column [`Table`] ready for `sketch_query`.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorCode::BadRequest`] when keys and values misalign or repeat.
    pub fn to_table(&self) -> Result<Table, WireError> {
        Table::new(
            self.table.clone(),
            self.keys.clone(),
            vec![Column::new(self.column.clone(), self.values.clone())],
        )
        .map_err(|e| WireError::bad_request(format!("invalid query column: {e}")))
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("table".to_string(), Json::str(&self.table)),
            ("column".to_string(), Json::str(&self.column)),
            (
                "keys".to_string(),
                Json::Arr(self.keys.iter().map(|&k| Json::u64(k)).collect()),
            ),
            (
                "values".to_string(),
                Json::Arr(self.values.iter().map(|&v| Json::f64(v)).collect()),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        Ok(WireQuery {
            table: require_str(value, "table")?,
            column: require_str(value, "column")?,
            keys: require_u64_array(value, "keys")?,
            values: require_f64_array(value, "values")?,
        })
    }
}

/// A registered column's sketch blob in transit between catalog nodes — the
/// payload of `export-column` responses and `import-column` requests.  The
/// `bytes` are the node's verified on-disk blob verbatim (hex-encoded on the
/// wire), so a copy registered elsewhere decodes to the identical sketch and
/// rankings stay byte-identical across a rebalance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSketch {
    /// Table name of the sketched column.
    pub table: String,
    /// Column name of the sketched column.
    pub column: String,
    /// Row count of the source column.
    pub rows: u64,
    /// The encoded sketch blob, exactly as stored in the exporting catalog.
    pub bytes: Vec<u8>,
}

impl WireSketch {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("table".to_string(), Json::str(&self.table)),
            ("column".to_string(), Json::str(&self.column)),
            ("rows".to_string(), Json::u64(self.rows)),
            ("bytes".to_string(), Json::str(encode_hex(&self.bytes))),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        Ok(WireSketch {
            table: require_str(value, "table")?,
            column: require_str(value, "column")?,
            rows: require_u64(value, "rows")?,
            bytes: decode_hex(&require_str(value, "bytes")?)?,
        })
    }
}

fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn decode_hex(text: &str) -> Result<Vec<u8>, WireError> {
    if text.len() % 2 != 0 {
        return Err(WireError::bad_request(
            "`bytes` must be an even-length hex string",
        ));
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| WireError::bad_request("`bytes` must hold only hex digits"))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| WireError::bad_request("`bytes` must hold only hex digits"))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

/// Which statistic a query ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Rank by estimated join size (the default).
    #[default]
    Joinable,
    /// Rank by |estimated post-join correlation|, excluding candidates whose
    /// estimated join size falls below the request's `min_join_size`.
    Related,
}

impl Mode {
    /// The wire token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Joinable => "joinable",
            Mode::Related => "related",
        }
    }

    /// Parses a wire token.
    #[must_use]
    pub fn parse(token: &str) -> Option<Mode> {
        match token {
            "joinable" => Some(Mode::Joinable),
            "related" => Some(Mode::Related),
            _ => None,
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Catalog metadata: sketcher, fingerprint, registered columns, service stats.
    Info {
        /// When `true`, the response additionally carries live server observability
        /// (`server`: per-op latency quantiles, counters, gauges).  Off by default
        /// because those numbers are nondeterministic — replayed transcripts stay
        /// byte-identical unless a client opts in.
        server: bool,
    },
    /// Rank one query column against the catalog.
    Query {
        /// Ranking statistic.
        mode: Mode,
        /// How many results to return.
        k: u64,
        /// Minimum estimated join size (`related` mode only).
        min_join_size: f64,
        /// Answer through the tiered cascade (cheap-sketch prefilter, WMH
        /// rerank) when the catalog stores companion sketches (`joinable` mode
        /// only).  Catalogs without companions answer by the flat scan and
        /// attach an advisory `note`.
        cascade: bool,
        /// The query column.
        query: WireQuery,
    },
    /// Rank many query columns in one round trip (the preferred shape: the server
    /// fans a batch out on the runner, so one wire request saturates cores).
    BatchQuery {
        /// Ranking statistic.
        mode: Mode,
        /// How many results to return per query.
        k: u64,
        /// Minimum estimated join size (`related` mode only).
        min_join_size: f64,
        /// Answer through the tiered cascade; see [`RequestBody::Query`].
        cascade: bool,
        /// The query columns; response ranking `i` answers query `i`.
        queries: Vec<WireQuery>,
    },
    /// Sketch and register a complete table (optionally via the chunk-and-merge
    /// partitioned path).
    Ingest {
        /// The table to register.
        table: WireTable,
        /// If set, sketch as this many row-chunks merged through the
        /// mergeable-sketcher path.
        partitions: Option<u64>,
    },
    /// Open a shard-partial ingest session for a table (two-pass announced-norm
    /// protocol; see `ShardedIngest`).
    IngestBegin {
        /// The logical table name every shard of this session must carry.
        table: String,
    },
    /// First pass: fold a shard's `Σv²` partial sums into the session's norms.
    IngestAnnounce {
        /// Session id from `ingest-begin`.
        session: u64,
        /// The shard (a row range of the logical table).
        shard: WireTable,
    },
    /// Second pass: sketch a shard against the announced norms and fold it in.
    IngestSubmit {
        /// Session id from `ingest-begin`.
        session: u64,
        /// The shard (a row range of the logical table).
        shard: WireTable,
    },
    /// Register the session's folded columns into the catalog.
    IngestFinish {
        /// Session id from `ingest-begin`.
        session: u64,
    },
    /// Drop a registered column: the catalog writes a deletion tombstone, the
    /// column disappears from rankings immediately, and its blob bytes are
    /// reclaimed by the next compaction.  Read-only (format-v1) catalogs answer
    /// `incompatible`.
    DropColumn {
        /// Table name of the column to drop.
        table: String,
        /// Column name of the column to drop.
        column: String,
    },
    /// Read one registered column's sketch blob, verbatim and verified, for
    /// node-to-node transfer (rebalance).  Idempotent and read-only.
    ExportColumn {
        /// Table name of the column to export.
        table: String,
        /// Column name of the column to export.
        column: String,
    },
    /// Register a sketch blob previously produced by `export-column`.  The blob
    /// bytes are stored verbatim, so the imported column is byte-identical to
    /// the exported one.  Importing an already-registered key is a no-op (the
    /// report lists the column under `skipped`), making the op safe to retry.
    ImportColumn {
        /// The sketch blob to register.
        sketch: WireSketch,
    },
}

impl RequestBody {
    /// The `"op"` token for this body.
    #[must_use]
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::Info { .. } => "info",
            RequestBody::Query { .. } => "query",
            RequestBody::BatchQuery { .. } => "batch-query",
            RequestBody::Ingest { .. } => "ingest",
            RequestBody::IngestBegin { .. } => "ingest-begin",
            RequestBody::IngestAnnounce { .. } => "ingest-announce",
            RequestBody::IngestSubmit { .. } => "ingest-submit",
            RequestBody::IngestFinish { .. } => "ingest-finish",
            RequestBody::DropColumn { .. } => "drop-column",
            RequestBody::ExportColumn { .. } => "export-column",
            RequestBody::ImportColumn { .. } => "import-column",
        }
    }
}

/// One request line: a client-chosen `id` (echoed verbatim in the response, any
/// JSON value) plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client correlation id; `Json::Null` when omitted.
    pub id: Json,
    /// The operation.
    pub body: RequestBody,
}

/// A decode failure carrying whatever `id` could be recovered, so the server can
/// still correlate its error response.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestDecodeError {
    /// The request's `id` if the line parsed far enough to find one, else null.
    pub id: Json,
    /// The failure.
    pub error: WireError,
}

impl Request {
    /// Encodes the request as one line of JSON (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut members = vec![("v".to_string(), Json::u64(PROTOCOL_VERSION))];
        if !self.id.is_null() {
            members.push(("id".to_string(), self.id.clone()));
        }
        members.push(("op".to_string(), Json::str(self.body.op())));
        match &self.body {
            RequestBody::Info { server } => {
                if *server {
                    members.push(("server".to_string(), Json::Bool(true)));
                }
            }
            RequestBody::Query {
                mode,
                k,
                min_join_size,
                cascade,
                query,
            } => {
                members.push(("mode".to_string(), Json::str(mode.as_str())));
                members.push(("k".to_string(), Json::u64(*k)));
                if *mode == Mode::Related {
                    members.push(("min_join_size".to_string(), Json::f64(*min_join_size)));
                }
                if *cascade {
                    members.push(("cascade".to_string(), Json::Bool(true)));
                }
                members.push(("query".to_string(), query.to_json()));
            }
            RequestBody::BatchQuery {
                mode,
                k,
                min_join_size,
                cascade,
                queries,
            } => {
                members.push(("mode".to_string(), Json::str(mode.as_str())));
                members.push(("k".to_string(), Json::u64(*k)));
                if *mode == Mode::Related {
                    members.push(("min_join_size".to_string(), Json::f64(*min_join_size)));
                }
                if *cascade {
                    members.push(("cascade".to_string(), Json::Bool(true)));
                }
                members.push((
                    "queries".to_string(),
                    Json::Arr(queries.iter().map(WireQuery::to_json).collect()),
                ));
            }
            RequestBody::Ingest { table, partitions } => {
                members.push(("table".to_string(), table.to_json()));
                if let Some(partitions) = partitions {
                    members.push(("partitions".to_string(), Json::u64(*partitions)));
                }
            }
            RequestBody::IngestBegin { table } => {
                members.push(("table".to_string(), Json::str(table)));
            }
            RequestBody::IngestAnnounce { session, shard }
            | RequestBody::IngestSubmit { session, shard } => {
                members.push(("session".to_string(), Json::u64(*session)));
                members.push(("shard".to_string(), shard.to_json()));
            }
            RequestBody::IngestFinish { session } => {
                members.push(("session".to_string(), Json::u64(*session)));
            }
            RequestBody::DropColumn { table, column }
            | RequestBody::ExportColumn { table, column } => {
                members.push(("table".to_string(), Json::str(table)));
                members.push(("column".to_string(), Json::str(column)));
            }
            RequestBody::ImportColumn { sketch } => {
                members.push(("sketch".to_string(), sketch.to_json()));
            }
        }
        Json::Obj(members).to_string()
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns [`RequestDecodeError`] with the best-effort recovered `id` and a
    /// [`WireError`] whose code is `bad_request`, `unsupported_version`, or
    /// `unknown_op`.
    pub fn decode(line: &str) -> Result<Request, RequestDecodeError> {
        let doc = Json::parse(line).map_err(|e| RequestDecodeError {
            id: Json::Null,
            error: WireError::bad_request(e.to_string()),
        })?;
        Request::from_json(&doc)
    }

    /// Decodes a request from an already-parsed JSON document — the shared tail of
    /// [`decode`](Self::decode) and the HTTP binding (which parses the body itself
    /// so it can inject the route's `op`; see `http::decode_request`).
    ///
    /// # Errors
    ///
    /// Same contract as [`decode`](Self::decode).
    pub fn from_json(doc: &Json) -> Result<Request, RequestDecodeError> {
        let id = doc.get("id").cloned().unwrap_or(Json::Null);
        let fail = |error: WireError| RequestDecodeError {
            id: id.clone(),
            error,
        };
        let version = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail(WireError::bad_request("missing protocol version field `v`")))?;
        if version != PROTOCOL_VERSION {
            return Err(fail(WireError {
                code: ErrorCode::UnsupportedVersion,
                message: format!(
                    "protocol version {version} is not supported (this server speaks {PROTOCOL_VERSION})"
                ),
            }));
        }
        let op = doc
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(WireError::bad_request("missing operation field `op`")))?;
        let body = match op {
            "info" => RequestBody::Info {
                server: doc.get("server").and_then(Json::as_bool).unwrap_or(false),
            },
            "query" => RequestBody::Query {
                mode: decode_mode(doc).map_err(&fail)?,
                k: doc.get("k").map_or(Ok(DEFAULT_TOP_K), |k| {
                    k.as_u64()
                        .ok_or_else(|| fail(WireError::bad_request("`k` must be an integer")))
                })?,
                min_join_size: decode_min_join_size(doc).map_err(&fail)?,
                cascade: decode_cascade(doc).map_err(&fail)?,
                query: WireQuery::from_json(
                    doc.get("query")
                        .ok_or_else(|| fail(WireError::bad_request("missing `query` object")))?,
                )
                .map_err(&fail)?,
            },
            "batch-query" => {
                let queries_json = doc
                    .get("queries")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail(WireError::bad_request("missing `queries` array")))?;
                let mut queries = Vec::with_capacity(queries_json.len());
                for q in queries_json {
                    queries.push(WireQuery::from_json(q).map_err(&fail)?);
                }
                RequestBody::BatchQuery {
                    mode: decode_mode(doc).map_err(&fail)?,
                    k: doc.get("k").map_or(Ok(DEFAULT_TOP_K), |k| {
                        k.as_u64()
                            .ok_or_else(|| fail(WireError::bad_request("`k` must be an integer")))
                    })?,
                    min_join_size: decode_min_join_size(doc).map_err(&fail)?,
                    cascade: decode_cascade(doc).map_err(&fail)?,
                    queries,
                }
            }
            "ingest" => RequestBody::Ingest {
                table: WireTable::from_json(
                    doc.get("table")
                        .ok_or_else(|| fail(WireError::bad_request("missing `table` object")))?,
                )
                .map_err(&fail)?,
                partitions: match doc.get("partitions") {
                    None => None,
                    Some(p) => Some(p.as_u64().ok_or_else(|| {
                        fail(WireError::bad_request("`partitions` must be an integer"))
                    })?),
                },
            },
            "ingest-begin" => RequestBody::IngestBegin {
                table: require_str(doc, "table").map_err(&fail)?,
            },
            "ingest-announce" | "ingest-submit" => {
                let session = doc
                    .get("session")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail(WireError::bad_request("missing integer `session`")))?;
                let shard = WireTable::from_json(
                    doc.get("shard")
                        .ok_or_else(|| fail(WireError::bad_request("missing `shard` object")))?,
                )
                .map_err(&fail)?;
                if op == "ingest-announce" {
                    RequestBody::IngestAnnounce { session, shard }
                } else {
                    RequestBody::IngestSubmit { session, shard }
                }
            }
            "ingest-finish" => RequestBody::IngestFinish {
                session: doc
                    .get("session")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| fail(WireError::bad_request("missing integer `session`")))?,
            },
            "drop-column" => RequestBody::DropColumn {
                table: require_str(doc, "table").map_err(&fail)?,
                column: require_str(doc, "column").map_err(&fail)?,
            },
            "export-column" => RequestBody::ExportColumn {
                table: require_str(doc, "table").map_err(&fail)?,
                column: require_str(doc, "column").map_err(&fail)?,
            },
            "import-column" => RequestBody::ImportColumn {
                sketch: WireSketch::from_json(
                    doc.get("sketch")
                        .ok_or_else(|| fail(WireError::bad_request("missing `sketch` object")))?,
                )
                .map_err(&fail)?,
            },
            other => {
                return Err(fail(WireError {
                    code: ErrorCode::UnknownOp,
                    message: format!("unknown op `{other}`"),
                }))
            }
        };
        Ok(Request { id, body })
    }
}

fn decode_mode(doc: &Json) -> Result<Mode, WireError> {
    match doc.get("mode") {
        None => Ok(Mode::default()),
        Some(m) => m
            .as_str()
            .and_then(Mode::parse)
            .ok_or_else(|| WireError::bad_request("`mode` must be \"joinable\" or \"related\"")),
    }
}

fn decode_cascade(doc: &Json) -> Result<bool, WireError> {
    match doc.get("cascade") {
        None => Ok(false),
        Some(c) => c
            .as_bool()
            .ok_or_else(|| WireError::bad_request("`cascade` must be a boolean")),
    }
}

fn decode_min_join_size(doc: &Json) -> Result<f64, WireError> {
    match doc.get("min_join_size") {
        None => Ok(0.0),
        Some(m) => m
            .as_f64()
            .ok_or_else(|| WireError::bad_request("`min_join_size` must be a number")),
    }
}

/// One ranked result of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRanked {
    /// The candidate's table name.
    pub table: String,
    /// The candidate's column name.
    pub column: String,
    /// The ranking score (join size or |correlation| depending on the mode).
    pub score: f64,
    /// Estimated join size with the query column.
    pub join_size: f64,
    /// Estimated post-join correlation with the query column.
    pub correlation: f64,
}

impl From<&RankedColumn> for WireRanked {
    fn from(r: &RankedColumn) -> Self {
        WireRanked {
            table: r.id.table.clone(),
            column: r.id.column.clone(),
            score: r.score,
            join_size: r.estimated_join_size,
            correlation: r.estimated_correlation,
        }
    }
}

impl WireRanked {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("table".to_string(), Json::str(&self.table)),
            ("column".to_string(), Json::str(&self.column)),
            ("score".to_string(), Json::f64(self.score)),
            ("join_size".to_string(), Json::f64(self.join_size)),
            ("correlation".to_string(), Json::f64(self.correlation)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        Ok(WireRanked {
            table: require_str(value, "table")?,
            column: require_str(value, "column")?,
            score: require_f64(value, "score")?,
            join_size: require_f64(value, "join_size")?,
            correlation: require_f64(value, "correlation")?,
        })
    }
}

/// An advisory note attached to a ranking response: the answer is still correct
/// and complete, but the server took a different path than the request asked
/// for (e.g. a `cascade` query against a catalog with no companion sketches is
/// answered by the flat scan).  Notes are never errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireNote {
    /// Stable machine-readable note code (e.g. `"cascade_fallback"`).
    pub code: String,
    /// Human-readable explanation.
    pub message: String,
}

impl WireNote {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".to_string(), Json::str(&self.code)),
            ("message".to_string(), Json::str(&self.message)),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        Ok(WireNote {
            code: require_str(value, "code")?,
            message: require_str(value, "message")?,
        })
    }
}

/// One registered column entry in an [`ResponseBody::Info`] response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoColumn {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Row count of the source column.
    pub rows: u64,
}

/// Deterministic service statistics in an `info` response — `QueryService::stats()`
/// on the wire.  Every field is a pure function of the catalog's ingest/compaction
/// history, so twin servers that processed the same request sequence answer with
/// byte-identical `stats` (the HTTP conformance suite relies on this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireServiceStats {
    /// Registered column count.
    pub columns: u64,
    /// How many registered sketches are resident in memory.
    pub hydrated: u64,
    /// Total bytes of sketch blobs on disk (manifest blob lengths).
    pub bytes_on_disk: u64,
    /// The most recent compaction's report, if one ran in this process.
    pub last_compaction: Option<WireCompaction>,
}

/// The outcome of the service's most recent compaction pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCompaction {
    /// How many orphaned blob files the pass removed.
    pub removed_files: u64,
    /// How many live columns the rewritten manifest holds.
    pub live_columns: u64,
}

/// Live server observability in an `info` response (requires `"server": true` in
/// the request).  Latency quantiles come from the server's lock-free log-bucketed
/// histograms, so they are upper bounds of power-of-two nanosecond buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireServerStats {
    /// Currently open client connections.
    pub connections_open: u64,
    /// Connections refused because the configured connection cap was reached.
    pub connections_rejected: u64,
    /// Requests currently queued for a worker.
    pub queue_depth: u64,
    /// Requests answered `overloaded` because the queue depth cap was reached.
    pub queue_rejected: u64,
    /// Per-op counters and latency quantiles, in the server's stable op order;
    /// ops that have never been called are omitted.
    pub ops: Vec<WireOpStats>,
}

/// One op's counters in [`WireServerStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOpStats {
    /// The op label (an `"op"` token, or `"invalid"` for undecodable requests).
    pub op: String,
    /// Requests handled.
    pub count: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Median handling latency, microseconds (bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile handling latency, microseconds (bucket upper bound).
    pub p99_us: u64,
}

/// Cluster routing observability in an `info` response — present only when the
/// answering process is a router (`ipsketch route`), never a single catalog
/// node.  See `docs/PROTOCOL.md`, "Cluster routing".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireClusterStats {
    /// How many nodes each `(table, column)` key is written to.
    pub replicas: u64,
    /// Client requests the router has handled.
    pub requests: u64,
    /// Per-node requests the router has fanned out (≥ `requests`).
    pub fanouts: u64,
    /// Reads answered complete despite a node connect/IO failure — the failed
    /// node's columns were covered by replicas on the surviving nodes.
    pub failovers: u64,
    /// The routed nodes, in the router's configured order.
    pub nodes: Vec<WireNodeStats>,
}

/// One catalog node's status in [`WireClusterStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireNodeStats {
    /// The node's address, as configured on the router.
    pub addr: String,
    /// The transport the router speaks to this node (`"tcp"` or `"http"`).
    pub transport: String,
    /// Whether the node answered the router's most recent exchange with it.
    pub healthy: bool,
    /// Connect/IO errors the router has observed against this node.
    pub errors: u64,
    /// Times the router demoted this node (consecutive failures reached the
    /// configured threshold); demoted nodes are skipped by read fan-out until a
    /// probe restores them.
    pub demotions: u64,
    /// Times a background probe restored this node to `healthy`.
    pub promotions: u64,
    /// Background health probes attempted against this node while demoted.
    pub probes: u64,
}

impl WireClusterStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("replicas".to_string(), Json::u64(self.replicas)),
            ("requests".to_string(), Json::u64(self.requests)),
            ("fanouts".to_string(), Json::u64(self.fanouts)),
            ("failovers".to_string(), Json::u64(self.failovers)),
            (
                "nodes".to_string(),
                Json::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Json::Obj(vec![
                                ("addr".to_string(), Json::str(&n.addr)),
                                ("transport".to_string(), Json::str(&n.transport)),
                                ("healthy".to_string(), Json::Bool(n.healthy)),
                                ("errors".to_string(), Json::u64(n.errors)),
                                ("demotions".to_string(), Json::u64(n.demotions)),
                                ("promotions".to_string(), Json::u64(n.promotions)),
                                ("probes".to_string(), Json::u64(n.probes)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        let nodes_json = value
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError::bad_request("cluster stats need a `nodes` array"))?;
        let mut nodes = Vec::with_capacity(nodes_json.len());
        for n in nodes_json {
            nodes.push(WireNodeStats {
                addr: require_str(n, "addr")?,
                transport: require_str(n, "transport")?,
                healthy: n
                    .get("healthy")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| WireError::bad_request("cluster node needs `healthy`"))?,
                errors: require_u64(n, "errors")?,
                // Optional on decode for compatibility with pre-health-lifecycle
                // transcripts; this server always sends them.
                demotions: n.get("demotions").and_then(Json::as_u64).unwrap_or(0),
                promotions: n.get("promotions").and_then(Json::as_u64).unwrap_or(0),
                probes: n.get("probes").and_then(Json::as_u64).unwrap_or(0),
            });
        }
        Ok(WireClusterStats {
            replicas: require_u64(value, "replicas")?,
            requests: require_u64(value, "requests")?,
            fanouts: require_u64(value, "fanouts")?,
            failovers: require_u64(value, "failovers")?,
            nodes,
        })
    }
}

impl WireServiceStats {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("columns".to_string(), Json::u64(self.columns)),
            ("hydrated".to_string(), Json::u64(self.hydrated)),
            ("bytes_on_disk".to_string(), Json::u64(self.bytes_on_disk)),
        ];
        if let Some(c) = &self.last_compaction {
            members.push((
                "last_compaction".to_string(),
                Json::Obj(vec![
                    ("removed_files".to_string(), Json::u64(c.removed_files)),
                    ("live_columns".to_string(), Json::u64(c.live_columns)),
                ]),
            ));
        }
        Json::Obj(members)
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        Ok(WireServiceStats {
            columns: require_u64(value, "columns")?,
            hydrated: require_u64(value, "hydrated")?,
            bytes_on_disk: require_u64(value, "bytes_on_disk")?,
            last_compaction: match value.get("last_compaction") {
                None => None,
                Some(c) => Some(WireCompaction {
                    removed_files: require_u64(c, "removed_files")?,
                    live_columns: require_u64(c, "live_columns")?,
                }),
            },
        })
    }
}

impl WireServerStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "connections".to_string(),
                Json::Obj(vec![
                    ("open".to_string(), Json::u64(self.connections_open)),
                    ("rejected".to_string(), Json::u64(self.connections_rejected)),
                ]),
            ),
            (
                "queue".to_string(),
                Json::Obj(vec![
                    ("depth".to_string(), Json::u64(self.queue_depth)),
                    ("rejected".to_string(), Json::u64(self.queue_rejected)),
                ]),
            ),
            (
                "ops".to_string(),
                Json::Arr(
                    self.ops
                        .iter()
                        .map(|o| {
                            Json::Obj(vec![
                                ("op".to_string(), Json::str(&o.op)),
                                ("count".to_string(), Json::u64(o.count)),
                                ("errors".to_string(), Json::u64(o.errors)),
                                ("p50_us".to_string(), Json::u64(o.p50_us)),
                                ("p99_us".to_string(), Json::u64(o.p99_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        let connections = value
            .get("connections")
            .ok_or_else(|| WireError::bad_request("server stats need `connections`"))?;
        let queue = value
            .get("queue")
            .ok_or_else(|| WireError::bad_request("server stats need `queue`"))?;
        let ops_json = value
            .get("ops")
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError::bad_request("server stats need an `ops` array"))?;
        let mut ops = Vec::with_capacity(ops_json.len());
        for o in ops_json {
            ops.push(WireOpStats {
                op: require_str(o, "op")?,
                count: require_u64(o, "count")?,
                errors: require_u64(o, "errors")?,
                p50_us: require_u64(o, "p50_us")?,
                p99_us: require_u64(o, "p99_us")?,
            });
        }
        Ok(WireServerStats {
            connections_open: require_u64(connections, "open")?,
            connections_rejected: require_u64(connections, "rejected")?,
            queue_depth: require_u64(queue, "depth")?,
            queue_rejected: require_u64(queue, "rejected")?,
            ops,
        })
    }
}

/// Payload of a successful response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Answer to `info`.
    Info {
        /// Human-readable sketcher configuration (the `SketcherSpec` display form).
        sketcher: String,
        /// The spec fingerprint, 16 lowercase hex digits.
        fingerprint: String,
        /// The sketch method label (`SketchMethod::label`).
        method: String,
        /// The catalog's on-disk format version label (e.g. `"v2"`); `"v1"`
        /// catalogs serve read-only until migrated.  Always sent by this server;
        /// optional on decode for compatibility with older transcripts.
        format: Option<String>,
        /// Every registered column.
        columns: Vec<InfoColumn>,
        /// Deterministic service statistics (always sent by this server; optional
        /// on decode for compatibility with older transcripts).
        stats: Option<WireServiceStats>,
        /// Live server observability; present only when the request set
        /// `"server": true`.
        server: Option<WireServerStats>,
        /// Cluster routing observability; present only when the answering
        /// process is a router fronting multiple catalog nodes.
        cluster: Option<Box<WireClusterStats>>,
    },
    /// Answer to `query`: the ranking for the one query column.
    Ranking {
        /// The ranked results, best first.
        ranking: Vec<WireRanked>,
        /// Advisory note when the server answered by a different path than the
        /// request asked for (e.g. cascade fallback); absent otherwise.
        note: Option<WireNote>,
    },
    /// Answer to `batch-query`: ranking `i` answers query `i`.
    Rankings {
        /// The rankings, one per query, each best first.
        rankings: Vec<Vec<WireRanked>>,
        /// Advisory note covering the whole batch; see
        /// [`ResponseBody::Ranking`].
        note: Option<WireNote>,
    },
    /// Answer to `ingest` and `ingest-finish`: what was registered/skipped.
    Report {
        /// `(table, column)` keys registered by this operation.
        registered: Vec<(String, String)>,
        /// Columns skipped for carrying no value mass.
        skipped: Vec<String>,
    },
    /// Answer to `ingest-begin` / `ingest-announce` / `ingest-submit`: the session
    /// the operation touched.
    Session(u64),
    /// Answer to `drop-column`: the key that was tombstoned.
    Dropped {
        /// Table name of the dropped column.
        table: String,
        /// Column name of the dropped column.
        column: String,
    },
    /// Answer to `export-column`: the column's verified sketch blob.
    Sketch(WireSketch),
}

/// One response line: the request's echoed `id` plus either a result or an error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's `id`, echoed verbatim.
    pub id: Json,
    /// The outcome.
    pub result: Result<ResponseBody, WireError>,
}

impl Response {
    /// Encodes the response as one line of JSON (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut members = vec![
            ("v".to_string(), Json::u64(PROTOCOL_VERSION)),
            ("id".to_string(), self.id.clone()),
        ];
        match &self.result {
            Ok(body) => {
                members.push(("ok".to_string(), Json::Bool(true)));
                members.push(("result".to_string(), body.to_json()));
            }
            Err(error) => {
                members.push(("ok".to_string(), Json::Bool(false)));
                members.push((
                    "error".to_string(),
                    Json::Obj(vec![
                        ("code".to_string(), Json::str(error.code.as_str())),
                        ("message".to_string(), Json::str(&error.message)),
                    ]),
                ));
            }
        }
        Json::Obj(members).to_string()
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a `bad_request` [`WireError`] when the line is not a well-formed
    /// response of this protocol version.
    pub fn decode(line: &str) -> Result<Response, WireError> {
        let doc = Json::parse(line).map_err(|e| WireError::bad_request(e.to_string()))?;
        let version = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| WireError::bad_request("missing protocol version field `v`"))?;
        if version != PROTOCOL_VERSION {
            return Err(WireError {
                code: ErrorCode::UnsupportedVersion,
                message: format!("response carries protocol version {version}"),
            });
        }
        let id = doc.get("id").cloned().unwrap_or(Json::Null);
        let ok = doc
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError::bad_request("missing boolean `ok`"))?;
        if !ok {
            let error = doc
                .get("error")
                .ok_or_else(|| WireError::bad_request("failure response missing `error`"))?;
            let code = require_str(error, "code")?;
            let code = ErrorCode::parse(&code)
                .ok_or_else(|| WireError::bad_request(format!("unknown error code `{code}`")))?;
            return Ok(Response {
                id,
                result: Err(WireError {
                    code,
                    message: require_str(error, "message")?,
                }),
            });
        }
        let result = doc
            .get("result")
            .ok_or_else(|| WireError::bad_request("success response missing `result`"))?;
        Ok(Response {
            id,
            result: Ok(ResponseBody::from_json(result)?),
        })
    }
}

impl ResponseBody {
    fn to_json(&self) -> Json {
        match self {
            ResponseBody::Info {
                sketcher,
                fingerprint,
                method,
                format,
                columns,
                stats,
                server,
                cluster,
            } => {
                let mut info = vec![
                    ("sketcher".to_string(), Json::str(sketcher)),
                    ("fingerprint".to_string(), Json::str(fingerprint)),
                    ("method".to_string(), Json::str(method)),
                ];
                if let Some(format) = format {
                    info.push(("format".to_string(), Json::str(format)));
                }
                info.push((
                    "columns".to_string(),
                    Json::Arr(
                        columns
                            .iter()
                            .map(|c| {
                                Json::Obj(vec![
                                    ("table".to_string(), Json::str(&c.table)),
                                    ("column".to_string(), Json::str(&c.column)),
                                    ("rows".to_string(), Json::u64(c.rows)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                if let Some(stats) = stats {
                    info.push(("stats".to_string(), stats.to_json()));
                }
                if let Some(server) = server {
                    info.push(("server".to_string(), server.to_json()));
                }
                if let Some(cluster) = cluster {
                    info.push(("cluster".to_string(), cluster.to_json()));
                }
                Json::Obj(vec![("info".to_string(), Json::Obj(info))])
            }
            ResponseBody::Ranking { ranking, note } => {
                let mut members = vec![(
                    "ranking".to_string(),
                    Json::Arr(ranking.iter().map(WireRanked::to_json).collect()),
                )];
                if let Some(note) = note {
                    members.push(("note".to_string(), note.to_json()));
                }
                Json::Obj(members)
            }
            ResponseBody::Rankings { rankings, note } => {
                let mut members = vec![(
                    "rankings".to_string(),
                    Json::Arr(
                        rankings
                            .iter()
                            .map(|r| Json::Arr(r.iter().map(WireRanked::to_json).collect()))
                            .collect(),
                    ),
                )];
                if let Some(note) = note {
                    members.push(("note".to_string(), note.to_json()));
                }
                Json::Obj(members)
            }
            ResponseBody::Report {
                registered,
                skipped,
            } => Json::Obj(vec![
                (
                    "registered".to_string(),
                    Json::Arr(
                        registered
                            .iter()
                            .map(|(t, c)| {
                                Json::Obj(vec![
                                    ("table".to_string(), Json::str(t)),
                                    ("column".to_string(), Json::str(c)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "skipped".to_string(),
                    Json::Arr(skipped.iter().map(Json::str).collect()),
                ),
            ]),
            ResponseBody::Session(session) => {
                Json::Obj(vec![("session".to_string(), Json::u64(*session))])
            }
            ResponseBody::Dropped { table, column } => Json::Obj(vec![(
                "dropped".to_string(),
                Json::Obj(vec![
                    ("table".to_string(), Json::str(table)),
                    ("column".to_string(), Json::str(column)),
                ]),
            )]),
            ResponseBody::Sketch(sketch) => {
                Json::Obj(vec![("sketch".to_string(), sketch.to_json())])
            }
        }
    }

    fn from_json(value: &Json) -> Result<Self, WireError> {
        if let Some(info) = value.get("info") {
            let columns_json = info
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::bad_request("info needs a `columns` array"))?;
            let mut columns = Vec::with_capacity(columns_json.len());
            for c in columns_json {
                columns.push(InfoColumn {
                    table: require_str(c, "table")?,
                    column: require_str(c, "column")?,
                    rows: c
                        .get("rows")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| WireError::bad_request("info column needs `rows`"))?,
                });
            }
            return Ok(ResponseBody::Info {
                sketcher: require_str(info, "sketcher")?,
                fingerprint: require_str(info, "fingerprint")?,
                method: require_str(info, "method")?,
                format: info
                    .get("format")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                columns,
                stats: match info.get("stats") {
                    None => None,
                    Some(s) => Some(WireServiceStats::from_json(s)?),
                },
                server: match info.get("server") {
                    None => None,
                    Some(s) => Some(WireServerStats::from_json(s)?),
                },
                cluster: match info.get("cluster") {
                    None => None,
                    Some(c) => Some(Box::new(WireClusterStats::from_json(c)?)),
                },
            });
        }
        if let Some(ranking) = value.get("ranking").and_then(Json::as_arr) {
            return Ok(ResponseBody::Ranking {
                ranking: decode_ranking(ranking)?,
                note: decode_note(value)?,
            });
        }
        if let Some(rankings) = value.get("rankings").and_then(Json::as_arr) {
            let mut out = Vec::with_capacity(rankings.len());
            for ranking in rankings {
                let items = ranking
                    .as_arr()
                    .ok_or_else(|| WireError::bad_request("`rankings` must hold arrays"))?;
                out.push(decode_ranking(items)?);
            }
            return Ok(ResponseBody::Rankings {
                rankings: out,
                note: decode_note(value)?,
            });
        }
        if let Some(registered) = value.get("registered").and_then(Json::as_arr) {
            let mut pairs = Vec::with_capacity(registered.len());
            for entry in registered {
                pairs.push((require_str(entry, "table")?, require_str(entry, "column")?));
            }
            let skipped_json = value
                .get("skipped")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::bad_request("report needs a `skipped` array"))?;
            let mut skipped = Vec::with_capacity(skipped_json.len());
            for s in skipped_json {
                skipped.push(
                    s.as_str()
                        .ok_or_else(|| WireError::bad_request("`skipped` must hold strings"))?
                        .to_string(),
                );
            }
            return Ok(ResponseBody::Report {
                registered: pairs,
                skipped,
            });
        }
        if let Some(session) = value.get("session").and_then(Json::as_u64) {
            return Ok(ResponseBody::Session(session));
        }
        if let Some(dropped) = value.get("dropped") {
            return Ok(ResponseBody::Dropped {
                table: require_str(dropped, "table")?,
                column: require_str(dropped, "column")?,
            });
        }
        if let Some(sketch) = value.get("sketch") {
            return Ok(ResponseBody::Sketch(WireSketch::from_json(sketch)?));
        }
        Err(WireError::bad_request(
            "unrecognized result payload (expected info/ranking/rankings/registered/session/dropped/sketch)",
        ))
    }
}

fn decode_ranking(items: &[Json]) -> Result<Vec<WireRanked>, WireError> {
    items.iter().map(WireRanked::from_json).collect()
}

fn decode_note(value: &Json) -> Result<Option<WireNote>, WireError> {
    match value.get("note") {
        None => Ok(None),
        Some(note) => Ok(Some(WireNote::from_json(note)?)),
    }
}

fn require_str(value: &Json, key: &str) -> Result<String, WireError> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| WireError::bad_request(format!("missing string field `{key}`")))
}

fn require_u64(value: &Json, key: &str) -> Result<u64, WireError> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| WireError::bad_request(format!("missing integer field `{key}`")))
}

fn require_f64(value: &Json, key: &str) -> Result<f64, WireError> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| WireError::bad_request(format!("missing number field `{key}`")))
}

fn require_u64_array(value: &Json, key: &str) -> Result<Vec<u64>, WireError> {
    let items = value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError::bad_request(format!("missing array field `{key}`")))?;
    items
        .iter()
        .map(|item| {
            item.as_u64().ok_or_else(|| {
                WireError::bad_request(format!(
                    "`{key}` must hold non-negative JSON integers (64-bit join keys)"
                ))
            })
        })
        .collect()
}

fn require_f64_array(value: &Json, key: &str) -> Result<Vec<f64>, WireError> {
    let items = value
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| WireError::bad_request(format!("missing array field `{key}`")))?;
    items
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| WireError::bad_request(format!("`{key}` must hold numbers")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> WireQuery {
        WireQuery {
            table: "taxi".to_string(),
            column: "rides".to_string(),
            keys: vec![1, 2, u64::MAX],
            values: vec![0.5, -1.25, 3.0],
        }
    }

    fn sample_table() -> WireTable {
        WireTable {
            name: "weather".to_string(),
            keys: vec![10, 11],
            columns: vec![
                WireColumn {
                    name: "precip".to_string(),
                    values: vec![1.0, 2.5],
                },
                WireColumn {
                    name: "wind".to_string(),
                    values: vec![0.0, -3.5],
                },
            ],
        }
    }

    #[test]
    fn every_request_round_trips() {
        let bodies = vec![
            RequestBody::Info { server: false },
            RequestBody::Info { server: true },
            RequestBody::Query {
                mode: Mode::Related,
                k: 5,
                min_join_size: 42.5,
                cascade: false,
                query: sample_query(),
            },
            RequestBody::Query {
                mode: Mode::Joinable,
                k: 5,
                min_join_size: 0.0,
                cascade: true,
                query: sample_query(),
            },
            RequestBody::BatchQuery {
                mode: Mode::Joinable,
                k: 3,
                min_join_size: 0.0,
                cascade: false,
                queries: vec![sample_query(), sample_query()],
            },
            RequestBody::BatchQuery {
                mode: Mode::Joinable,
                k: 3,
                min_join_size: 0.0,
                cascade: true,
                queries: vec![sample_query()],
            },
            RequestBody::Ingest {
                table: sample_table(),
                partitions: Some(4),
            },
            RequestBody::Ingest {
                table: sample_table(),
                partitions: None,
            },
            RequestBody::IngestBegin {
                table: "weather".to_string(),
            },
            RequestBody::IngestAnnounce {
                session: 9,
                shard: sample_table(),
            },
            RequestBody::IngestSubmit {
                session: 9,
                shard: sample_table(),
            },
            RequestBody::IngestFinish { session: 9 },
            RequestBody::DropColumn {
                table: "weather".to_string(),
                column: "precip".to_string(),
            },
            RequestBody::ExportColumn {
                table: "weather".to_string(),
                column: "precip".to_string(),
            },
            RequestBody::ImportColumn {
                sketch: WireSketch {
                    table: "weather".to_string(),
                    column: "precip".to_string(),
                    rows: 730,
                    bytes: vec![0x00, 0x1f, 0xab, 0xff],
                },
            },
        ];
        for body in bodies {
            let request = Request {
                id: Json::u64(77),
                body,
            };
            let line = request.encode();
            let decoded = Request::decode(&line).unwrap_or_else(|e| {
                panic!("round trip of `{line}` failed: {}", e.error);
            });
            assert_eq!(decoded, request, "{line}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        let ranked = WireRanked {
            table: "weather".to_string(),
            column: "precip".to_string(),
            score: 123.456,
            join_size: 123.456,
            correlation: -0.75,
        };
        let bodies = vec![
            ResponseBody::Info {
                sketcher: "WMH(m=64, L=16777216, seed=7)".to_string(),
                fingerprint: "00ff00ff00ff00ff".to_string(),
                method: "WMH".to_string(),
                format: None,
                columns: vec![InfoColumn {
                    table: "weather".to_string(),
                    column: "precip".to_string(),
                    rows: 730,
                }],
                stats: None,
                server: None,
                cluster: None,
            },
            ResponseBody::Info {
                sketcher: "WMH(m=64, L=16777216, seed=7)".to_string(),
                fingerprint: "00ff00ff00ff00ff".to_string(),
                method: "WMH".to_string(),
                format: Some("v2".to_string()),
                columns: vec![],
                stats: Some(WireServiceStats {
                    columns: 3,
                    hydrated: 2,
                    bytes_on_disk: 4096,
                    last_compaction: Some(WireCompaction {
                        removed_files: 1,
                        live_columns: 3,
                    }),
                }),
                server: Some(WireServerStats {
                    connections_open: 4,
                    connections_rejected: 1,
                    queue_depth: 0,
                    queue_rejected: 7,
                    ops: vec![WireOpStats {
                        op: "query".to_string(),
                        count: 100,
                        errors: 2,
                        p50_us: 512,
                        p99_us: 4096,
                    }],
                }),
                cluster: Some(Box::new(WireClusterStats {
                    replicas: 2,
                    requests: 41,
                    fanouts: 123,
                    failovers: 1,
                    nodes: vec![
                        WireNodeStats {
                            addr: "127.0.0.1:7001".to_string(),
                            transport: "tcp".to_string(),
                            healthy: true,
                            errors: 0,
                            demotions: 0,
                            promotions: 0,
                            probes: 0,
                        },
                        WireNodeStats {
                            addr: "127.0.0.1:7002".to_string(),
                            transport: "http".to_string(),
                            healthy: false,
                            errors: 3,
                            demotions: 2,
                            promotions: 1,
                            probes: 9,
                        },
                    ],
                })),
            },
            ResponseBody::Ranking {
                ranking: vec![ranked.clone()],
                note: None,
            },
            ResponseBody::Ranking {
                ranking: vec![ranked.clone()],
                note: Some(WireNote {
                    code: "cascade_fallback".to_string(),
                    message: "catalog stores no companion sketches".to_string(),
                }),
            },
            ResponseBody::Rankings {
                rankings: vec![vec![ranked.clone()], vec![]],
                note: None,
            },
            ResponseBody::Rankings {
                rankings: vec![vec![ranked.clone()]],
                note: Some(WireNote {
                    code: "cascade_fallback".to_string(),
                    message: "catalog stores no companion sketches".to_string(),
                }),
            },
            ResponseBody::Report {
                registered: vec![("weather".to_string(), "precip".to_string())],
                skipped: vec!["zeros".to_string()],
            },
            ResponseBody::Session(3),
            ResponseBody::Dropped {
                table: "weather".to_string(),
                column: "precip".to_string(),
            },
            ResponseBody::Sketch(WireSketch {
                table: "weather".to_string(),
                column: "precip".to_string(),
                rows: 730,
                bytes: (0..=255).collect(),
            }),
        ];
        for body in bodies {
            let response = Response {
                id: Json::str("abc"),
                result: Ok(body),
            };
            let line = response.encode();
            assert_eq!(
                Response::decode(&line).expect("round trips"),
                response,
                "{line}"
            );
        }
        let failure = Response {
            id: Json::Null,
            result: Err(WireError {
                code: ErrorCode::DuplicateColumn,
                message: "column `weather.precip` is already in the catalog".to_string(),
            }),
        };
        assert_eq!(
            Response::decode(&failure.encode()).expect("round trips"),
            failure
        );
    }

    #[test]
    fn version_and_op_rules_are_enforced() {
        // Missing version.
        let err = Request::decode(r#"{"op":"info"}"#).expect_err("no v");
        assert_eq!(err.error.code, ErrorCode::BadRequest);
        // Wrong version, id still recovered for correlation.
        let err = Request::decode(r#"{"v":2,"id":8,"op":"info"}"#).expect_err("v2");
        assert_eq!(err.error.code, ErrorCode::UnsupportedVersion);
        assert_eq!(err.id.as_u64(), Some(8));
        // Unknown op.
        let err = Request::decode(r#"{"v":1,"op":"frobnicate"}"#).expect_err("op");
        assert_eq!(err.error.code, ErrorCode::UnknownOp);
        // Not JSON at all.
        let err = Request::decode("hello").expect_err("not json");
        assert_eq!(err.error.code, ErrorCode::BadRequest);
        assert!(err.id.is_null());
        // Unknown fields are ignored (forward compatibility).
        let ok = Request::decode(r#"{"v":1,"op":"info","future_field":[1,2,3]}"#).expect("ok");
        assert_eq!(ok.body, RequestBody::Info { server: false });
    }

    #[test]
    fn defaults_apply_when_fields_are_omitted() {
        let line =
            r#"{"v":1,"op":"query","query":{"table":"t","column":"c","keys":[1],"values":[2.0]}}"#;
        match Request::decode(line).expect("decodes").body {
            RequestBody::Query {
                mode,
                k,
                min_join_size,
                cascade,
                ..
            } => {
                assert_eq!(mode, Mode::Joinable);
                assert_eq!(k, DEFAULT_TOP_K);
                assert_eq!(min_join_size, 0.0);
                assert!(!cascade);
            }
            other => panic!("wrong body {other:?}"),
        }
    }

    #[test]
    fn cascade_knob_is_strict_and_encodes_only_when_set() {
        // Omitting `cascade` and `cascade: false` encode identically — replayed
        // pre-cascade transcripts stay byte-stable.
        let flat = Request {
            id: Json::Null,
            body: RequestBody::Query {
                mode: Mode::Joinable,
                k: 3,
                min_join_size: 0.0,
                cascade: false,
                query: sample_query(),
            },
        };
        assert!(!flat.encode().contains("cascade"));
        let cascaded = Request {
            id: Json::Null,
            body: RequestBody::Query {
                mode: Mode::Joinable,
                k: 3,
                min_join_size: 0.0,
                cascade: true,
                query: sample_query(),
            },
        };
        assert!(cascaded.encode().contains(r#""cascade":true"#));
        // Non-boolean `cascade` is rejected, not coerced.
        let err = Request::decode(
            r#"{"v":1,"op":"query","cascade":1,"query":{"table":"t","column":"c","keys":[1],"values":[2.0]}}"#,
        )
        .expect_err("non-bool cascade");
        assert_eq!(err.error.code, ErrorCode::BadRequest);
    }

    #[test]
    fn ranking_notes_encode_only_when_present() {
        let plain = Response {
            id: Json::Null,
            result: Ok(ResponseBody::Ranking {
                ranking: vec![],
                note: None,
            }),
        };
        assert!(!plain.encode().contains("note"));
        let noted = Response {
            id: Json::Null,
            result: Ok(ResponseBody::Ranking {
                ranking: vec![],
                note: Some(WireNote {
                    code: "cascade_fallback".to_string(),
                    message: "flat scan answered".to_string(),
                }),
            }),
        };
        let line = noted.encode();
        assert!(
            line.contains(r#""note":{"code":"cascade_fallback""#),
            "{line}"
        );
        // A note without both members is a malformed response.
        let err = Response::decode(
            r#"{"v":1,"id":null,"ok":true,"result":{"ranking":[],"note":{"code":"x"}}}"#,
        )
        .expect_err("note missing message");
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn tables_enforce_invariants_on_conversion() {
        let ragged = WireTable {
            name: "t".to_string(),
            keys: vec![1, 2],
            columns: vec![WireColumn {
                name: "c".to_string(),
                values: vec![1.0],
            }],
        };
        assert_eq!(
            ragged.to_table().expect_err("ragged").code,
            ErrorCode::BadRequest
        );
        let duplicate_keys = WireQuery {
            table: "t".to_string(),
            column: "c".to_string(),
            keys: vec![1, 1],
            values: vec![1.0, 2.0],
        };
        assert_eq!(
            duplicate_keys.to_table().expect_err("dup keys").code,
            ErrorCode::BadRequest
        );
        // A valid round trip Table → WireTable → Table preserves everything.
        let table = sample_table().to_table().expect("valid");
        assert_eq!(WireTable::from_table(&table), sample_table());
    }

    #[test]
    fn error_codes_have_stable_distinct_tokens() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
        let mut tokens: Vec<&str> = ErrorCode::ALL.iter().map(|c| c.as_str()).collect();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), ErrorCode::ALL.len());
        assert_eq!(ErrorCode::parse("made_up"), None);
    }

    #[test]
    fn http_statuses_are_sane_for_every_code() {
        for code in ErrorCode::ALL {
            let status = code.http_status();
            assert!(
                (400..=599).contains(&status),
                "{code} maps to non-error status {status}"
            );
        }
        assert_eq!(ErrorCode::Overloaded.http_status(), 503);
        assert_eq!(ErrorCode::UnknownOp.http_status(), 404);
        assert_eq!(ErrorCode::TooLarge.http_status(), 413);
        assert_eq!(ErrorCode::DeadlineExceeded.http_status(), 504);
    }

    #[test]
    fn sketch_blobs_survive_hex_encoding_and_reject_bad_hex() {
        let blob: Vec<u8> = (0..=255).collect();
        assert_eq!(decode_hex(&encode_hex(&blob)).expect("round trips"), blob);
        assert_eq!(encode_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
        assert_eq!(
            decode_hex("abc").expect_err("odd length").code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            decode_hex("zz").expect_err("not hex").code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn info_requests_without_server_flag_encode_without_the_member() {
        let plain = Request {
            id: Json::Null,
            body: RequestBody::Info { server: false },
        };
        assert!(!plain.encode().contains("server"));
        let observed = Request {
            id: Json::Null,
            body: RequestBody::Info { server: true },
        };
        assert!(observed.encode().contains(r#""server":true"#));
    }

    #[test]
    fn catalog_errors_map_onto_distinct_codes() {
        let cases: Vec<(CatalogError, ErrorCode)> = vec![
            (
                CatalogError::Io {
                    path: "/x".into(),
                    detail: "denied".into(),
                },
                ErrorCode::Io,
            ),
            (
                CatalogError::Corrupt {
                    detail: "short".into(),
                },
                ErrorCode::Corrupt,
            ),
            (
                CatalogError::NotACatalog {
                    path: "/x".into(),
                    detail: "no manifest".into(),
                },
                ErrorCode::NotACatalog,
            ),
            (
                CatalogError::Incompatible {
                    detail: "seed".into(),
                },
                ErrorCode::Incompatible,
            ),
            (
                CatalogError::DuplicateColumn {
                    table: "t".into(),
                    column: "c".into(),
                },
                ErrorCode::DuplicateColumn,
            ),
            (
                CatalogError::NotFound {
                    table: "t".into(),
                    column: "c".into(),
                },
                ErrorCode::NotFound,
            ),
            (
                CatalogError::Sketch(ipsketch_core::SketchError::EmptySketch),
                ErrorCode::Sketch,
            ),
            (
                CatalogError::Join(JoinError::NotIndexed {
                    table: "t".into(),
                    column: "c".into(),
                }),
                ErrorCode::Join,
            ),
        ];
        for (error, code) in cases {
            let wire: WireError = error.into();
            assert_eq!(wire.code, code);
            assert!(!wire.message.is_empty());
        }
    }
}
