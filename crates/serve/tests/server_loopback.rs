//! Loopback integration tests of the network front end (`--features server`).
//!
//! The acceptance bar: answers served over the wire are **bit-identical** to the
//! single-threaded in-process `QueryService` answers — including while concurrent
//! clients overlap with a shard-partial ingest.

#![cfg(feature = "server")]

use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_core::SketcherSpec;
use ipsketch_data::{Column, Table};
use ipsketch_join::RankedColumn;
use ipsketch_serve::protocol::{
    ErrorCode, Mode, Request, RequestBody, Response, ResponseBody, WireQuery, WireRanked, WireTable,
};
use ipsketch_serve::server::{serve, ServerConfig, ServerHandle};
use ipsketch_serve::wire::Json;
use ipsketch_serve::{shard_rows, QueryService};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsketch-loopback-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec_for(method: SketchMethod, seed: u64) -> SketcherSpec {
    AnySketcher::for_budget(method, 256.0, seed)
        .expect("budget fits")
        .spec()
}

/// The service-test lake: "query.rides" joins heavily with "good.precip", not "bad".
fn lake() -> (Table, Table, Table) {
    let query = Table::new(
        "query",
        (0..400).collect(),
        vec![Column::new(
            "rides",
            (0..400).map(|i| f64::from(i) + 1.0).collect(),
        )],
    )
    .expect("table");
    let good = Table::new(
        "good",
        (100..500).collect(),
        vec![
            Column::new(
                "precip",
                (100..500).map(|i| 2.0 * f64::from(i) + 3.0).collect(),
            ),
            Column::new(
                "noise",
                (0..400).map(|i| f64::from((i * 37) % 11) - 5.0).collect(),
            ),
        ],
    )
    .expect("table");
    let bad = Table::new(
        "bad",
        (10_000..10_400).collect(),
        vec![Column::new(
            "other",
            (0..400).map(|i| f64::from(i % 7) + 1.0).collect(),
        )],
    )
    .expect("table");
    (query, good, bad)
}

/// The stock test config: TCP framer on an ephemeral port, everything else default.
fn tcp_config() -> ServerConfig {
    ServerConfig::builder()
        .tcp("127.0.0.1:0")
        .build()
        .expect("valid config")
}

/// A blocking line-protocol client.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.tcp_addr().expect("tcp bound")).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv_raw(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn call(&mut self, request: &Request) -> Response {
        self.send_raw(&request.encode());
        Response::decode(&self.recv_raw()).expect("well-formed response")
    }
}

fn wire_query(table: &Table, column: &str) -> WireQuery {
    let values = table
        .columns()
        .iter()
        .find(|c| c.name == column)
        .expect("column exists")
        .values
        .clone();
    WireQuery {
        table: table.name().to_string(),
        column: column.to_string(),
        keys: table.keys().to_vec(),
        values,
    }
}

/// Asserts a served ranking equals an in-process one bit for bit.
fn assert_bit_identical(served: &[WireRanked], in_process: &[RankedColumn]) {
    assert_eq!(served.len(), in_process.len(), "ranking lengths differ");
    for (s, p) in served.iter().zip(in_process) {
        assert_eq!(s.table, p.id.table);
        assert_eq!(s.column, p.id.column);
        assert_eq!(s.score.to_bits(), p.score.to_bits(), "score drift");
        assert_eq!(
            s.join_size.to_bits(),
            p.estimated_join_size.to_bits(),
            "join size drift"
        );
        assert_eq!(
            s.correlation.to_bits(),
            p.estimated_correlation.to_bits(),
            "correlation drift"
        );
    }
}

#[test]
fn served_batch_queries_are_bit_identical_to_in_process_answers() {
    let root = temp_root("bitident");
    let (query, good, bad) = lake();
    let mut service =
        QueryService::create(&root, spec_for(SketchMethod::WeightedMinHash, 11)).expect("create");
    service.ingest_table(&good).expect("good");
    service.ingest_table(&bad).expect("bad");

    // In-process ground truth, through the exact public batch path.
    let q1 = service.sketch_query(&query, "rides").expect("q1");
    let q2 = service.sketch_query(&good, "precip").expect("q2");
    let expected = service
        .query_joinable_batch(&[q1.clone(), q2], 5)
        .expect("in-process batch");
    let expected_related = service.query_related(&q1, 3, 10.0).expect("related");

    let handle = serve(service, tcp_config()).expect("serve");
    let mut client = Client::connect(&handle);

    let response = client.call(&Request {
        id: Json::u64(1),
        body: RequestBody::BatchQuery {
            mode: Mode::Joinable,
            k: 5,
            min_join_size: 0.0,
            cascade: false,
            queries: vec![wire_query(&query, "rides"), wire_query(&good, "precip")],
        },
    });
    assert_eq!(response.id.as_u64(), Some(1));
    match response.result.expect("batch succeeds") {
        ResponseBody::Rankings { rankings, .. } => {
            assert_eq!(rankings.len(), expected.len());
            for (served, in_process) in rankings.iter().zip(&expected) {
                assert_bit_identical(served, in_process);
            }
        }
        other => panic!("expected rankings, got {other:?}"),
    }

    // Single-query related mode matches too.
    let response = client.call(&Request {
        id: Json::str("rel"),
        body: RequestBody::Query {
            mode: Mode::Related,
            k: 3,
            min_join_size: 10.0,
            cascade: false,
            query: wire_query(&query, "rides"),
        },
    });
    match response.result.expect("related succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected_related),
        other => panic!("expected ranking, got {other:?}"),
    }

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn reopened_catalogs_hydrate_lazily_behind_the_read_write_lock() {
    let root = temp_root("hydrate");
    let (query, good, bad) = lake();
    let spec = spec_for(SketchMethod::Kmv, 5);
    {
        let mut service = QueryService::create(&root, spec).expect("create");
        service.ingest_table(&good).expect("good");
        service.ingest_table(&bad).expect("bad");
    }
    // Ground truth from a separately reopened service.
    let mut in_process = QueryService::open(&root).expect("open");
    let q = in_process.sketch_query(&query, "rides").expect("sketch");
    let expected = in_process.query_joinable(&q, 3).expect("rank");

    // The served service starts cold (nothing hydrated): the first wire query takes
    // the write lock to hydrate, then answers under the read lock.
    let cold = QueryService::open(&root).expect("open cold");
    assert_eq!(cold.hydrated_len(), 0);
    let handle = serve(cold, tcp_config()).expect("serve");
    let mut client = Client::connect(&handle);
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k: 3,
            min_join_size: 0.0,
            cascade: false,
            query: wire_query(&query, "rides"),
        },
    });
    match response.result.expect("query succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
        other => panic!("expected ranking, got {other:?}"),
    }
    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn parallel_clients_during_sharded_ingest_see_only_consistent_states() {
    let root = temp_root("overlap");
    let (query, good, bad) = lake();
    let extra = Table::new(
        "extra",
        (150..550).collect(),
        vec![Column::new(
            "depth",
            (150..550).map(|i| 3.0 * f64::from(i) - 7.0).collect(),
        )],
    )
    .expect("table");
    let spec = spec_for(SketchMethod::WeightedMinHash, 23);
    let shards = 3;

    // Twin catalog computes both consistent answers in-process: before the extra
    // table lands, and after it lands via the *same* sharded path (identical shard
    // split, identical estimator → bit-identical partial folds).
    let twin_root = temp_root("overlap-twin");
    let mut twin = QueryService::create(&twin_root, spec).expect("twin");
    twin.ingest_table(&good).expect("good");
    twin.ingest_table(&bad).expect("bad");
    let q = twin.sketch_query(&query, "rides").expect("sketch");
    let before = twin.query_joinable(&q, 5).expect("before");
    {
        let mut session = twin.begin_sharded_ingest(extra.name());
        for shard in &shard_rows(&extra, shards) {
            session.announce(shard).expect("announce");
        }
        for shard in &shard_rows(&extra, shards) {
            session.submit(twin.estimator(), shard).expect("submit");
        }
        twin.finish_sharded_ingest(session).expect("finish");
    }
    let after = twin.query_joinable(&q, 5).expect("after");
    assert_ne!(
        before, after,
        "the extra table must change the top-5 so the assertion below has teeth"
    );

    let mut service = QueryService::create(&root, spec).expect("create");
    service.ingest_table(&good).expect("good");
    service.ingest_table(&bad).expect("bad");
    let handle = serve(service, tcp_config()).expect("serve");

    // Queriers hammer the server from their own connections while the main thread
    // drives the sharded ingest over the wire.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let queriers: Vec<_> = (0..2)
        .map(|worker| {
            let stop = std::sync::Arc::clone(&stop);
            let query = query.clone();
            let before = before.clone();
            let after = after.clone();
            let mut client = Client::connect(&handle);
            std::thread::spawn(move || {
                let mut observed_after = false;
                let mut rounds = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || rounds == 0 {
                    rounds += 1;
                    let response = client.call(&Request {
                        id: Json::u64(u64::from(rounds)),
                        body: RequestBody::BatchQuery {
                            mode: Mode::Joinable,
                            k: 5,
                            min_join_size: 0.0,
                            cascade: false,
                            queries: vec![wire_query(&query, "rides")],
                        },
                    });
                    assert_eq!(response.id.as_u64(), Some(u64::from(rounds)));
                    let rankings = match response.result.expect("query succeeds") {
                        ResponseBody::Rankings { rankings, .. } => rankings,
                        other => panic!("worker {worker}: expected rankings, got {other:?}"),
                    };
                    let ranking = &rankings[0];
                    // Every observation must be one of the two consistent states —
                    // never a torn mix — and bit-identical to in-process answers.
                    let matches_before = ranking.len() == before.len()
                        && ranking
                            .iter()
                            .zip(&before)
                            .all(|(s, p)| s.table == p.id.table && s.column == p.id.column);
                    if matches_before {
                        assert_bit_identical(ranking, &before);
                    } else {
                        assert_bit_identical(ranking, &after);
                        observed_after = true;
                    }
                }
                observed_after
            })
        })
        .collect();

    // Drive the two-pass protocol over its own connection, with pauses so queriers
    // interleave with every phase.
    let mut ingest_client = Client::connect(&handle);
    let session = match ingest_client
        .call(&Request {
            id: Json::Null,
            body: RequestBody::IngestBegin {
                table: extra.name().to_string(),
            },
        })
        .result
        .expect("begin")
    {
        ResponseBody::Session(session) => session,
        other => panic!("expected session, got {other:?}"),
    };
    let wire_shards: Vec<WireTable> = shard_rows(&extra, shards)
        .iter()
        .map(WireTable::from_table)
        .collect();
    for shard in &wire_shards {
        ingest_client
            .call(&Request {
                id: Json::Null,
                body: RequestBody::IngestAnnounce {
                    session,
                    shard: shard.clone(),
                },
            })
            .result
            .expect("announce");
        std::thread::sleep(Duration::from_millis(10));
    }
    for shard in &wire_shards {
        ingest_client
            .call(&Request {
                id: Json::Null,
                body: RequestBody::IngestSubmit {
                    session,
                    shard: shard.clone(),
                },
            })
            .result
            .expect("submit");
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = ingest_client
        .call(&Request {
            id: Json::Null,
            body: RequestBody::IngestFinish { session },
        })
        .result
        .expect("finish");
    match report {
        ResponseBody::Report { registered, .. } => {
            assert_eq!(registered, vec![("extra".to_string(), "depth".to_string())]);
        }
        other => panic!("expected report, got {other:?}"),
    }

    // Post-ingest queries must observe the after state.
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let saw_after: Vec<bool> = queriers
        .into_iter()
        .map(|t| t.join().expect("querier"))
        .collect();
    let mut confirm = Client::connect(&handle);
    let response = confirm.call(&Request {
        id: Json::Null,
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k: 5,
            min_join_size: 0.0,
            cascade: false,
            query: wire_query(&query, "rides"),
        },
    });
    match response.result.expect("post-ingest query") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &after),
        other => panic!("expected ranking, got {other:?}"),
    }
    // At least the confirming query saw the new state; typically the background
    // queriers did too (they may legitimately all finish before the ingest lands).
    drop(saw_after);

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
    fs::remove_dir_all(&twin_root).expect("cleanup");
}

#[test]
fn protocol_errors_leave_the_connection_usable() {
    let root = temp_root("errors");
    let (_, good, _) = lake();
    let mut service = QueryService::create(&root, spec_for(SketchMethod::Kmv, 3)).expect("create");
    service.ingest_table(&good).expect("good");
    let handle = serve(service, tcp_config()).expect("serve");
    let mut client = Client::connect(&handle);

    // Malformed JSON.
    client.send_raw("this is not json");
    let response = Response::decode(&client.recv_raw()).expect("decodes");
    assert_eq!(
        response.result.expect_err("fails").code,
        ErrorCode::BadRequest
    );

    // Wrong version, id echoed.
    client.send_raw(r#"{"v":99,"id":"x","op":"info"}"#);
    let response = Response::decode(&client.recv_raw()).expect("decodes");
    assert_eq!(response.id.as_str(), Some("x"));
    assert_eq!(
        response.result.expect_err("fails").code,
        ErrorCode::UnsupportedVersion
    );

    // Unknown op.
    client.send_raw(r#"{"v":1,"op":"frobnicate"}"#);
    let response = Response::decode(&client.recv_raw()).expect("decodes");
    assert_eq!(
        response.result.expect_err("fails").code,
        ErrorCode::UnknownOp
    );

    // Unknown session.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::IngestFinish { session: 424_242 },
    });
    assert_eq!(
        response.result.expect_err("fails").code,
        ErrorCode::UnknownSession
    );

    // Query for a column the request does not carry → join-layer error.
    client.send_raw(
        r#"{"v":1,"op":"query","query":{"table":"t","column":"c","keys":[1,1],"values":[1.0,2.0]}}"#,
    );
    let response = Response::decode(&client.recv_raw()).expect("decodes");
    assert_eq!(
        response.result.expect_err("fails").code,
        ErrorCode::BadRequest
    );

    // The same connection still serves real requests.
    let response = client.call(&Request {
        id: Json::u64(7),
        body: RequestBody::Info { server: false },
    });
    match response.result.expect("info succeeds") {
        ResponseBody::Info {
            method, columns, ..
        } => {
            assert_eq!(method, "KMV");
            assert_eq!(columns.len(), 2);
        }
        other => panic!("expected info, got {other:?}"),
    }

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn pipelined_requests_answer_in_order() {
    let root = temp_root("pipeline");
    let (query, good, _) = lake();
    let mut service = QueryService::create(&root, spec_for(SketchMethod::Jl, 9)).expect("create");
    service.ingest_table(&good).expect("good");
    let handle = serve(service, tcp_config()).expect("serve");
    let mut client = Client::connect(&handle);

    // Three requests in one burst; responses must come back in request order.
    let mut burst = String::new();
    for id in 0..3u64 {
        let request = Request {
            id: Json::u64(id),
            body: if id == 1 {
                RequestBody::Info { server: false }
            } else {
                RequestBody::Query {
                    mode: Mode::Joinable,
                    k: 2,
                    min_join_size: 0.0,
                    cascade: false,
                    query: wire_query(&query, "rides"),
                }
            },
        };
        burst.push_str(&request.encode());
        burst.push('\n');
    }
    client.writer.write_all(burst.as_bytes()).expect("burst");
    for id in 0..3u64 {
        let response = Response::decode(&client.recv_raw()).expect("decodes");
        assert_eq!(response.id.as_u64(), Some(id), "responses out of order");
        assert!(response.result.is_ok());
    }

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn oversized_lines_fail_typed_and_close() {
    let root = temp_root("toolarge");
    let service = QueryService::create(&root, spec_for(SketchMethod::Kmv, 1)).expect("create");
    let config = ServerConfig::builder()
        .tcp("127.0.0.1:0")
        .max_line_bytes(1024)
        .build()
        .expect("valid config");
    let handle = serve(service, config).expect("serve");
    let mut client = Client::connect(&handle);
    // An oversized line followed by a perfectly valid request: the valid request
    // must never be answered (framing is broken past the bound), and exactly one
    // error comes back even though the client kept sending.
    client.send_raw(&"x".repeat(4096));
    client.send_raw(r#"{"v":1,"id":1,"op":"info"}"#);
    let response = Response::decode(&client.recv_raw()).expect("decodes");
    assert_eq!(
        response.result.expect_err("fails").code,
        ErrorCode::TooLarge
    );
    // The connection is closed after the single error (framing cannot
    // resynchronize).  Closing with the client's follow-up bytes still unread
    // makes the kernel send RST, so a reset is as valid a close as a clean FIN.
    let mut rest = String::new();
    match client.reader.read_line(&mut rest) {
        Ok(0) => {}
        Ok(n) => panic!("server must close a poisoned connection, got {n} bytes: {rest}"),
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unexpected read error after poison: {e}"),
    }
    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn requests_framed_before_a_poisoning_line_are_answered_in_order() {
    let root = temp_root("poisonorder");
    let (_, good, _) = lake();
    let mut service = QueryService::create(&root, spec_for(SketchMethod::Kmv, 4)).expect("create");
    service.ingest_table(&good).expect("good");
    let config = ServerConfig::builder()
        .tcp("127.0.0.1:0")
        .max_line_bytes(1024)
        .build()
        .expect("valid config");
    let handle = serve(service, config).expect("serve");
    let mut client = Client::connect(&handle);

    // One burst: a valid info request, then an oversized line.  The protocol
    // promises per-connection response order, so the info answer must arrive
    // first and the too_large error last, before the close.
    let mut burst = String::from("{\"v\":1,\"id\":7,\"op\":\"info\"}\n");
    burst.push_str(&"x".repeat(4096));
    burst.push('\n');
    client.writer.write_all(burst.as_bytes()).expect("burst");

    let first = Response::decode(&client.recv_raw()).expect("decodes");
    assert_eq!(first.id.as_u64(), Some(7), "info must be answered first");
    assert!(first.result.is_ok());
    let second = Response::decode(&client.recv_raw()).expect("decodes");
    assert!(second.id.is_null());
    assert_eq!(
        second.result.expect_err("fails").code,
        ErrorCode::TooLarge,
        "the poisoning line's error comes after earlier answers"
    );
    let mut rest = String::new();
    match client.reader.read_line(&mut rest) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected close after the error, got {n} bytes: {rest}"),
    }

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn abandoned_ingest_sessions_expire_after_their_ttl() {
    let root = temp_root("sessionttl");
    let service = QueryService::create(&root, spec_for(SketchMethod::Kmv, 2)).expect("create");
    let config = ServerConfig::builder()
        .tcp("127.0.0.1:0")
        .session_ttl(Duration::from_millis(50))
        .maintenance_interval(None)
        .build()
        .expect("valid config");
    let handle = serve(service, config).expect("serve");
    let mut client = Client::connect(&handle);
    let begin = |client: &mut Client, table: &str| -> u64 {
        match client
            .call(&Request {
                id: Json::Null,
                body: RequestBody::IngestBegin {
                    table: table.to_string(),
                },
            })
            .result
            .expect("begin")
        {
            ResponseBody::Session(session) => session,
            other => panic!("expected session, got {other:?}"),
        }
    };
    let shard_for = |table: &str| WireTable {
        name: table.to_string(),
        keys: vec![1, 2],
        columns: vec![ipsketch_serve::protocol::WireColumn {
            name: "c".to_string(),
            values: vec![1.0, 2.0],
        }],
    };

    // Simulate a vanished client: the session idles past its TTL, then a
    // maintenance pass sweeps it.
    let abandoned = begin(&mut client, "abandoned");
    std::thread::sleep(Duration::from_millis(120));
    handle.request_maintenance();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while handle.maintenance_stats().sessions_expired == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "session never expired: {:?}",
            handle.maintenance_stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::IngestAnnounce {
            session: abandoned,
            shard: shard_for("abandoned"),
        },
    });
    assert_eq!(
        response.result.expect_err("expired").code,
        ErrorCode::UnknownSession
    );

    // A freshly touched session survives a sweep and stays usable.
    let alive = begin(&mut client, "alive");
    handle.request_maintenance();
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::IngestAnnounce {
            session: alive,
            shard: shard_for("alive"),
        },
    });
    assert!(
        response.result.is_ok(),
        "fresh sessions must survive sweeps"
    );

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn wire_ingest_registers_and_compaction_runs_on_demand() {
    let root = temp_root("wireingest");
    let (query, good, _) = lake();
    let service = QueryService::create(&root, spec_for(SketchMethod::Icws, 13)).expect("create");
    let handle = serve(service, tcp_config()).expect("serve");
    let mut client = Client::connect(&handle);

    // Partitioned wire ingest, including an all-zero column that must be skipped.
    let mut table = WireTable::from_table(&good);
    table.columns.push(ipsketch_serve::protocol::WireColumn {
        name: "zeros".to_string(),
        values: vec![0.0; good.rows()],
    });
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Ingest {
            table,
            partitions: Some(4),
        },
    });
    match response.result.expect("ingest succeeds") {
        ResponseBody::Report {
            registered,
            skipped,
        } => {
            assert_eq!(registered.len(), 2);
            assert_eq!(skipped, vec!["zeros".to_string()]);
        }
        other => panic!("expected report, got {other:?}"),
    }

    // The ingest signaled maintenance; ask for another pass and wait for both.
    handle.request_maintenance();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while handle.maintenance_stats().passes == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "maintenance never ran: {:?}",
            handle.maintenance_stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.maintenance_stats().failures, 0);

    // Queries see the ingested table.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k: 2,
            min_join_size: 0.0,
            cascade: false,
            query: wire_query(&query, "rides"),
        },
    });
    match response.result.expect("query succeeds") {
        ResponseBody::Ranking { ranking, .. } => {
            assert!(!ranking.is_empty());
            assert_eq!(ranking[0].table, "good");
        }
        other => panic!("expected ranking, got {other:?}"),
    }

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn drop_column_over_the_wire_tombstones_and_info_reports_the_format() {
    let root = temp_root("wiredrop");
    let (query, good, _) = lake();
    let mut service = QueryService::create(&root, spec_for(SketchMethod::Kmv, 11)).expect("create");
    service.ingest_table(&good).expect("ingest");
    let handle = serve(service, tcp_config()).expect("serve");
    let mut client = Client::connect(&handle);

    // Info names the current on-disk format and both live columns.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Info { server: false },
    });
    match response.result.expect("info succeeds") {
        ResponseBody::Info {
            format, columns, ..
        } => {
            assert_eq!(format.as_deref(), Some("v2"));
            assert_eq!(columns.len(), 2);
        }
        other => panic!("expected info, got {other:?}"),
    }

    // Drop the joinable column over the wire.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::DropColumn {
            table: "good".to_string(),
            column: "precip".to_string(),
        },
    });
    match response.result.expect("drop succeeds") {
        ResponseBody::Dropped { table, column } => {
            assert_eq!((table.as_str(), column.as_str()), ("good", "precip"));
        }
        other => panic!("expected dropped, got {other:?}"),
    }

    // Rankings and info no longer see it, on this same connection.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k: 5,
            min_join_size: 0.0,
            cascade: false,
            query: wire_query(&query, "rides"),
        },
    });
    match response.result.expect("query succeeds") {
        ResponseBody::Ranking { ranking, .. } => {
            assert!(
                ranking.iter().all(|r| r.column != "precip"),
                "dropped column still ranked: {ranking:?}"
            );
        }
        other => panic!("expected ranking, got {other:?}"),
    }
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Info { server: false },
    });
    match response.result.expect("info succeeds") {
        ResponseBody::Info { columns, .. } => {
            assert_eq!(columns.len(), 1, "tombstoned column still listed");
        }
        other => panic!("expected info, got {other:?}"),
    }

    // Dropping it again is a typed `not_found`.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::DropColumn {
            table: "good".to_string(),
            column: "precip".to_string(),
        },
    });
    let error = response.result.expect_err("second drop fails");
    assert_eq!(error.code, ErrorCode::NotFound);

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

/// A table bulky enough that a one-worker server falls behind while decoding it.
fn bulky(name: &str) -> WireTable {
    let table = Table::new(
        name,
        (0..120_000).collect(),
        vec![Column::new(
            "v",
            (0..120_000).map(|i| f64::from(i % 97) + 1.0).collect(),
        )],
    )
    .expect("table");
    WireTable::from_table(&table)
}

#[test]
fn connection_cap_rejects_with_typed_overloaded_then_recovers() {
    let root = temp_root("conncap");
    let service =
        QueryService::create(&root, spec_for(SketchMethod::WeightedMinHash, 5)).expect("create");
    let config = ServerConfig::builder()
        .tcp("127.0.0.1:0")
        .max_connections(1)
        .build()
        .expect("valid config");
    let handle = serve(service, config).expect("serve");

    // The first client occupies the only slot; a round trip guarantees the
    // reactor has registered it before anyone else knocks.
    let mut first = Client::connect(&handle);
    let response = first.call(&Request {
        id: Json::Null,
        body: RequestBody::Info { server: false },
    });
    assert!(response.result.is_ok());

    // The second connection is turned away with a typed `overloaded` error…
    let stream = TcpStream::connect(handle.tcp_addr().expect("tcp bound")).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("rejection line");
    let rejection = Response::decode(line.trim_end()).expect("typed rejection");
    let error = rejection
        .result
        .expect_err("rejected connections get an error");
    assert_eq!(error.code, ErrorCode::Overloaded);
    // …and then closed, so clients know to back off rather than retry in place.
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).expect("clean close"),
        0,
        "server must close rejected connections"
    );

    // The established client is unaffected, and the rejection shows up in the
    // server stats it can ask for.
    let response = first.call(&Request {
        id: Json::Null,
        body: RequestBody::Info { server: true },
    });
    match response
        .result
        .expect("established connection still served")
    {
        ResponseBody::Info { server, .. } => {
            let server = server.expect("server stats requested");
            assert_eq!(server.connections_rejected, 1);
            let info_op = server
                .ops
                .iter()
                .find(|o| o.op == "info")
                .expect("info op recorded");
            assert!(info_op.count >= 1);
            assert_eq!(info_op.errors, 0);
        }
        other => panic!("expected info, got {other:?}"),
    }

    // After the occupant departs the slot frees, and new clients are served.
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let mut retry = Client::connect(&handle);
        let response = retry.call(&Request {
            id: Json::Null,
            body: RequestBody::Info { server: false },
        });
        match response.result {
            Ok(_) => break,
            Err(error) => {
                assert_eq!(error.code, ErrorCode::Overloaded);
                assert!(
                    std::time::Instant::now() < deadline,
                    "connection slot never freed after the occupant closed"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn queue_cap_sheds_load_but_keeps_connections_usable() {
    let root = temp_root("queuecap");
    let service =
        QueryService::create(&root, spec_for(SketchMethod::WeightedMinHash, 6)).expect("create");
    let config = ServerConfig::builder()
        .tcp("127.0.0.1:0")
        .workers(1)
        .max_queue_depth(1)
        .build()
        .expect("valid config");
    let handle = serve(service, config).expect("serve");

    // Six clients fire bulky ingests at a one-worker, one-deep server: at most
    // two requests can be in flight, so the burst must be shed, not buffered.
    let mut clients: Vec<Client> = (0..6).map(|_| Client::connect(&handle)).collect();
    for (i, client) in clients.iter_mut().enumerate() {
        let request = Request {
            id: Json::Null,
            body: RequestBody::Ingest {
                table: bulky(&format!("t{i}")),
                partitions: None,
            },
        };
        client.send_raw(&request.encode());
    }
    let mut served = 0u64;
    let mut shed = 0u64;
    for client in &mut clients {
        let response = Response::decode(&client.recv_raw()).expect("well-formed response");
        match response.result {
            Ok(_) => served += 1,
            Err(error) => {
                assert_eq!(error.code, ErrorCode::Overloaded);
                shed += 1;
            }
        }
    }
    assert_eq!(served + shed, 6);
    assert!(served >= 1, "the worker must serve what it can");
    assert!(
        shed >= 1,
        "a one-deep queue cannot absorb a six-request burst"
    );

    // Shedding is per-request, not per-connection: the same sockets answer
    // follow-up requests once the queue drains.
    for client in &mut clients {
        let response = client.call(&Request {
            id: Json::Null,
            body: RequestBody::Info { server: true },
        });
        match response.result.expect("connection survives shedding") {
            ResponseBody::Info { server, .. } => {
                let server = server.expect("server stats requested");
                assert_eq!(server.queue_rejected, shed);
            }
            other => panic!("expected info, got {other:?}"),
        }
    }

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}
