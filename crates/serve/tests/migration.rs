//! Format-migration acceptance tests: the committed golden v1 catalog loads
//! read-only and byte-for-byte, migration to the current format is lossless
//! (estimates bit-identical, every method including WMH — migration transcodes
//! the stored sketches, it never re-sketches), and a migration killed mid-run
//! resumes to the same destination bytes.
//!
//! The fixture bytes under `tests/fixtures/v1-catalog/` are checked in; set
//! `IPSKETCH_BLESS_FIXTURES=1` to regenerate them after an *intentional* v1
//! layout change (there should never be one — the layout is frozen).

use ipsketch_core::wmh::{WmhStream, WmhVariant};
use ipsketch_core::{FormatVersion, SketcherKind, SketcherSpec};
use ipsketch_data::{Column, Table};
use ipsketch_join::JoinEstimator;
use ipsketch_serve::catalog::{MANIFEST_FILE, SKETCH_DIR};
use ipsketch_serve::manifest::{fnv64, Manifest, ManifestEntry};
use ipsketch_serve::{migrate_catalog, Catalog, CatalogError, QueryService};
use std::fs;
use std::path::{Path, PathBuf};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsketch-migrate-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The deterministic source table behind every v1 catalog in this suite.
fn weather() -> Table {
    Table::new(
        "weather",
        (0..120).collect(),
        vec![
            Column::new(
                "precip",
                (0..120).map(|i| 2.0 * f64::from(i) + 3.0).collect(),
            ),
            Column::new(
                "noise",
                (0..120).map(|i| f64::from((i * 37) % 11) - 5.0).collect(),
            ),
            Column::new("steps", (0..120).map(|i| f64::from(i % 13) + 1.0).collect()),
        ],
    )
    .expect("table")
}

/// A query column joining heavily with `weather` (keys 60..180 overlap 60..120).
fn rides() -> Table {
    Table::new(
        "taxi",
        (60..180).collect(),
        vec![Column::new(
            "rides",
            (60..180).map(|i| f64::from(i) + 1.0).collect(),
        )],
    )
    .expect("table")
}

/// Builds the files of a v1 catalog over `weather()` under `spec` — the layout the
/// pre-versioning build wrote, assembled by hand because `Catalog::init` refuses
/// the read-only v1 format.  Returns `(relative path, bytes)` pairs.
fn v1_catalog_files(spec: SketcherSpec) -> Vec<(String, Vec<u8>)> {
    assert_eq!(spec.format, FormatVersion::V1, "fixture builder is v1-only");
    let estimator = JoinEstimator::new(spec.build().expect("spec builds"));
    let table = weather();
    let mut manifest = Manifest::new(spec);
    let mut files = Vec::new();
    for (i, name) in ["precip", "noise", "steps"].iter().enumerate() {
        let column = estimator.sketch_column(&table, name).expect("sketches");
        let blob = column.encode(FormatVersion::V1);
        let file = format!("{i:06}.col");
        manifest.entries.push(ManifestEntry {
            table: "weather".to_string(),
            column: (*name).to_string(),
            rows: column.rows as u64,
            file: file.clone(),
            blob_len: blob.len() as u64,
            checksum: fnv64(&blob),
            dropped: false,
            companion: None,
        });
        files.push((format!("{SKETCH_DIR}/{file}"), blob));
    }
    files.push((MANIFEST_FILE.to_string(), manifest.encode()));
    files
}

fn write_catalog_files(root: &Path, files: &[(String, Vec<u8>)]) {
    for (rel, bytes) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(&path, bytes).expect("write");
    }
}

/// The KMV configuration of the committed golden fixture.
fn golden_spec() -> SketcherSpec {
    SketcherSpec::v1(SketcherKind::Kmv {
        capacity: 32,
        seed: 7,
    })
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1-catalog")
}

/// Every file of a catalog directory, as sorted `(relative path, bytes)` pairs.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("readdir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_str()
                    .expect("utf8")
                    .replace('\\', "/");
                files.push((rel, fs::read(&path).expect("read")));
            }
        }
    }
    files.sort();
    files
}

#[test]
fn golden_v1_fixture_matches_the_committed_bytes() {
    let mut built = v1_catalog_files(golden_spec());
    built.sort();
    if std::env::var_os("IPSKETCH_BLESS_FIXTURES").is_some() {
        let _ = fs::remove_dir_all(golden_dir());
        write_catalog_files(&golden_dir(), &built);
    }
    let committed = snapshot(&golden_dir());
    let built_names: Vec<&String> = built.iter().map(|(n, _)| n).collect();
    let committed_names: Vec<&String> = committed.iter().map(|(n, _)| n).collect();
    assert_eq!(
        committed_names, built_names,
        "fixture file set drifted (regenerate with IPSKETCH_BLESS_FIXTURES=1 only for an \
         intentional v1 layout change)"
    );
    for ((name, committed_bytes), (_, built_bytes)) in committed.iter().zip(&built) {
        assert_eq!(
            committed_bytes, built_bytes,
            "`{name}` drifted from the frozen v1 layout"
        );
    }
}

#[test]
fn golden_v1_fixture_loads_read_only() {
    let catalog = Catalog::open(golden_dir()).expect("golden catalog opens");
    assert_eq!(catalog.format(), FormatVersion::V1);
    assert_eq!(catalog.len(), 3);
    assert_eq!(catalog.spec(), golden_spec());

    // Queries work: the service hydrates and ranks v1 sketches as always.
    let mut service = QueryService::open(golden_dir()).expect("service opens");
    assert_eq!(service.stats().format, "v1");
    let query = service
        .sketch_query(&rides(), "rides")
        .expect("query sketches");
    let ranking = service.query_joinable(&query, 3).expect("query runs");
    assert!(
        ranking.iter().any(|r| r.id.column == "precip"),
        "golden catalog must rank the joinable column: {ranking:?}"
    );

    // Writes are refused with the migration pointer; the directory is untouched.
    let before = snapshot(&golden_dir());
    let mut catalog = Catalog::open(golden_dir()).expect("reopen");
    let column = JoinEstimator::new(golden_spec().build().expect("builds"))
        .sketch_column(&rides(), "rides")
        .expect("sketches");
    let err = catalog
        .register_all(&[column])
        .expect_err("register refused");
    assert!(
        matches!(&err, CatalogError::Incompatible { detail }
            if detail.contains("read-only") && detail.contains("catalog migrate")),
        "{err}"
    );
    let err = catalog
        .drop_column("weather", "precip")
        .expect_err("drop refused");
    assert!(matches!(err, CatalogError::Incompatible { .. }), "{err}");
    assert_eq!(
        snapshot(&golden_dir()),
        before,
        "read-only catalog was written"
    );
}

#[test]
fn migration_preserves_every_estimate_bit_for_bit() {
    // WMH is the interesting method: its v1 spec pins the v1 record stream, and
    // migration must carry that stream (and the sketch samples) over unchanged.
    let spec = SketcherSpec::v1(SketcherKind::WeightedMinHash {
        samples: 32,
        seed: 5,
        discretization: 1 << 20,
        variant: WmhVariant::Fast,
        stream: WmhStream::V1,
    });
    let root = temp_root("lossless");
    let src = root.join("v1");
    write_catalog_files(&src, &v1_catalog_files(spec));

    let mut before_service = QueryService::open(&src).expect("source opens");
    let query = before_service
        .sketch_query(&rides(), "rides")
        .expect("query sketches");
    let before = before_service
        .query_joinable(&query, 10)
        .expect("source ranks");

    let dest = root.join("v2");
    let mut seen = Vec::new();
    let report = migrate_catalog(&src, &dest, |p| {
        seen.push((p.table.to_string(), p.column.to_string(), p.done, p.total));
    })
    .expect("migration succeeds");
    assert_eq!(
        (report.from, report.to),
        (FormatVersion::V1, FormatVersion::V2)
    );
    assert_eq!(
        (report.columns, report.transcoded, report.resumed),
        (3, 3, 0)
    );
    assert_eq!(seen.len(), 3);
    assert!(seen
        .iter()
        .all(|(t, _, _, total)| t == "weather" && *total == 3));

    // The destination is the writable current format with the same sketcher kind.
    let migrated = Catalog::open(&dest).expect("destination opens");
    assert_eq!(migrated.format(), FormatVersion::V2);
    assert_eq!(
        migrated.spec().kind,
        spec.kind,
        "sketcher kind must not change"
    );

    // Same query, bit-identical answers.
    let mut after_service = QueryService::open(&dest).expect("destination opens");
    let after = after_service
        .query_joinable(&query, 10)
        .expect("destination ranks");
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        assert_eq!(b.id, a.id);
        assert_eq!(b.score.to_bits(), a.score.to_bits(), "score drift");
        assert_eq!(
            b.estimated_join_size.to_bits(),
            a.estimated_join_size.to_bits(),
            "join-size drift"
        );
        assert_eq!(
            b.estimated_correlation.to_bits(),
            a.estimated_correlation.to_bits(),
            "correlation drift"
        );
    }

    // The destination accepts writes: drop a column, which v1 refused.
    let mut migrated = Catalog::open(&dest).expect("reopen");
    migrated.drop_column("weather", "noise").expect("v2 drops");
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn migration_backfills_kmv_companions_that_serve_cascades() {
    // A KMV primary truncates exactly to a smaller-capacity KMV, so migration can
    // backfill the cheap-tier companions even though the raw data is gone — and the
    // migrated catalog then serves cascade queries with no fallback.
    let root = temp_root("backfill");
    let src = root.join("v1");
    write_catalog_files(&src, &v1_catalog_files(golden_spec()));
    let dest = root.join("v2");
    let report = migrate_catalog(&src, &dest, |_| {}).expect("migration succeeds");
    assert_eq!(
        report.backfilled, 3,
        "every KMV column gains a derived companion"
    );

    let migrated = Catalog::open(&dest).expect("destination opens");
    let companion_spec = migrated
        .companion_spec()
        .expect("migrated KMV catalogs declare a companion tier");
    assert_eq!(
        companion_spec.kind,
        SketcherKind::Kmv {
            capacity: 8, // a quarter of the primary's 32
            seed: 7,
        }
    );
    for entry in migrated.live_entries() {
        let companion = migrated
            .load_companion_entry(entry)
            .expect("companion loads")
            .expect("companion stored");
        // The backfilled companion is bit-identical to one sketched from the raw
        // data by the smaller sketcher — the truncation-exactness guarantee.
        let fresh = JoinEstimator::new(companion_spec.build().expect("builds"))
            .sketch_column(&weather(), &entry.column)
            .expect("sketches");
        assert_eq!(
            companion.encode(FormatVersion::V2),
            fresh.encode(FormatVersion::V2),
            "backfilled companion for `{}` drifted from a fresh sketch",
            entry.column
        );
    }

    // Cascade queries over the migrated catalog run the real two-tier path (no
    // note) and answer bit-identically to the flat scan.
    let mut service = QueryService::open(&dest).expect("service opens");
    let query = service.sketch_query(&rides(), "rides").expect("sketch");
    let companion_query = service
        .sketch_query_companion(&rides(), "rides")
        .expect("companion sketch")
        .expect("companion tier");
    let flat = service.query_joinable(&query, 3).expect("flat scan");
    let (cascaded, note) = service
        .query_joinable_cascade(
            &query,
            Some(&companion_query),
            3,
            ipsketch_join::DEFAULT_CASCADE_CONFIDENCE,
        )
        .expect("cascade");
    assert!(
        note.is_none(),
        "backfilled catalogs cascade without fallback"
    );
    assert_eq!(cascaded, flat);
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn non_derivable_migrations_fall_back_to_the_flat_scan_with_a_note() {
    // A WMH primary cannot derive a companion (no truncation exactness), so the
    // migrated catalog is companion-less — and a cascade request over it must be
    // answered by the flat scan with a typed `info` note, never an error.
    let spec = SketcherSpec::v1(SketcherKind::WeightedMinHash {
        samples: 32,
        seed: 5,
        discretization: 1 << 20,
        variant: WmhVariant::Fast,
        stream: WmhStream::V1,
    });
    let root = temp_root("no-backfill");
    let src = root.join("v1");
    write_catalog_files(&src, &v1_catalog_files(spec));
    let dest = root.join("v2");
    let report = migrate_catalog(&src, &dest, |_| {}).expect("migration succeeds");
    assert_eq!(report.backfilled, 0, "nothing derivable from WMH primaries");
    assert!(Catalog::open(&dest)
        .expect("opens")
        .companion_spec()
        .is_none());

    let mut service = QueryService::open(&dest).expect("service opens");
    let query = service.sketch_query(&rides(), "rides").expect("sketch");
    assert!(service
        .sketch_query_companion(&rides(), "rides")
        .expect("companion sketch")
        .is_none());
    let flat = service.query_joinable(&query, 3).expect("flat scan");
    let (ranking, note) = service
        .query_joinable_cascade(&query, None, 3, ipsketch_join::DEFAULT_CASCADE_CONFIDENCE)
        .expect("cascade requests over companion-less catalogs never error");
    let note = note.expect("the fallback is reported as a typed note");
    assert_eq!(note.code, ipsketch_serve::NOTE_CASCADE_FALLBACK);
    assert_eq!(ranking, flat);
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn interrupted_migration_resumes_to_identical_bytes() {
    let root = temp_root("resume");
    let src = root.join("v1");
    write_catalog_files(&src, &v1_catalog_files(golden_spec()));

    // The reference: one uninterrupted migration.
    let clean = root.join("clean");
    migrate_catalog(&src, &clean, |_| {}).expect("clean migration");

    // The crash scene: one finished blob, one torn blob, no manifest — exactly what
    // a kill between blob writes leaves behind (blobs land atomically, the manifest
    // lands last).
    let crashed = root.join("crashed");
    let crashed_sketches = crashed.join(SKETCH_DIR);
    fs::create_dir_all(&crashed_sketches).expect("mkdir");
    let finished = fs::read(clean.join(SKETCH_DIR).join("000000.col")).expect("read");
    fs::write(crashed_sketches.join("000000.col"), &finished).expect("write");
    fs::write(
        crashed_sketches.join("000001.col"),
        &finished[..finished.len() / 2],
    )
    .expect("write torn blob");

    let report = migrate_catalog(&src, &crashed, |_| {}).expect("resume succeeds");
    assert_eq!(
        (report.columns, report.resumed, report.transcoded),
        (3, 1, 2),
        "the finished blob resumes, the torn one is rewritten"
    );
    assert_eq!(
        snapshot(&crashed),
        snapshot(&clean),
        "resumed and uninterrupted migrations must converge byte-for-byte"
    );

    // A *finished* destination (manifest present) is refused, not clobbered.
    let err = migrate_catalog(&src, &clean, |_| {}).expect_err("finished dest refused");
    assert!(
        matches!(&err, CatalogError::NotACatalog { detail, .. }
            if detail.contains("already holds a catalog manifest")),
        "{err}"
    );

    // Migrating a current-format catalog is a typed refusal.
    let err = migrate_catalog(&clean, root.join("again"), |_| {}).expect_err("v2 src refused");
    assert!(
        matches!(&err, CatalogError::Incompatible { detail } if detail.contains("already format")),
        "{err}"
    );
    fs::remove_dir_all(&root).expect("cleanup");
}
