//! End-to-end smoke test of the `ipsketch` binary itself: a full
//! `catalog init → ingest → ingest-partial → query → info` round trip through real
//! process invocations, asserting on exit codes and output — exactly what the CI
//! CLI-smoke job runs, kept here so it is also exercised by plain `cargo test`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ipsketch")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary spawns")
}

fn stdout_of(output: &Output) -> String {
    assert!(
        output.status.success(),
        "command failed with {:?}\nstdout: {}\nstderr: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsketch-bin-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Writes a small joinable lake: `taxi.csv` over keys 0..150, `weather.csv` over keys
/// 50..200 with a precipitation column proportional to the ride counts on the overlap.
fn write_lake(dir: &Path) -> (PathBuf, PathBuf) {
    let mut taxi = String::from("key,rides\n");
    for key in 0..150 {
        taxi.push_str(&format!("{key},{}\n", f64::from(key % 23) + 1.0));
    }
    let mut weather = String::from("key,precip\n");
    for key in 50..200 {
        weather.push_str(&format!("{key},{}\n", 3.0 * (f64::from(key % 23) + 1.0)));
    }
    let taxi_path = dir.join("taxi.csv");
    let weather_path = dir.join("weather.csv");
    fs::write(&taxi_path, taxi).expect("write taxi");
    fs::write(&weather_path, weather).expect("write weather");
    (taxi_path, weather_path)
}

#[test]
fn full_round_trip_from_a_clean_directory() {
    let dir = temp_dir("roundtrip");
    let (taxi, weather) = write_lake(&dir);
    let catalog = dir.join("catalog");
    let catalog_str = catalog.to_str().expect("utf8 path");

    let init = stdout_of(&run(&[
        "catalog",
        "init",
        catalog_str,
        "--method",
        "wmh",
        "--budget",
        "300",
        "--seed",
        "7",
    ]));
    assert!(init.contains("initialized catalog"), "{init}");

    // One-shot ingest of the weather table, shard-partial ingest of the taxi table —
    // both paths land in the same catalog.
    let one_shot = stdout_of(&run(&[
        "ingest",
        catalog_str,
        weather.to_str().expect("utf8"),
    ]));
    assert!(one_shot.contains("registered weather.precip"), "{one_shot}");
    let partial = stdout_of(&run(&[
        "ingest-partial",
        catalog_str,
        taxi.to_str().expect("utf8"),
        "--shards",
        "3",
    ]));
    assert!(partial.contains("registered taxi.rides"), "{partial}");
    assert!(partial.contains("3 shard partials folded"), "{partial}");

    // A query from the taxi side must rank the weather column with a non-empty,
    // non-zero result (the key overlap is 100 rows).
    let query = stdout_of(&run(&[
        "query",
        catalog_str,
        taxi.to_str().expect("utf8"),
        "--column",
        "rides",
        "--top",
        "5",
    ]));
    assert!(query.contains("weather.precip"), "{query}");
    let ranked_lines: Vec<&str> = query
        .lines()
        .filter(|l| l.contains("weather.precip"))
        .collect();
    assert_eq!(ranked_lines.len(), 1, "{query}");

    let info = stdout_of(&run(&["info", catalog_str]));
    assert!(info.contains("columns: 2"), "{info}");
    assert!(info.contains("taxi.rides"), "{info}");
    assert!(info.contains("WMH"), "{info}");
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn usage_errors_exit_2_and_runtime_errors_exit_1() {
    let dir = temp_dir("exitcodes");
    let bad_usage = run(&["frobnicate"]);
    assert_eq!(bad_usage.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&bad_usage.stderr).contains("USAGE"),
        "usage errors reprint the usage text"
    );
    let runtime = run(&["info", dir.join("not-a-catalog").to_str().expect("utf8")]);
    assert_eq!(runtime.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&runtime.stderr).contains("error"),
        "runtime errors are reported on stderr"
    );
    let help = run(&["help"]);
    assert_eq!(help.status.code(), Some(0));
    fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn cli_estimates_match_the_in_memory_index_for_all_mergeable_methods() {
    // The ISSUE acceptance criterion: the CLI round trip returns identical estimates
    // to an in-memory SketchIndex for every mergeable method, through both the
    // one-shot and shard-partial ingest paths.
    use ipsketch_core::method::{AnySketcher, SketchMethod};
    use ipsketch_join::{JoinEstimator, SketchIndex};
    use ipsketch_serve::csv::load_table;

    for (method, label) in [
        (SketchMethod::Jl, "jl"),
        (SketchMethod::CountSketch, "cs"),
        (SketchMethod::MinHash, "mh"),
        (SketchMethod::Kmv, "kmv"),
        (SketchMethod::WeightedMinHash, "wmh"),
        (SketchMethod::Icws, "icws"),
    ] {
        let dir = temp_dir(&format!("parity-{label}"));
        let (taxi, weather) = write_lake(&dir);
        let catalog = dir.join("catalog");
        let catalog_str = catalog.to_str().expect("utf8 path");
        stdout_of(&run(&[
            "catalog",
            "init",
            catalog_str,
            "--method",
            label,
            "--budget",
            "200",
            "--seed",
            "11",
        ]));
        // Shard-partial ingest exercises the announced-norm protocol per method.
        stdout_of(&run(&[
            "ingest-partial",
            catalog_str,
            weather.to_str().expect("utf8"),
            "--shards",
            "4",
        ]));
        let query = stdout_of(&run(&[
            "query",
            catalog_str,
            taxi.to_str().expect("utf8"),
            "--column",
            "rides",
            "--top",
            "1",
        ]));
        let cli_line = query
            .lines()
            .find(|l| l.contains("weather.precip"))
            .unwrap_or_else(|| panic!("{label}: no ranked output in {query}"));
        let cli_join_size: f64 = cli_line
            .split_whitespace()
            .nth(2)
            .expect("join_size field")
            .parse()
            .expect("numeric join size");

        // In-memory baseline: same method/budget/seed, same shard-partial path.
        let est =
            JoinEstimator::new(AnySketcher::for_budget(method, 200.0, 11).expect("budget fits"));
        let mut index = SketchIndex::new(est);
        let weather_table = load_table(&weather, None).expect("weather parses");
        index
            .insert_table_partitioned(&weather_table, 4)
            .expect("indexes");
        let taxi_table = load_table(&taxi, None).expect("taxi parses");
        let q = index.sketch_query(&taxi_table, "rides").expect("sketches");
        let ranked = index.top_k_joinable(&q, 1).expect("ranks");
        let expected = ranked[0].estimated_join_size;
        // The CLI prints with two decimals; compare at that precision.
        assert!(
            (cli_join_size - expected).abs() <= 0.005 + 1e-9,
            "{label}: CLI join size {cli_join_size} vs in-memory {expected}"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
