//! Recall@k regression tests for the tiered query cascade, pinned to a
//! committed fixture catalog with construction-known ground truth.
//!
//! The fixture lake is built so the true joinability order is forced by key
//! overlap (the candidates overlap the query on 95, 75, 55, 35, 15, and 0
//! keys), far apart relative to sketch noise.  At the default margin the
//! cascade must return exactly the flat scan's top-k — recall 1.0 — and at
//! deliberately-too-tight margins the measured recall is recorded so a future
//! change to the bound shows up as a diff here, not as silent quality loss.
//!
//! The fixture bytes under `tests/fixtures/cascade-recall/` are checked in; set
//! `IPSKETCH_BLESS_FIXTURES=1` to regenerate them after an *intentional* format
//! or sketcher change.

use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_data::{Column, Table};
use ipsketch_join::DEFAULT_CASCADE_CONFIDENCE;
use ipsketch_serve::QueryService;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/cascade-recall")
}

/// Overlap row counts, largest first: `lake_a` shares 95 keys with the query,
/// `lake_f` none.  These ARE the ground truth — the joinability order.
const OVERLAPS: [(u64, &str); 6] = [
    (95, "lake_a"),
    (75, "lake_b"),
    (55, "lake_c"),
    (35, "lake_d"),
    (15, "lake_e"),
    (0, "lake_f"),
];

/// Decoys sitting just below `lake_d`'s overlap — within cheap-tier noise
/// (CS error ≈ √(|q|·|c|)/√buckets ≈ 7 keys here) but outside the primary
/// tier's resolution of the 35-vs-30 gap.  A margin that trusts the cheap
/// point estimates outright can promote one of these over `lake_d`.
const DECOYS: [(u64, &str); 4] = [
    (34, "decoy_w"),
    (33, "decoy_x"),
    (32, "decoy_y"),
    (31, "decoy_z"),
];

fn candidate(name: &str, overlap: u64) -> Table {
    // `overlap` keys inside the query's 0..100 range, padded to 120 rows with
    // keys far outside it; smooth weights keep every row carrying value mass.
    // Ground-truth candidates overlap the query's high keys, decoys its low
    // keys: disjoint overlap regions keep their cheap-tier sketch noise
    // independent (nested key sets would cancel it and hide misrankings).
    let keys: Vec<u64> = if name.starts_with("decoy") {
        (0..overlap).chain(2000..2000 + (120 - overlap)).collect()
    } else {
        (100 - overlap..100)
            .chain(1000 + overlap..1000 + 120)
            .take(120)
            .collect()
    };
    let values: Vec<f64> = (0..120u32).map(|i| f64::from(i % 17) + 1.0).collect();
    Table::new(name, keys, vec![Column::new("v", values)]).expect("table")
}

fn query_table() -> Table {
    Table::new(
        "q",
        (0..100).collect(),
        vec![Column::new(
            "v",
            (0..100u32).map(|i| f64::from(i % 17) + 1.0).collect(),
        )],
    )
    .expect("table")
}

/// The fixture's sketcher: the paper's WMH method at a modest budget.
fn fixture_spec() -> ipsketch_core::SketcherSpec {
    AnySketcher::for_budget(SketchMethod::WeightedMinHash, 256.0, 7)
        .expect("budget")
        .spec()
}

fn build_fixture(root: &Path) {
    let _ = fs::remove_dir_all(root);
    let mut service = QueryService::create(root, fixture_spec()).expect("create");
    for (overlap, name) in OVERLAPS.into_iter().chain(DECOYS) {
        service
            .ingest_table(&candidate(name, overlap))
            .expect("ingest");
    }
}

/// Every file of a catalog directory, as sorted `(relative path, bytes)` pairs.
fn snapshot(root: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("readdir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_str()
                    .expect("utf8")
                    .replace('\\', "/");
                files.push((rel, fs::read(&path).expect("read")));
            }
        }
    }
    files.sort();
    files
}

#[test]
fn fixture_matches_the_committed_bytes() {
    if std::env::var_os("IPSKETCH_BLESS_FIXTURES").is_some() {
        build_fixture(&fixture_dir());
    }
    let scratch = std::env::temp_dir().join(format!(
        "ipsketch-cascade-recall-rebuild-{}",
        std::process::id()
    ));
    build_fixture(&scratch);
    let rebuilt = snapshot(&scratch);
    let committed = snapshot(&fixture_dir());
    let _ = fs::remove_dir_all(&scratch);
    assert_eq!(
        committed.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        rebuilt.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "fixture file set drifted (regenerate with IPSKETCH_BLESS_FIXTURES=1 only for an \
         intentional change)"
    );
    for ((name, committed_bytes), (_, rebuilt_bytes)) in committed.iter().zip(&rebuilt) {
        assert_eq!(
            committed_bytes, rebuilt_bytes,
            "`{name}` drifted from the committed fixture"
        );
    }
}

/// Recall@k of `answer` against the ground-truth top-k set.
fn recall_at_k(answer: &[ipsketch_join::RankedColumn], truth: &[&str], k: usize) -> f64 {
    let truth: BTreeSet<&str> = truth[..k].iter().copied().collect();
    let hits = answer
        .iter()
        .take(k)
        .filter(|r| truth.contains(r.id.table.as_str()))
        .count();
    hits as f64 / k as f64
}

#[test]
fn default_margin_has_perfect_recall_and_matches_ground_truth() {
    let mut service = QueryService::open(fixture_dir()).expect("open fixture");
    let query = query_table();
    let q = service.sketch_query(&query, "v").expect("sketch");
    let cq = service
        .sketch_query_companion(&query, "v")
        .expect("companion sketch");
    assert!(cq.is_some(), "fixture stores companion sketches");
    const K: usize = 4;
    let flat = service.query_joinable(&q, K).expect("flat");
    let (cascaded, note) = service
        .query_joinable_cascade(&q, cq.as_ref(), K, DEFAULT_CASCADE_CONFIDENCE)
        .expect("cascade");
    assert!(note.is_none());
    assert_eq!(
        cascaded, flat,
        "cascade must equal the flat scan bit for bit"
    );
    // The overlap gaps (95 > 75 > 55 > 35) dwarf sketch noise, so the flat
    // scan itself recovers the construction ground truth — and therefore so
    // does the cascade.
    let truth: Vec<&str> = OVERLAPS.iter().map(|&(_, name)| name).collect();
    let ranked: Vec<&str> = cascaded.iter().map(|r| r.id.table.as_str()).collect();
    assert_eq!(ranked, truth[..K], "ground-truth order");
    assert_eq!(recall_at_k(&cascaded, &truth, K), 1.0);
}

#[test]
fn too_tight_margins_degrade_recall_measurably_and_monotonically() {
    let mut service = QueryService::open(fixture_dir()).expect("open fixture");
    let query = query_table();
    let q = service.sketch_query(&query, "v").expect("sketch");
    let cq = service
        .sketch_query_companion(&query, "v")
        .expect("companion sketch");
    const K: usize = 4;
    let truth: Vec<&str> = OVERLAPS.iter().map(|&(_, name)| name).collect();
    // Confidence 0.0 trusts the cheap tier's point estimates outright — no
    // safety margin at all; 1.0 keeps one standard error.  Both are tighter
    // than the default (recorded here so a bound change surfaces as a diff).
    let mut measured = Vec::new();
    for confidence in [0.0, 1.0, DEFAULT_CASCADE_CONFIDENCE] {
        let (answer, _) = service
            .query_joinable_cascade(&q, cq.as_ref(), K, confidence)
            .expect("cascade");
        measured.push(recall_at_k(&answer, &truth, K));
    }
    println!("measured recall@{K} at confidence [0.0, 1.0, default]: {measured:?}");
    // Tightening the margin must never *improve* recall, and the default must
    // stay perfect.  On this committed fixture the decoys measurably cost the
    // no-margin cascade recall (0.75 at confidence 0.0) — if that stops being
    // true the cheap tier got sharper and this fixture should be rebuilt to
    // keep exercising the margin.
    assert!(measured[0] <= measured[1] + 1e-12);
    assert!(measured[1] <= measured[2] + 1e-12);
    assert!(
        measured[0] < 1.0,
        "confidence 0.0 must measurably lose recall on the decoy fixture"
    );
    assert_eq!(measured[2], 1.0, "default margin must keep the true top-k");
    // Every measured recall stays a valid fraction of k.
    for r in &measured {
        assert!((0.0..=1.0).contains(r));
    }
}
