//! HTTP/1.1 binding conformance (`--features server`).
//!
//! `docs/PROTOCOL.md` promises the HTTP binding is a *framing*, not a dialect:
//! the HTTP response body for any request is byte-identical to the line the TCP
//! framer would send.  This suite replays every annotated request example from
//! the doc against twin servers — one TCP-only, one HTTP-only, over identically
//! seeded catalogs — and holds the binding to that promise, plus the parts of
//! the HTTP surface that have no TCP counterpart (GET routes, op injection,
//! typed framing rejections, overload statuses).

#![cfg(feature = "server")]

use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_core::SketcherSpec;
use ipsketch_serve::http;
use ipsketch_serve::protocol::{ErrorCode, Request, Response, ResponseBody};
use ipsketch_serve::server::{serve, ServerConfig, ServerHandle};
use ipsketch_serve::QueryService;
use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

const PROTOCOL_DOC: &str = include_str!("../../../docs/PROTOCOL.md");

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsketch-httpconf-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> SketcherSpec {
    AnySketcher::for_budget(SketchMethod::WeightedMinHash, 256.0, 7)
        .expect("budget fits")
        .spec()
}

/// An annotated example harvested from the doc (same convention as the tier-1
/// `protocol_doc` suite: `<!-- conformance: … -->` over a ```json fence).
struct DocExample {
    kind: String,
    json: String,
    line: usize,
}

fn harvest() -> Vec<DocExample> {
    let lines: Vec<&str> = PROTOCOL_DOC.lines().collect();
    let mut examples = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if let Some(rest) = lines[i].trim().strip_prefix("<!-- conformance:") {
            let kind = rest
                .strip_suffix("-->")
                .expect("unterminated annotation")
                .trim()
                .to_string();
            let mut body = String::new();
            let mut j = i + 2;
            while j < lines.len() && lines[j].trim() != "```" {
                body.push_str(lines[j]);
                body.push('\n');
                j += 1;
            }
            examples.push(DocExample {
                kind,
                json: body,
                line: i + 1,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    examples
}

/// A blocking line-protocol client that returns the raw response line,
/// trailing newline included, for byte-level comparison.
struct LineClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl LineClient {
    fn connect(addr: SocketAddr) -> LineClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        LineClient {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn call(&mut self, line: &str) -> String {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        response
    }
}

/// One parsed HTTP response.
struct HttpResponse {
    status: u16,
    body: Vec<u8>,
}

impl HttpResponse {
    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("UTF-8 body")
    }

    fn decode(&self) -> Response {
        Response::decode(self.body_str().trim_end()).expect("protocol body")
    }
}

/// A blocking HTTP/1.1 client, hand-rolled so the tests control the exact
/// bytes on the wire.
struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    fn connect(addr: SocketAddr) -> HttpClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        HttpClient {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            stream,
        }
    }

    fn send(&mut self, raw: &[u8]) {
        self.stream.write_all(raw).expect("send");
    }

    fn read_response(&mut self) -> HttpResponse {
        let mut status_line = String::new();
        let n = self
            .reader
            .read_line(&mut status_line)
            .expect("status line");
        assert!(n > 0, "server closed before answering");
        assert!(
            status_line.starts_with("HTTP/1.1 "),
            "not an HTTP/1.1 status line: {status_line:?}"
        );
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some(value) = header
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = value.parse().expect("numeric content-length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        HttpResponse { status, body }
    }

    fn post(&mut self, path: &str, body: &str) -> HttpResponse {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nHost: conformance\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.send(raw.as_bytes());
        self.read_response()
    }

    fn get(&mut self, target: &str) -> HttpResponse {
        self.send(format!("GET {target} HTTP/1.1\r\nHost: conformance\r\n\r\n").as_bytes());
        self.read_response()
    }

    /// Asserts the server closes the connection (a clean EOF follows).
    fn expect_eof(&mut self) {
        let mut byte = [0u8; 1];
        assert_eq!(
            self.reader.read(&mut byte).expect("clean close"),
            0,
            "server must close this connection"
        );
    }
}

/// Drops live server measurements from an info response so twin servers can be
/// compared typed: latencies and gauges legitimately differ between processes.
fn null_server(mut response: Response) -> Response {
    if let Ok(ResponseBody::Info { server, .. }) = &mut response.result {
        *server = None;
    }
    response
}

/// Extracts the `"op"` token from a possibly-invalid request body.
fn body_op(json: &str) -> Option<&str> {
    json.split("\"op\"").nth(1)?.split('"').nth(1)
}

fn await_passes(handle: &ServerHandle, at_least: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while handle.maintenance_stats().passes < at_least {
        assert!(
            std::time::Instant::now() < deadline,
            "maintenance never caught up: {:?}",
            handle.maintenance_stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn http_responses_are_byte_identical_to_tcp_responses_for_every_doc_example() {
    let tcp_root = temp_root("doc-tcp");
    let http_root = temp_root("doc-http");
    // Twin catalogs under identical specs; maintenance stays signal-driven so
    // the twins can be held in lockstep between mutating examples.
    let tcp_handle = serve(
        QueryService::create(&tcp_root, spec()).expect("create"),
        ServerConfig::builder()
            .tcp("127.0.0.1:0")
            .maintenance_interval(None)
            .build()
            .expect("config"),
    )
    .expect("serve tcp");
    let http_handle = serve(
        QueryService::create(&http_root, spec()).expect("create"),
        ServerConfig::builder()
            .http("127.0.0.1:0")
            .maintenance_interval(None)
            .build()
            .expect("config"),
    )
    .expect("serve http");
    let mut tcp = LineClient::connect(tcp_handle.tcp_addr().expect("tcp bound"));
    let mut http = HttpClient::connect(http_handle.http_addr().expect("http bound"));

    let mut replayed = 0;
    let mut expected_passes = 0;
    for example in harvest() {
        let at = format!("docs/PROTOCOL.md line {}", example.line);
        // Doc examples are wrapped for readability; the wire form is one line.
        let compact = example.json.replace('\n', " ");
        match example
            .kind
            .split_whitespace()
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["request"] => {
                let request =
                    Request::decode(&compact).unwrap_or_else(|e| panic!("{at}: {}", e.error));
                let (path, _) = http::ROUTES
                    .iter()
                    .find(|(_, op)| *op == request.body.op())
                    .expect("every op has a route");
                let tcp_line = tcp.call(&compact);
                let response = http.post(path, &compact);
                let decoded = Response::decode(tcp_line.trim_end()).expect("tcp line decodes");
                let expected_status = match &decoded.result {
                    Ok(_) => 200,
                    Err(e) => e.code.http_status(),
                };
                assert_eq!(response.status, expected_status, "{at}: HTTP status");
                if matches!(
                    &decoded.result,
                    Ok(ResponseBody::Info {
                        server: Some(_),
                        ..
                    })
                ) {
                    // Live server stats are process-local measurements; hold
                    // everything else to typed equality.
                    assert_eq!(
                        null_server(decoded.clone()),
                        null_server(response.decode()),
                        "{at}: info responses drifted between framers"
                    );
                } else {
                    assert_eq!(
                        response.body_str(),
                        tcp_line,
                        "{at}: HTTP body must be byte-identical to the TCP line"
                    );
                }
                // Registrations signal a compaction pass; wait for both twins
                // to absorb it so later `info` examples see identical catalogs.
                if matches!(&decoded.result, Ok(ResponseBody::Report { .. })) {
                    expected_passes += 1;
                    await_passes(&tcp_handle, expected_passes);
                    await_passes(&http_handle, expected_passes);
                }
                replayed += 1;
            }
            ["request-error", code] => {
                let expected = ErrorCode::parse(code)
                    .unwrap_or_else(|| panic!("{at}: `{code}` is not a documented error code"));
                let tcp_line = tcp.call(&compact);
                let tcp_decoded = Response::decode(tcp_line.trim_end()).expect("tcp line decodes");
                assert_eq!(
                    tcp_decoded.result.expect_err("doc promises rejection").code,
                    expected,
                    "{at}: TCP error code"
                );
                // Route by the body's op token: routable ops go to their route,
                // unknown ops to the path that spells them (answered 404), and
                // op-less bodies to an arbitrary op route.
                let path = match body_op(&compact) {
                    Some(op) => http::ROUTES
                        .iter()
                        .find(|(_, o)| *o == op)
                        .map_or_else(|| format!("/v1/{op}"), |(p, _)| (*p).to_string()),
                    None => "/v1/query".to_string(),
                };
                let response = http.post(&path, &compact);
                assert_eq!(response.status, expected.http_status(), "{at}: HTTP status");
                assert_eq!(
                    response.decode().result.expect_err("rejected").code,
                    expected,
                    "{at}: HTTP error code"
                );
                replayed += 1;
            }
            // Response examples are outputs; the tier-1 doc suite round-trips
            // them typed.
            _ => {}
        }
    }
    assert!(
        replayed >= 11,
        "suspiciously few doc examples replayed: {replayed}"
    );

    tcp_handle.shutdown();
    http_handle.shutdown();
    fs::remove_dir_all(&tcp_root).expect("cleanup");
    fs::remove_dir_all(&http_root).expect("cleanup");
}

#[test]
fn the_http_surface_covers_gets_injection_and_typed_rejections() {
    let root = temp_root("surface");
    let handle = serve(
        QueryService::create(&root, spec()).expect("create"),
        ServerConfig::builder()
            .http("127.0.0.1:0")
            .maintenance_interval(None)
            .build()
            .expect("config"),
    )
    .expect("serve");
    let addr = handle.http_addr().expect("http bound");
    let mut client = HttpClient::connect(addr);

    // GET /v1/info always carries service stats; server stats are opt-in.
    let response = client.get("/v1/info");
    assert_eq!(response.status, 200);
    match response.decode().result.expect("info") {
        ResponseBody::Info { stats, server, .. } => {
            assert!(stats.is_some(), "the server always sends service stats");
            assert!(server.is_none(), "server stats must be requested");
        }
        other => panic!("expected info, got {other:?}"),
    }
    let response = client.get("/v1/info?server=1");
    match response.decode().result.expect("info") {
        ResponseBody::Info { server, .. } => {
            let server = server.expect("?server=1 opts into server stats");
            assert_eq!(server.connections_open, 1);
        }
        other => panic!("expected info, got {other:?}"),
    }

    // POST with the op omitted: the route injects it.
    let response = client.post("/v1/info", r#"{"v": 1, "id": 41}"#);
    assert_eq!(response.status, 200);
    assert!(matches!(
        response.decode().result,
        Ok(ResponseBody::Info { .. })
    ));

    // A body op that contradicts the route is refused, not silently rerouted.
    let response = client.post("/v1/query", r#"{"v": 1, "op": "info"}"#);
    assert_eq!(response.status, 400);
    assert_eq!(
        response.decode().result.expect_err("contradiction").code,
        ErrorCode::BadRequest
    );

    // Unknown routes answer `unknown_op`, 404.
    let response = client.post("/v1/compact", r#"{"v": 1}"#);
    assert_eq!(response.status, 404);
    assert_eq!(
        response.decode().result.expect_err("unrouted").code,
        ErrorCode::UnknownOp
    );

    // The op routes are POST-only.
    client.send(b"GET /v1/query HTTP/1.1\r\nHost: conformance\r\n\r\n");
    let response = client.read_response();
    assert_eq!(response.status, 405);

    // Expect: 100-continue gets the interim response before the final one.
    let body = r#"{"v": 1, "id": 42}"#;
    client.send(
        format!(
            "POST /v1/info HTTP/1.1\r\nHost: conformance\r\nExpect: 100-continue\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    );
    let interim = client.read_response();
    assert_eq!(interim.status, 100);
    client.send(body.as_bytes());
    let response = client.read_response();
    assert_eq!(response.status, 200);

    // Connection: close is honored once the response is written.
    client.send(
        b"POST /v1/info HTTP/1.1\r\nHost: conformance\r\nConnection: close\r\n\
          Content-Length: 8\r\n\r\n{\"v\": 1}",
    );
    let response = client.read_response();
    assert_eq!(response.status, 200);
    client.expect_eof();

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn http_framing_violations_get_typed_statuses_and_close() {
    let root = temp_root("framing");
    let handle = serve(
        QueryService::create(&root, spec()).expect("create"),
        ServerConfig::builder()
            .http("127.0.0.1:0")
            .max_line_bytes(1024)
            .maintenance_interval(None)
            .build()
            .expect("config"),
    )
    .expect("serve");
    let addr = handle.http_addr().expect("http bound");

    // Unsupported HTTP version.
    let mut client = HttpClient::connect(addr);
    client.send(b"POST /v1/info HTTP/2.0\r\nHost: t\r\nContent-Length: 0\r\n\r\n");
    let response = client.read_response();
    assert_eq!(response.status, 505);
    // `unsupported_version` is reserved for the protocol's own `v` field; an
    // alien HTTP version is a malformed framing, i.e. `bad_request`.
    assert_eq!(
        response.decode().result.expect_err("rejected").code,
        ErrorCode::BadRequest
    );
    client.expect_eof();

    // Chunked bodies are not implemented.
    let mut client = HttpClient::connect(addr);
    client.send(b"POST /v1/info HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n");
    assert_eq!(client.read_response().status, 501);
    client.expect_eof();

    // Conflicting Content-Length headers are a smuggling hazard: refused.
    let mut client = HttpClient::connect(addr);
    client.send(
        b"POST /v1/info HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n",
    );
    assert_eq!(client.read_response().status, 400);
    client.expect_eof();

    // RFC 9110 `1*DIGIT`: a signed Content-Length (which `parse::<usize>()`
    // would accept for `+`) is malformed framing, typed and closed.
    for bad in ["+17", "-1", "", "2 2"] {
        let mut client = HttpClient::connect(addr);
        client.send(
            format!("POST /v1/info HTTP/1.1\r\nHost: t\r\nContent-Length: {bad}\r\n\r\n")
                .as_bytes(),
        );
        let response = client.read_response();
        assert_eq!(response.status, 400, "Content-Length `{bad}`");
        assert_eq!(
            response.decode().result.expect_err("rejected").code,
            ErrorCode::BadRequest,
            "Content-Length `{bad}`"
        );
        client.expect_eof();
    }

    // Header blocks beyond the fixed bound.
    let mut client = HttpClient::connect(addr);
    client.send(
        format!(
            "GET /v1/info HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(17 * 1024)
        )
        .as_bytes(),
    );
    assert_eq!(client.read_response().status, 431);
    client.expect_eof();

    // Bodies beyond the configured request bound, rejected from the header
    // alone with the protocol's `too_large`.
    let mut client = HttpClient::connect(addr);
    let big = "x".repeat(4096);
    let response = client.post("/v1/query", &big);
    assert_eq!(response.status, 413);
    assert_eq!(
        response.decode().result.expect_err("rejected").code,
        ErrorCode::TooLarge
    );
    client.expect_eof();

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}

#[test]
fn http_connection_cap_rejects_with_503_and_closes() {
    let root = temp_root("conncap");
    let handle = serve(
        QueryService::create(&root, spec()).expect("create"),
        ServerConfig::builder()
            .http("127.0.0.1:0")
            .max_connections(1)
            .maintenance_interval(None)
            .build()
            .expect("config"),
    )
    .expect("serve");
    let addr = handle.http_addr().expect("http bound");

    // Occupy the only slot, with a round trip to make the occupancy visible.
    let mut first = HttpClient::connect(addr);
    assert_eq!(first.get("/v1/info").status, 200);

    // The next connection is answered 503 without ever sending a request…
    let mut second = HttpClient::connect(addr);
    let rejection = second.read_response();
    assert_eq!(rejection.status, 503);
    assert_eq!(
        rejection.decode().result.expect_err("rejected").code,
        ErrorCode::Overloaded
    );
    // …and closed, so load balancers can fail over immediately.
    second.expect_eof();

    // The occupant is unaffected.
    assert_eq!(first.get("/v1/info?server=1").status, 200);

    handle.shutdown();
    fs::remove_dir_all(&root).expect("cleanup");
}
