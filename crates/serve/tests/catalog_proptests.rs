//! Property-based tests for the catalog manifest: encode/decode round-trips over
//! arbitrary entry sets, and corruption (truncation, bit flips, garbage) must always
//! surface typed [`CatalogError`]s — never a panic, never a silently-wrong manifest.

use ipsketch_core::wmh::{WmhStream, WmhVariant};
use ipsketch_core::{FormatVersion, SketcherKind, SketcherSpec};
use ipsketch_serve::error::CatalogError;
use ipsketch_serve::manifest::{fnv64, CompanionRef, Manifest, ManifestEntry};
use proptest::prelude::*;

/// Characters used in generated names: ASCII plus multi-byte UTF-8, so string
/// length-prefixes (bytes) and character counts disagree.
const NAME_CHARS: [char; 40] = [
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z', '0', '1', '2', '3', '_', '-', '.', ' ', 'é', 'ß', '中',
    '文', '→', 'λ',
];

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u64..NAME_CHARS.len() as u64, 0..12).prop_map(|indices| {
        indices
            .into_iter()
            .map(|i| NAME_CHARS[i as usize])
            .collect()
    })
}

fn spec_strategy() -> impl Strategy<Value = SketcherSpec> {
    (0u64..7, 1u64..500, any::<u64>(), any::<bool>()).prop_map(|(kind, size, seed, v2)| {
        let size_usize = size as usize;
        let format = if v2 {
            FormatVersion::V2
        } else {
            FormatVersion::V1
        };
        let kind = match kind {
            0 => SketcherKind::Jl {
                rows: size_usize,
                seed,
            },
            1 => SketcherKind::CountSketch {
                buckets: size_usize,
                repetitions: 1 + size_usize % 9,
                seed,
            },
            2 => SketcherKind::MinHash {
                samples: size_usize,
                seed,
                hash_kind: Default::default(),
            },
            3 => SketcherKind::Kmv {
                capacity: 2 + size_usize,
                seed,
            },
            4 => SketcherKind::WeightedMinHash {
                samples: size_usize,
                seed,
                discretization: 1 + size,
                variant: if size % 2 == 0 {
                    WmhVariant::Fast
                } else {
                    WmhVariant::Naive
                },
                // The v2 record stream only exists under the v2 layout; a v1 spec
                // cannot persist it, so don't generate that inert combination.
                stream: if v2 && seed % 2 == 0 {
                    WmhStream::V2
                } else {
                    WmhStream::V1
                },
            },
            5 => SketcherKind::SimHash {
                bits: size_usize,
                seed,
            },
            _ => SketcherKind::Icws {
                samples: size_usize,
                seed,
            },
        };
        SketcherSpec::new(format, kind)
    })
}

fn companion_strategy() -> impl Strategy<Value = Option<CompanionRef>> {
    proptest::option::of((any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(slot, blob_len, checksum)| CompanionRef {
            file: format!("{:06}.cmp", slot % 1_000_000),
            blob_len,
            checksum,
        },
    ))
}

fn entry_strategy() -> impl Strategy<Value = ManifestEntry> {
    (
        name_strategy(),
        name_strategy(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        companion_strategy(),
    )
        .prop_map(
            |(table, column, rows, blob_len, checksum, dropped, companion)| ManifestEntry {
                file: format!("{:06}.col", rows % 1_000_000),
                table,
                column,
                rows,
                blob_len,
                checksum,
                dropped,
                companion,
            },
        )
}

fn manifest_strategy() -> impl Strategy<Value = Manifest> {
    (
        spec_strategy(),
        proptest::collection::vec(entry_strategy(), 0..10),
        proptest::option::of(spec_strategy()),
    )
        .prop_map(|(spec, mut entries, companion_spec)| {
            // The v1 layout has no flags byte: a v1 manifest cannot carry a
            // tombstone or a companion, so don't generate one (it would not
            // round-trip).
            let v1 = spec.format == FormatVersion::V1;
            // The trailing companion-spec section likewise only exists under v2;
            // pin the declared companion to the manifest's own format so it
            // round-trips as written.
            let companion_spec = companion_spec
                .filter(|_| !v1)
                .map(|c| c.with_format(spec.format));
            if v1 || companion_spec.is_none() {
                // Companion refs are only consistent under a declared companion
                // spec (decode enforces this), and v1 additionally has no flags
                // byte to carry tombstones or companions.
                for entry in &mut entries {
                    entry.companion = None;
                    if v1 {
                        entry.dropped = false;
                    }
                }
            }
            let mut manifest = Manifest::new(spec);
            manifest.entries = entries;
            manifest.companion_spec = companion_spec;
            manifest
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_round_trips(manifest in manifest_strategy()) {
        let encoded = manifest.encode();
        let decoded = Manifest::decode(&encoded);
        prop_assert_eq!(decoded.expect("fresh encoding decodes"), manifest);
    }

    #[test]
    fn every_truncation_is_a_typed_error(manifest in manifest_strategy(), cut in any::<u64>()) {
        let encoded = manifest.encode();
        // Any strict prefix must fail with Corrupt — never panic, never decode.
        // One documented exception: the companion-spec section trails the entries,
        // so cutting exactly at its boundary yields a well-formed companion-less
        // manifest — *unless* some entry references a companion blob, which decode
        // rejects as inconsistent without the spec.
        let cut = (cut as usize) % encoded.len().max(1);
        // The trailing section is `tag (1) + len (4) + spec bytes`; cutting exactly
        // before it leaves everything up to and including the entries intact.
        let section_boundary = manifest.companion_spec.as_ref().is_some_and(|s| {
            cut == encoded.len() - (1 + 4 + s.encode().len())
        });
        let has_companion_refs = manifest.entries.iter().any(|e| e.companion.is_some());
        if section_boundary && !has_companion_refs {
            prop_assert!(Manifest::decode(&encoded[..cut]).is_ok());
        } else {
            let is_corrupt = matches!(
                Manifest::decode(&encoded[..cut]),
                Err(CatalogError::Corrupt { .. })
            );
            prop_assert!(is_corrupt);
        }
    }

    #[test]
    fn bit_flips_never_panic_and_header_flips_always_fail(
        manifest in manifest_strategy(),
        position in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut encoded = manifest.encode();
        let position = (position as usize) % encoded.len();
        encoded[position] ^= flip;
        // Decoding corrupted bytes must be total: either a typed error or a decoded
        // manifest (a flip inside a name's bytes can be another valid name) — the
        // property is that it never panics and never returns Ok with the header
        // damaged.
        let result = Manifest::decode(&encoded);
        if position < 5 {
            let is_corrupt = matches!(result, Err(CatalogError::Corrupt { .. }));
            prop_assert!(is_corrupt);
        }
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Manifest::decode(&bytes);
    }

    #[test]
    fn checksum_detects_any_blob_flip(
        blob in proptest::collection::vec(any::<u8>(), 1..300),
        position in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let checksum = fnv64(&blob);
        let mut damaged = blob.clone();
        let position = (position as usize) % damaged.len();
        damaged[position] ^= flip;
        prop_assert!(fnv64(&damaged) != checksum);
    }
}
