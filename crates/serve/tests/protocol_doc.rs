//! Doc-driven protocol conformance: `docs/PROTOCOL.md` is the normative spec, and
//! this test parses its annotated examples against the implementation, so the spec
//! and the code cannot silently drift apart.
//!
//! The doc marks each fenced ```json example with an HTML comment on the preceding
//! line:
//!
//! * `<!-- conformance: request -->` — must decode as a [`Request`], and survive a
//!   decode → encode → decode round trip unchanged.
//! * `<!-- conformance: response -->` — must decode as a [`Response`], and survive
//!   the same round trip.
//! * `<!-- conformance: request-error <code> -->` — must be *rejected* by
//!   [`Request::decode`] with exactly that error code.
//!
//! The error-code table is also harvested: its backticked first-column tokens must
//! match [`ErrorCode::ALL`] exactly, in order.
//!
//! This runs in the tier-1 suite (no `server` feature): the protocol model is pure
//! data.

use ipsketch_serve::http;
use ipsketch_serve::protocol::{ErrorCode, Request, Response};

const PROTOCOL_DOC: &str = include_str!("../../../docs/PROTOCOL.md");

/// An annotated example harvested from the doc.
#[derive(Debug)]
struct DocExample {
    /// The annotation payload, e.g. `request` or `request-error bad_request`.
    kind: String,
    /// The JSON text, with the doc's line breaks joined (examples are wrapped for
    /// readability; the wire form is one line, and JSON ignores the whitespace).
    json: String,
    /// 1-based line of the annotation, for failure messages.
    line: usize,
}

/// Harvests every `<!-- conformance: … -->` + fenced-json pair.
fn harvest() -> Vec<DocExample> {
    let lines: Vec<&str> = PROTOCOL_DOC.lines().collect();
    let mut examples = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i].trim();
        if let Some(rest) = line.strip_prefix("<!-- conformance:") {
            let kind = rest
                .strip_suffix("-->")
                .expect("unterminated conformance annotation")
                .trim()
                .to_string();
            // The fence must open on the next line.
            assert!(
                lines
                    .get(i + 1)
                    .is_some_and(|l| l.trim().starts_with("```json")),
                "line {}: conformance annotation `{kind}` not followed by a ```json fence",
                i + 1,
            );
            let mut body = String::new();
            let mut j = i + 2;
            while j < lines.len() && lines[j].trim() != "```" {
                body.push_str(lines[j]);
                body.push('\n');
                j += 1;
            }
            assert!(j < lines.len(), "line {}: unterminated fence", i + 2);
            examples.push(DocExample {
                kind,
                json: body,
                line: i + 1,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    examples
}

#[test]
fn every_annotated_example_conforms_to_the_implementation() {
    let examples = harvest();
    let mut requests = 0;
    let mut responses = 0;
    let mut request_errors = 0;
    for example in &examples {
        let at = format!("docs/PROTOCOL.md line {} ({})", example.line, example.kind);
        match example
            .kind
            .split_whitespace()
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["request"] => {
                requests += 1;
                let decoded = Request::decode(&example.json)
                    .unwrap_or_else(|e| panic!("{at}: does not decode: {}", e.error));
                let reencoded = Request::decode(&decoded.encode())
                    .unwrap_or_else(|e| panic!("{at}: re-encoding broke: {}", e.error));
                assert_eq!(reencoded, decoded, "{at}: decode→encode→decode drifted");
            }
            ["response"] => {
                responses += 1;
                let decoded = Response::decode(&example.json)
                    .unwrap_or_else(|e| panic!("{at}: does not decode: {e}"));
                let reencoded = Response::decode(&decoded.encode())
                    .unwrap_or_else(|e| panic!("{at}: re-encoding broke: {e}"));
                assert_eq!(reencoded, decoded, "{at}: decode→encode→decode drifted");
            }
            ["request-error", code] => {
                request_errors += 1;
                let expected = ErrorCode::parse(code)
                    .unwrap_or_else(|| panic!("{at}: `{code}` is not a documented error code"));
                let failure = Request::decode(&example.json)
                    .expect_err(&format!("{at}: decoded but the doc promises rejection"));
                assert_eq!(
                    failure.error.code, expected,
                    "{at}: rejected with `{}`, doc promises `{}` ({})",
                    failure.error.code, expected, failure.error.message
                );
            }
            other => panic!("{at}: unknown conformance kind {other:?}"),
        }
    }
    // The harvest itself is load-bearing: if the doc is restructured and the
    // annotations stop matching, this catches the silent loss of coverage.
    assert!(
        requests >= 10 && responses >= 9 && request_errors >= 4,
        "suspiciously few examples harvested: {requests} requests, {responses} responses, \
         {request_errors} request-errors"
    );
}

#[test]
fn the_error_code_table_matches_the_implementation_exactly() {
    // Harvest backticked tokens from the first column of the table under
    // "## Error codes".
    let section = PROTOCOL_DOC
        .split("## Error codes")
        .nth(1)
        .expect("doc has an `## Error codes` section");
    let mut documented = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let code = rest.split('`').next().expect("closing backtick");
        documented.push(code.to_string());
    }
    let implemented: Vec<String> = ErrorCode::ALL
        .iter()
        .map(|c| c.as_str().to_string())
        .collect();
    assert_eq!(
        documented, implemented,
        "docs/PROTOCOL.md error table and ErrorCode::ALL must list the same codes in the same order"
    );
}

#[test]
fn the_http_status_column_matches_the_implementation_exactly() {
    // The second cell of each error-table row is the code's HTTP status in the
    // HTTP/1.1 binding.
    let section = PROTOCOL_DOC
        .split("## Error codes")
        .nth(1)
        .expect("doc has an `## Error codes` section");
    let mut documented = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let mut cells = rest.split('|');
        let code = cells
            .next()
            .expect("code cell")
            .trim()
            .trim_matches('`')
            .to_string();
        let status: u16 = cells
            .next()
            .expect("status cell")
            .trim()
            .parse()
            .expect("HTTP column holds a status number");
        documented.push((code, status));
    }
    let implemented: Vec<(String, u16)> = ErrorCode::ALL
        .iter()
        .map(|c| (c.as_str().to_string(), c.http_status()))
        .collect();
    assert_eq!(
        documented, implemented,
        "docs/PROTOCOL.md HTTP column and ErrorCode::http_status must agree, in order"
    );
}

#[test]
fn the_route_table_matches_the_http_binding_exactly() {
    // Harvest `| `/v1/…` | `op` |` rows between the HTTP binding heading and the
    // error-code section.
    let section = PROTOCOL_DOC
        .split("## HTTP/1.1 binding")
        .nth(1)
        .expect("doc has an `## HTTP/1.1 binding` section")
        .split("## Error codes")
        .next()
        .expect("error codes follow the binding");
    let mut documented = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("| `/") else {
            continue;
        };
        let mut cells = rest.split('|');
        let path = format!(
            "/{}",
            cells.next().expect("path cell").trim().trim_matches('`')
        );
        let op = cells
            .next()
            .expect("op cell")
            .trim()
            .trim_matches('`')
            .to_string();
        documented.push((path, op));
    }
    let implemented: Vec<(String, String)> = http::ROUTES
        .iter()
        .map(|(path, op)| ((*path).to_string(), (*op).to_string()))
        .collect();
    assert_eq!(
        documented, implemented,
        "docs/PROTOCOL.md route table and http::ROUTES must list the same routes in the same order"
    );
    for (path, _) in http::ROUTES {
        assert!(
            section.contains(path),
            "route `{path}` is implemented but undocumented"
        );
    }
}

#[test]
fn the_documented_version_matches_the_implementation() {
    assert!(
        PROTOCOL_DOC
            .lines()
            .next()
            .is_some_and(|title| title.contains(&format!(
                "(v{})",
                ipsketch_serve::protocol::PROTOCOL_VERSION
            ))),
        "the doc title must name the implemented protocol version"
    );
}
