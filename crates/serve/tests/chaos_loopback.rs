//! Chaos loopback tests (`--features server`): a router fronting real `serve`
//! nodes, one of them behind a [`FaultProxy`], must keep answering
//! **bit-identically** to a healthy in-process twin while the proxied node
//! stalls, drops bytes mid-response, speaks garbage, or resets connections —
//! and no request may block past its configured deadlines.  The suite also
//! exercises the health lifecycle end to end (demotion on failure, probe
//! recovery), typed `deadline_exceeded` on writes to a stalled owner,
//! router-side ingest-session TTL expiry, and the copy-then-flip live
//! rebalance between disjoint node lists.

#![cfg(feature = "server")]

use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_core::SketcherSpec;
use ipsketch_data::{Column, Table};
use ipsketch_join::RankedColumn;
use ipsketch_serve::faults::{FaultMode, FaultProxy};
use ipsketch_serve::protocol::{
    ErrorCode, Mode, Request, RequestBody, Response, ResponseBody, WireQuery, WireRanked, WireTable,
};
use ipsketch_serve::router::{
    owners, rebalance, serve_router, NodeSpec, RetryPolicy, Router, RouterConfig, RouterHandle,
};
use ipsketch_serve::server::{serve, ServerConfig, ServerHandle};
use ipsketch_serve::wire::Json;
use ipsketch_serve::{shard_rows, QueryService};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsketch-chaos-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec_for(seed: u64) -> SketcherSpec {
    AnySketcher::for_budget(SketchMethod::Kmv, 256.0, seed)
        .expect("budget fits")
        .spec()
}

/// The service-test lake: "query.rides" joins heavily with "good.precip".
fn lake() -> (Table, Table, Table) {
    let query = Table::new(
        "query",
        (0..400).collect(),
        vec![Column::new(
            "rides",
            (0..400).map(|i| f64::from(i) + 1.0).collect(),
        )],
    )
    .expect("table");
    let good = Table::new(
        "good",
        (100..500).collect(),
        vec![
            Column::new(
                "precip",
                (100..500).map(|i| 2.0 * f64::from(i) + 3.0).collect(),
            ),
            Column::new(
                "noise",
                (0..400).map(|i| f64::from((i * 37) % 11) - 5.0).collect(),
            ),
        ],
    )
    .expect("table");
    let bad = Table::new(
        "bad",
        (10_000..10_400).collect(),
        vec![Column::new(
            "other",
            (0..400).map(|i| f64::from(i % 7) + 1.0).collect(),
        )],
    )
    .expect("table");
    (query, good, bad)
}

/// One running catalog node: its server handle plus its on-disk root.
struct Node {
    handle: ServerHandle,
    root: PathBuf,
}

fn boot_nodes(tag: &str, seed: u64, n: usize) -> Vec<Node> {
    (0..n)
        .map(|i| {
            let root = temp_root(&format!("{tag}-node{i}"));
            let service = QueryService::create(&root, spec_for(seed)).expect("create node");
            let config = ServerConfig::builder()
                .tcp("127.0.0.1:0")
                .build()
                .expect("valid config");
            let handle = serve(service, config).expect("serve node");
            Node { handle, root }
        })
        .collect()
}

fn node_addr(node: &Node) -> String {
    node.handle.tcp_addr().expect("tcp bound").to_string()
}

fn cleanup(nodes: Vec<Node>) {
    for node in nodes {
        node.handle.shutdown();
        let _ = fs::remove_dir_all(&node.root);
    }
}

/// Aggressive deadlines so fault scenarios resolve in test time: a stalled
/// node costs ~0.4 s per attempt instead of the production 10 s.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        connect_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_millis(400),
        read_attempts: 2,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(40),
        jitter_seed: 7,
    }
}

fn boot_router_cfg(config: RouterConfig) -> RouterHandle {
    let router = Router::with_config(config).expect("router config");
    serve_router(router, "127.0.0.1:0".parse().expect("addr")).expect("bind router")
}

/// A blocking line-protocol client for the router (or any node).
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv_raw(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "router closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn call(&mut self, request: &Request) -> Response {
        self.send_raw(&request.encode());
        Response::decode(&self.recv_raw()).expect("well-formed response")
    }

    fn ingest(&mut self, table: &Table) {
        let response = self.call(&Request {
            id: Json::Null,
            body: RequestBody::Ingest {
                table: WireTable::from_table(table),
                partitions: None,
            },
        });
        response.result.expect("routed ingest succeeds");
    }
}

fn wire_query(table: &Table, column: &str) -> WireQuery {
    let values = table
        .columns()
        .iter()
        .find(|c| c.name == column)
        .expect("column exists")
        .values
        .clone();
    WireQuery {
        table: table.name().to_string(),
        column: column.to_string(),
        keys: table.keys().to_vec(),
        values,
    }
}

fn query_request(id: u64, table: &Table, column: &str, k: u64) -> Request {
    Request {
        id: Json::u64(id),
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k,
            min_join_size: 0.0,
            cascade: false,
            query: wire_query(table, column),
        },
    }
}

/// Asserts a served ranking equals an in-process one bit for bit.
fn assert_bit_identical(served: &[WireRanked], in_process: &[RankedColumn]) {
    assert_eq!(served.len(), in_process.len(), "ranking lengths differ");
    for (s, p) in served.iter().zip(in_process) {
        assert_eq!(s.table, p.id.table);
        assert_eq!(s.column, p.id.column);
        assert_eq!(s.score.to_bits(), p.score.to_bits(), "score drift");
        assert_eq!(
            s.join_size.to_bits(),
            p.estimated_join_size.to_bits(),
            "join size drift"
        );
        assert_eq!(
            s.correlation.to_bits(),
            p.estimated_correlation.to_bits(),
            "correlation drift"
        );
    }
}

/// The shared chaos harness: a 3-node cluster with node 0 behind a fault
/// proxy, populated through the router while the proxy is honest, then the
/// proxy switched to `mode` — after which a fresh client's query must still
/// answer bit-identically to the healthy twin, within `budget`.
///
/// Returns the router and cluster so scenario-specific assertions can
/// continue; the caller shuts everything down.
fn run_fault_scenario(
    tag: &str,
    seed: u64,
    mode: FaultMode,
    budget: Duration,
    expect_failover: bool,
) -> (
    RouterHandle,
    FaultProxy,
    Vec<Node>,
    Vec<RankedColumn>,
    Table,
) {
    let (query, good, bad) = lake();

    let twin_root = temp_root(&format!("{tag}-twin"));
    let mut twin = QueryService::create(&twin_root, spec_for(seed)).expect("twin");
    twin.ingest_table(&good).expect("good");
    twin.ingest_table(&bad).expect("bad");
    let q = twin.sketch_query(&query, "rides").expect("sketch");
    let expected = twin.query_joinable(&q, 5).expect("rank");
    fs::remove_dir_all(&twin_root).expect("cleanup twin");

    let nodes = boot_nodes(tag, seed, 3);
    let proxy = FaultProxy::start(node_addr(&nodes[0]), FaultMode::Passthrough).expect("proxy");
    let specs = vec![
        NodeSpec::tcp(proxy.addr()),
        NodeSpec::tcp(node_addr(&nodes[1])),
        NodeSpec::tcp(node_addr(&nodes[2])),
    ];
    let router = boot_router_cfg(
        RouterConfig::new(specs)
            .replicas(2)
            .retry(fast_retry())
            .probe_interval(Some(Duration::from_millis(100))),
    );

    let mut client = Client::connect(router.addr());
    client.ingest(&good);
    client.ingest(&bad);

    // Healthy sanity check (also warms every node).
    let response = client.call(&query_request(1, &query, "rides", 5));
    match response.result.expect("healthy query succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
        other => panic!("expected ranking, got {other:?}"),
    }

    // Turn the fault on and query over a fresh connection (fresh node pool).
    proxy.handle().set_mode(mode);
    let mut degraded = Client::connect(router.addr());
    let started = Instant::now();
    let response = degraded.call(&query_request(2, &query, "rides", 5));
    let elapsed = started.elapsed();
    match response.result.expect("degraded query succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
        other => panic!("expected ranking, got {other:?}"),
    }
    assert!(
        elapsed < budget,
        "query under {mode:?} took {elapsed:?}, budget {budget:?}: a deadline leaked"
    );

    if expect_failover {
        let stats = router.stats();
        assert!(stats.failovers >= 1, "failover not counted: {stats:?}");
        let faulty = &stats.nodes[0];
        assert!(faulty.errors >= 1, "faulty node has no errors: {stats:?}");
        assert!(!faulty.healthy, "faulty node still healthy: {stats:?}");
        assert!(faulty.demotions >= 1, "no demotion counted: {stats:?}");
        // Demoted nodes are skipped outright: the next fresh read must be
        // fast (no per-attempt deadline spent on the faulty node).
        let mut skipping = Client::connect(router.addr());
        let started = Instant::now();
        let response = skipping.call(&query_request(3, &query, "rides", 5));
        let elapsed = started.elapsed();
        match response.result.expect("skipping query succeeds") {
            ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
            other => panic!("expected ranking, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_millis(350),
            "demoted node was not skipped: {elapsed:?}"
        );
    }

    (router, proxy, nodes, expected, query)
}

#[test]
fn a_stalled_node_answers_bit_identically_within_deadlines() {
    // Budget: 2 attempts x 400 ms read timeout + backoff + the healthy work.
    let (router, proxy, nodes, _, _) = run_fault_scenario(
        "stall",
        43,
        FaultMode::StallForever,
        Duration::from_secs(3),
        true,
    );
    router.shutdown();
    proxy.shutdown();
    cleanup(nodes);
}

#[test]
fn a_connection_resetting_node_answers_bit_identically() {
    let (router, proxy, nodes, _, _) =
        run_fault_scenario("reset", 47, FaultMode::Reset, Duration::from_secs(3), true);
    router.shutdown();
    proxy.shutdown();
    cleanup(nodes);
}

#[test]
fn a_garbage_speaking_node_answers_bit_identically() {
    let (router, proxy, nodes, _, _) = run_fault_scenario(
        "garbage",
        53,
        FaultMode::Garbage,
        Duration::from_secs(3),
        true,
    );
    router.shutdown();
    proxy.shutdown();
    cleanup(nodes);
}

#[test]
fn a_mid_response_byte_drop_answers_bit_identically() {
    let (router, proxy, nodes, _, _) = run_fault_scenario(
        "dropafter",
        59,
        FaultMode::DropAfter(40),
        Duration::from_secs(3),
        true,
    );
    router.shutdown();
    proxy.shutdown();
    cleanup(nodes);
}

#[test]
fn a_brief_stall_within_the_deadline_is_not_a_failure() {
    // 150 ms pause < 400 ms read timeout: the node is slow, not dead.  The
    // router must wait it out — same bytes, no demotion, no failover.
    let (router, proxy, nodes, _, _) = run_fault_scenario(
        "brownout",
        61,
        FaultMode::StallThenResume(Duration::from_millis(150)),
        Duration::from_secs(3),
        false,
    );
    let stats = router.stats();
    assert_eq!(
        stats.failovers, 0,
        "brownout counted as failover: {stats:?}"
    );
    assert!(
        stats.nodes[0].healthy,
        "brownout demoted the node: {stats:?}"
    );
    assert_eq!(stats.nodes[0].demotions, 0);
    router.shutdown();
    proxy.shutdown();
    cleanup(nodes);
}

#[test]
fn a_demoted_node_is_probed_back_to_health_and_serves_again() {
    let (router, proxy, nodes, expected, query) = run_fault_scenario(
        "probe",
        67,
        FaultMode::StallForever,
        Duration::from_secs(3),
        true,
    );

    // Heal the node; the background prober (100 ms cadence) must promote it
    // without any client traffic touching it.
    proxy.handle().set_mode(FaultMode::Passthrough);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = router.stats();
        let node = &stats.nodes[0];
        if node.healthy && node.promotions >= 1 && node.probes >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prober never restored the node: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Back in rotation: a fresh read over the full fan-out is still
    // bit-identical.
    let mut client = Client::connect(router.addr());
    let response = client.call(&query_request(9, &query, "rides", 5));
    match response.result.expect("recovered query succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
        other => panic!("expected ranking, got {other:?}"),
    }

    router.shutdown();
    proxy.shutdown();
    cleanup(nodes);
}

#[test]
fn a_write_to_a_stalled_owner_fails_typed_as_deadline_exceeded() {
    let nodes = boot_nodes("wstall", 71, 3);
    let proxy = FaultProxy::start(node_addr(&nodes[0]), FaultMode::Passthrough).expect("proxy");
    let specs = vec![
        NodeSpec::tcp(proxy.addr()),
        NodeSpec::tcp(node_addr(&nodes[1])),
        NodeSpec::tcp(node_addr(&nodes[2])),
    ];

    // Pick a table whose single column is owned by the proxied node, so the
    // routed ingest must write through the fault.
    let table_name = (0..200)
        .map(|i| format!("t{i}"))
        .find(|name| owners(&specs, 2, name, "v").contains(&0))
        .expect("some table hashes onto node 0");
    let table = Table::new(
        &table_name,
        (0..50).collect(),
        vec![Column::new(
            "v",
            (0..50).map(|i| f64::from(i) + 1.0).collect(),
        )],
    )
    .expect("table");

    let router = boot_router_cfg(
        RouterConfig::new(specs)
            .replicas(2)
            .retry(fast_retry())
            .probe_interval(None),
    );

    proxy.handle().set_mode(FaultMode::StallForever);
    let mut client = Client::connect(router.addr());
    let started = Instant::now();
    let response = client.call(&Request {
        id: Json::u64(1),
        body: RequestBody::Ingest {
            table: WireTable::from_table(&table),
            partitions: None,
        },
    });
    let elapsed = started.elapsed();
    let error = response.result.expect_err("write through a stall fails");
    assert_eq!(error.code, ErrorCode::DeadlineExceeded, "{error:?}");
    assert!(
        error.message.contains("deadline") || error.message.contains("timed out"),
        "unhelpful message: {}",
        error.message
    );
    // One attempt per owner, never retried: bounded by a single write+read
    // deadline plus the healthy owner's work.
    assert!(
        elapsed < Duration::from_secs(2),
        "non-idempotent op blocked past its deadline: {elapsed:?}"
    );

    router.shutdown();
    proxy.shutdown();
    cleanup(nodes);
}

#[test]
fn an_expired_ingest_session_is_unknown_and_commits_nothing() {
    let nodes = boot_nodes("ttl", 73, 2);
    let specs: Vec<NodeSpec> = nodes.iter().map(|n| NodeSpec::tcp(node_addr(n))).collect();
    let router = boot_router_cfg(
        RouterConfig::new(specs)
            .replicas(2)
            .retry(fast_retry())
            .probe_interval(Some(Duration::from_millis(50)))
            .session_ttl(Duration::from_millis(200)),
    );

    let extra = Table::new(
        "extra",
        (0..100).collect(),
        vec![Column::new(
            "depth",
            (0..100).map(|i| f64::from(i) * 0.25 + 1.0).collect(),
        )],
    )
    .expect("table");
    let wire_shards: Vec<WireTable> = shard_rows(&extra, 2)
        .iter()
        .map(WireTable::from_table)
        .collect();

    let mut client = Client::connect(router.addr());
    let session = match client
        .call(&Request {
            id: Json::Null,
            body: RequestBody::IngestBegin {
                table: extra.name().to_string(),
            },
        })
        .result
        .expect("begin")
    {
        ResponseBody::Session(session) => session,
        other => panic!("expected session, got {other:?}"),
    };
    client
        .call(&Request {
            id: Json::Null,
            body: RequestBody::IngestAnnounce {
                session,
                shard: wire_shards[0].clone(),
            },
        })
        .result
        .expect("announce within the ttl");

    // Let the TTL lapse; the prober thread reaps idle sessions.
    std::thread::sleep(Duration::from_millis(800));

    // Every subsequent touch of the session is the typed error — over the
    // original connection and a fresh one alike.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::IngestSubmit {
            session,
            shard: wire_shards[0].clone(),
        },
    });
    assert_eq!(
        response.result.expect_err("expired submit").code,
        ErrorCode::UnknownSession
    );
    let mut fresh = Client::connect(router.addr());
    let response = fresh.call(&Request {
        id: Json::Null,
        body: RequestBody::IngestFinish { session },
    });
    assert_eq!(
        response.result.expect_err("expired finish").code,
        ErrorCode::UnknownSession
    );

    // Nothing was committed anywhere: the cluster still has zero columns.
    let response = fresh.call(&Request {
        id: Json::Null,
        body: RequestBody::Info { server: false },
    });
    match response.result.expect("info succeeds") {
        ResponseBody::Info { columns, .. } => {
            assert!(
                columns.is_empty(),
                "expired session left a partial commit: {columns:?}"
            );
        }
        other => panic!("expected info, got {other:?}"),
    }

    router.shutdown();
    cleanup(nodes);
}

#[test]
fn rebalance_preserves_byte_identity_before_during_and_after_the_flip() {
    let (query, good, bad) = lake();
    let seed = 79;

    let twin_root = temp_root("rebalance-twin");
    let mut twin = QueryService::create(&twin_root, spec_for(seed)).expect("twin");
    twin.ingest_table(&good).expect("good");
    twin.ingest_table(&bad).expect("bad");
    let q = twin.sketch_query(&query, "rides").expect("sketch");
    let expected = twin.query_joinable(&q, 5).expect("rank");
    fs::remove_dir_all(&twin_root).expect("cleanup twin");

    let assert_ranking = |client: &mut Client, id: u64| {
        let response = client.call(&query_request(id, &query, "rides", 5));
        match response.result.expect("query succeeds") {
            ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
            other => panic!("expected ranking, got {other:?}"),
        }
    };

    // Old cluster: 2 nodes, fully replicated.  New cluster: 3 empty nodes.
    let old_nodes = boot_nodes("rebalance-old", seed, 2);
    let new_nodes = boot_nodes("rebalance-new", seed, 3);
    let old_specs: Vec<NodeSpec> = old_nodes
        .iter()
        .map(|n| NodeSpec::tcp(node_addr(n)))
        .collect();
    let new_specs: Vec<NodeSpec> = new_nodes
        .iter()
        .map(|n| NodeSpec::tcp(node_addr(n)))
        .collect();

    let router = boot_router_cfg(RouterConfig::new(old_specs.clone()).replicas(2));
    let mut client = Client::connect(router.addr());
    client.ingest(&good);
    client.ingest(&bad);
    assert_ranking(&mut client, 1); // before

    // Copy phase: every (table, column) lands on its new owners, blobs
    // shipped verbatim.
    let report = rebalance(&old_specs, &new_specs, 2, &RetryPolicy::default()).expect("rebalance");
    assert_eq!(report.keys, 3, "good.precip, good.noise, bad.other");
    assert_eq!(report.copied, 6, "3 keys x 2 replicas onto empty nodes");
    assert_eq!(report.already_placed, 0);

    // During: the router still serves the old list — copying is invisible.
    assert_ranking(&mut client, 2);

    // Flip: atomic swap to the new list.  Both the pre-flip connection
    // (whose pool re-syncs) and a fresh one answer bit-identically.
    router.set_nodes(new_specs.clone()).expect("flip");
    assert_ranking(&mut client, 3);
    let mut fresh = Client::connect(router.addr());
    assert_ranking(&mut fresh, 4);

    // A second pass is a no-op: everything is already placed.
    let report = rebalance(&old_specs, &new_specs, 2, &RetryPolicy::default()).expect("re-run");
    assert_eq!(report.copied, 0, "rebalance is idempotent: {report:?}");
    assert_eq!(report.already_placed, 6);

    // A brand-new router over only the new nodes agrees byte for byte.
    let second = boot_router_cfg(RouterConfig::new(new_specs).replicas(2));
    let mut via_second = Client::connect(second.addr());
    assert_ranking(&mut via_second, 5);

    router.shutdown();
    second.shutdown();
    cleanup(old_nodes);
    cleanup(new_nodes);
}
