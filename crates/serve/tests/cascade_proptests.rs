//! Property-based tests of the tiered query cascade: whatever catalog the
//! generator builds, the cascade's top-k must be the flat scan's top-k — the
//! same columns, in the same order, with bit-identical scores (the rerank runs
//! the *same* primary estimator over the survivors, and the margin keeps every
//! true top-k candidate alive at the configured confidence).  Planted exact
//! ties must come back in `(score, table, column)` order, cascade or not.

use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_data::{Column, Table};
use ipsketch_join::DEFAULT_CASCADE_CONFIDENCE;
use ipsketch_serve::QueryService;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

/// A candidate table overlapping the query on a generated key range.
fn candidate(index: usize, offset: u64, pattern: u64, rows: u64) -> Table {
    let keys: Vec<u64> = (offset * 40..offset * 40 + rows).collect();
    let values: Vec<f64> = (0..rows as u32)
        .map(|i| match pattern {
            0 => f64::from(i) + 1.0,
            1 => f64::from((i * 37) % 11) + 1.0,
            2 => f64::from((i * 13) % 101) + 0.5,
            _ => f64::from(i % 7) + 1.0,
        })
        .collect();
    Table::new(
        format!("cand_{index}"),
        keys,
        vec![Column::new("v", values)],
    )
    .expect("table")
}

fn query_table() -> Table {
    Table::new(
        "q",
        (0..200).collect(),
        vec![Column::new(
            "v",
            (0..200).map(|i| f64::from(i % 29) + 1.0).collect(),
        )],
    )
    .expect("table")
}

fn method_for(tag: u64) -> SketchMethod {
    match tag {
        0 => SketchMethod::WeightedMinHash,
        1 => SketchMethod::Kmv,
        _ => SketchMethod::MinHash,
    }
}

proptest! {
    // Each case builds an on-disk catalog; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over random catalogs, primary methods, seeds, and `k`, the cascade
    /// answer equals the flat-scan answer bit for bit.
    #[test]
    fn cascade_top_k_matches_the_flat_scan(
        params in proptest::collection::vec((0u64..4, 0u64..4, 60u64..140), 2..8),
        method_tag in 0u64..3,
        seed in 1u64..1000,
        k in 1usize..6,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "ipsketch-cascadeprop-{case}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let spec = AnySketcher::for_budget(method_for(method_tag), 256.0, seed)
            .expect("budget")
            .spec();
        let mut service = QueryService::create(&root, spec).expect("create");
        for (i, &(offset, pattern, rows)) in params.iter().enumerate() {
            service
                .ingest_table(&candidate(i, offset, pattern, rows))
                .expect("ingest");
        }
        let query = query_table();
        let q = service.sketch_query(&query, "v").expect("sketch");
        let cq = service
            .sketch_query_companion(&query, "v")
            .expect("companion sketch");
        prop_assert!(cq.is_some(), "created catalogs store companions by default");
        let flat = service.query_joinable(&q, k).expect("flat");
        let (cascaded, note) = service
            .query_joinable_cascade(&q, cq.as_ref(), k, DEFAULT_CASCADE_CONFIDENCE)
            .expect("cascade");
        prop_assert!(note.is_none(), "companion catalogs never fall back");
        prop_assert_eq!(&cascaded, &flat, "cascade diverged from the flat scan");
        // The cascade returns a prefix of the full flat ranking: deepening k
        // must only append, never reorder.
        let full = service
            .query_joinable(&q, params.len() + 1)
            .expect("full flat");
        prop_assert_eq!(&full[..cascaded.len()], &cascaded[..]);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Planted exact ties (identical data under different names) must come
    /// back adjacent and in `(table, column)` order through the cascade.
    #[test]
    fn planted_ties_keep_the_deterministic_order(
        offset in 0u64..3,
        pattern in 0u64..4,
        seed in 1u64..1000,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "ipsketch-cascadetie-{case}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let spec = AnySketcher::for_budget(SketchMethod::WeightedMinHash, 256.0, seed)
            .expect("budget")
            .spec();
        let mut service = QueryService::create(&root, spec).expect("create");
        // Two byte-identical twins (an exact score tie) plus one distinct
        // candidate; insert the lexicographically-later twin first so the
        // tie-break, not insertion order, decides.
        let twin = candidate(0, offset, pattern, 100);
        let twin_b = Table::new(
            "cand_zz",
            twin.keys().to_vec(),
            vec![Column::new("v", twin.columns()[0].values.clone())],
        )
        .expect("table");
        service.ingest_table(&twin_b).expect("ingest twin b");
        service.ingest_table(&twin).expect("ingest twin a");
        service
            .ingest_table(&candidate(1, offset + 1, (pattern + 1) % 4, 80))
            .expect("ingest distinct");
        let query = query_table();
        let q = service.sketch_query(&query, "v").expect("sketch");
        let cq = service
            .sketch_query_companion(&query, "v")
            .expect("companion sketch");
        let (cascaded, _) = service
            .query_joinable_cascade(&q, cq.as_ref(), 3, DEFAULT_CASCADE_CONFIDENCE)
            .expect("cascade");
        let flat = service.query_joinable(&q, 3).expect("flat");
        prop_assert_eq!(&cascaded, &flat);
        // The twins tie exactly; the earlier table name must rank first.
        let a = cascaded.iter().position(|r| r.id.table == "cand_0");
        let b = cascaded.iter().position(|r| r.id.table == "cand_zz");
        if let (Some(a), Some(b)) = (a, b) {
            let (ra, rb) = (&cascaded[a], &cascaded[b]);
            prop_assert_eq!(ra.score.to_bits(), rb.score.to_bits(), "twins must tie exactly");
            prop_assert!(a < b, "tie must break by (table, column) ascending");
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
