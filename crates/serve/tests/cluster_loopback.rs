//! Cluster loopback tests (`--features server`): a router fronting ≥3 real
//! `serve` nodes must answer **bit-identically** to one node holding the whole
//! catalog — across insertion orders, with a replica-covered node stopped, and
//! while a node-overlapping sharded ingest runs through the router.

#![cfg(feature = "server")]

use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_core::SketcherSpec;
use ipsketch_data::{Column, Table};
use ipsketch_join::{RankedColumn, DEFAULT_CASCADE_CONFIDENCE};
use ipsketch_serve::protocol::{
    ErrorCode, Mode, Request, RequestBody, Response, ResponseBody, WireQuery, WireRanked, WireTable,
};
use ipsketch_serve::router::{serve_router, NodeSpec, Router, RouterHandle};
use ipsketch_serve::server::{serve, ServerConfig, ServerHandle};
use ipsketch_serve::wire::Json;
use ipsketch_serve::{shard_rows, QueryService};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipsketch-cluster-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec_for(seed: u64) -> SketcherSpec {
    AnySketcher::for_budget(SketchMethod::Kmv, 256.0, seed)
        .expect("budget fits")
        .spec()
}

/// The service-test lake: "query.rides" joins heavily with "good.precip".
fn lake() -> (Table, Table, Table) {
    let query = Table::new(
        "query",
        (0..400).collect(),
        vec![Column::new(
            "rides",
            (0..400).map(|i| f64::from(i) + 1.0).collect(),
        )],
    )
    .expect("table");
    let good = Table::new(
        "good",
        (100..500).collect(),
        vec![
            Column::new(
                "precip",
                (100..500).map(|i| 2.0 * f64::from(i) + 3.0).collect(),
            ),
            Column::new(
                "noise",
                (0..400).map(|i| f64::from((i * 37) % 11) - 5.0).collect(),
            ),
        ],
    )
    .expect("table");
    let bad = Table::new(
        "bad",
        (10_000..10_400).collect(),
        vec![Column::new(
            "other",
            (0..400).map(|i| f64::from(i % 7) + 1.0).collect(),
        )],
    )
    .expect("table");
    (query, good, bad)
}

/// Four tables whose only column is value-identical, so all four tie exactly
/// and only the deterministic `(table, column)` tie-break orders them.
fn tie_tables() -> Vec<Table> {
    ["tie_c", "tie_a", "tie_d", "tie_b"]
        .into_iter()
        .map(|name| {
            Table::new(
                name,
                (200..700).collect(),
                vec![Column::new(
                    "v",
                    (200..700).map(|i| f64::from(i) * 0.5 + 1.0).collect(),
                )],
            )
            .expect("table")
        })
        .collect()
}

/// One running catalog node: its server handle plus its on-disk root.
struct Node {
    handle: ServerHandle,
    root: PathBuf,
}

/// Boots `n` empty catalog nodes of the same spec, each with a TCP and an
/// HTTP listener on ephemeral ports.
fn boot_nodes(tag: &str, seed: u64, n: usize) -> Vec<Node> {
    boot_nodes_opts(tag, seed, n, true)
}

/// As [`boot_nodes`], but `companions: false` boots catalogs that store no
/// companion sketches (the pre-cascade layout).
fn boot_nodes_opts(tag: &str, seed: u64, n: usize, companions: bool) -> Vec<Node> {
    (0..n)
        .map(|i| {
            let root = temp_root(&format!("{tag}-node{i}"));
            let service = if companions {
                QueryService::create(&root, spec_for(seed)).expect("create node")
            } else {
                QueryService::create_with_companion(&root, spec_for(seed), None)
                    .expect("create node")
            };
            let config = ServerConfig::builder()
                .tcp("127.0.0.1:0")
                .http("127.0.0.1:0")
                .build()
                .expect("valid config");
            let handle = serve(service, config).expect("serve node");
            Node { handle, root }
        })
        .collect()
}

fn tcp_specs(nodes: &[Node]) -> Vec<NodeSpec> {
    nodes
        .iter()
        .map(|n| NodeSpec::tcp(n.handle.tcp_addr().expect("tcp bound").to_string()))
        .collect()
}

fn boot_router(specs: Vec<NodeSpec>, replicas: usize) -> RouterHandle {
    let router = Router::new(specs, replicas).expect("router config");
    serve_router(router, "127.0.0.1:0".parse().expect("addr")).expect("bind router")
}

fn cleanup(nodes: Vec<Node>) {
    for node in nodes {
        node.handle.shutdown();
        let _ = fs::remove_dir_all(&node.root);
    }
}

/// A blocking line-protocol client for the router (or any node).
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send_raw(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
    }

    fn recv_raw(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "router closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    fn call(&mut self, request: &Request) -> Response {
        self.send_raw(&request.encode());
        Response::decode(&self.recv_raw()).expect("well-formed response")
    }

    fn ingest(&mut self, table: &Table) {
        let response = self.call(&Request {
            id: Json::Null,
            body: RequestBody::Ingest {
                table: WireTable::from_table(table),
                partitions: None,
            },
        });
        response.result.expect("routed ingest succeeds");
    }
}

fn wire_query(table: &Table, column: &str) -> WireQuery {
    let values = table
        .columns()
        .iter()
        .find(|c| c.name == column)
        .expect("column exists")
        .values
        .clone();
    WireQuery {
        table: table.name().to_string(),
        column: column.to_string(),
        keys: table.keys().to_vec(),
        values,
    }
}

fn query_request(id: u64, table: &Table, column: &str, k: u64) -> Request {
    Request {
        id: Json::u64(id),
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k,
            min_join_size: 0.0,
            cascade: false,
            query: wire_query(table, column),
        },
    }
}

fn cascade_request(id: u64, table: &Table, column: &str, k: u64) -> Request {
    Request {
        id: Json::u64(id),
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k,
            min_join_size: 0.0,
            cascade: true,
            query: wire_query(table, column),
        },
    }
}

/// Asserts a served ranking equals an in-process one bit for bit.
fn assert_bit_identical(served: &[WireRanked], in_process: &[RankedColumn]) {
    assert_eq!(served.len(), in_process.len(), "ranking lengths differ");
    for (s, p) in served.iter().zip(in_process) {
        assert_eq!(s.table, p.id.table);
        assert_eq!(s.column, p.id.column);
        assert_eq!(s.score.to_bits(), p.score.to_bits(), "score drift");
        assert_eq!(
            s.join_size.to_bits(),
            p.estimated_join_size.to_bits(),
            "join size drift"
        );
        assert_eq!(
            s.correlation.to_bits(),
            p.estimated_correlation.to_bits(),
            "correlation drift"
        );
    }
}

#[test]
fn routed_cluster_answers_bit_identical_to_a_single_node() {
    let (query, good, bad) = lake();
    let seed = 17;

    // Single-node ground truth, in process.
    let twin_root = temp_root("bitident-twin");
    let mut twin = QueryService::create(&twin_root, spec_for(seed)).expect("twin");
    twin.ingest_table(&good).expect("good");
    twin.ingest_table(&bad).expect("bad");
    let q1 = twin.sketch_query(&query, "rides").expect("q1");
    let q2 = twin.sketch_query(&good, "precip").expect("q2");
    let expected_batch = twin
        .query_joinable_batch(&[q1.clone(), q2], 5)
        .expect("batch");
    let expected_related = twin.query_related(&q1, 3, 10.0).expect("related");

    // A 3-node cluster populated *through the router*.
    let nodes = boot_nodes("bitident", seed, 3);
    let router = boot_router(tcp_specs(&nodes), 2);
    let mut client = Client::connect(router.addr());
    client.ingest(&good);
    client.ingest(&bad);

    let response = client.call(&Request {
        id: Json::u64(1),
        body: RequestBody::BatchQuery {
            mode: Mode::Joinable,
            k: 5,
            min_join_size: 0.0,
            cascade: false,
            queries: vec![wire_query(&query, "rides"), wire_query(&good, "precip")],
        },
    });
    assert_eq!(response.id.as_u64(), Some(1));
    match response.result.expect("batch succeeds") {
        ResponseBody::Rankings { rankings, .. } => {
            assert_eq!(rankings.len(), expected_batch.len());
            for (served, in_process) in rankings.iter().zip(&expected_batch) {
                assert_bit_identical(served, in_process);
            }
        }
        other => panic!("expected rankings, got {other:?}"),
    }

    // Related mode (score = |corr|, join-size floor applied node-side).
    let response = client.call(&Request {
        id: Json::str("rel"),
        body: RequestBody::Query {
            mode: Mode::Related,
            k: 3,
            min_join_size: 10.0,
            cascade: false,
            query: wire_query(&query, "rides"),
        },
    });
    match response.result.expect("related succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected_related),
        other => panic!("expected ranking, got {other:?}"),
    }

    // `info` aggregates the cluster: the distinct column set matches the twin
    // and only the router emits the `cluster` member.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Info { server: true },
    });
    match response.result.expect("info succeeds") {
        ResponseBody::Info {
            columns,
            stats,
            cluster,
            server,
            ..
        } => {
            assert_eq!(columns.len(), 3, "good.precip, good.noise, bad.other");
            let stats = stats.expect("service stats");
            assert_eq!(stats.columns, 3);
            let cluster = cluster.expect("routers report cluster state");
            assert_eq!(cluster.replicas, 2);
            assert_eq!(cluster.nodes.len(), 3);
            assert!(cluster.nodes.iter().all(|n| n.healthy && n.errors == 0));
            assert!(cluster.fanouts >= 3, "ingests and queries fanned out");
            assert_eq!(cluster.failovers, 0);
            let server = server.expect("router per-op metrics");
            assert!(server.ops.iter().any(|o| o.op == "ingest"));
        }
        other => panic!("expected info, got {other:?}"),
    }

    // `drop-column` through the router tombstones every replica: the key
    // disappears from merged rankings, and a second drop is `not_found`.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::DropColumn {
            table: "good".to_string(),
            column: "precip".to_string(),
        },
    });
    match response.result.expect("drop succeeds") {
        ResponseBody::Dropped { table, column } => {
            assert_eq!((table.as_str(), column.as_str()), ("good", "precip"));
        }
        other => panic!("expected dropped, got {other:?}"),
    }
    let response = client.call(&query_request(9, &query, "rides", 5));
    match response.result.expect("query succeeds") {
        ResponseBody::Ranking { ranking, .. } => {
            assert!(
                ranking.iter().all(|r| r.column != "precip"),
                "dropped column still ranked: {ranking:?}"
            );
        }
        other => panic!("expected ranking, got {other:?}"),
    }
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::DropColumn {
            table: "good".to_string(),
            column: "precip".to_string(),
        },
    });
    assert_eq!(
        response.result.expect_err("second drop fails").code,
        ErrorCode::NotFound
    );

    router.shutdown();
    cleanup(nodes);
    fs::remove_dir_all(&twin_root).expect("cleanup");
}

#[test]
fn rankings_are_identical_for_any_ingest_order_and_cluster_shape() {
    let (query, good, bad) = lake();
    let mut tables = tie_tables();
    tables.push(good);
    tables.push(bad);
    let seed = 29;

    // Ground truth includes four exactly-tied tables, so this only passes if
    // node merges honor the same deterministic tie-break a single index uses.
    let twin_root = temp_root("order-twin");
    let mut twin = QueryService::create(&twin_root, spec_for(seed)).expect("twin");
    for table in &tables {
        twin.ingest_table(table).expect("ingest");
    }
    let q = twin.sketch_query(&query, "rides").expect("sketch");
    let expected = twin.query_joinable(&q, tables.len() + 1).expect("rank");
    let tie_rank: Vec<&str> = expected
        .iter()
        .filter(|r| r.id.table.starts_with("tie_"))
        .map(|r| r.id.table.as_str())
        .collect();
    assert_eq!(
        tie_rank,
        ["tie_a", "tie_b", "tie_c", "tie_d"],
        "ties must order by (table, column)"
    );

    // Three clusters: 3 nodes forward order, 3 nodes reversed ingest order,
    // 4 nodes interleaved order.  Every wire answer must be byte-identical.
    let shapes: [(usize, Vec<usize>); 3] = [
        (3, (0..tables.len()).collect()),
        (3, (0..tables.len()).rev().collect()),
        (
            4,
            (0..tables.len()).map(|i| (i * 5) % tables.len()).collect(),
        ),
    ];
    let mut encoded: Vec<String> = Vec::new();
    for (shape, (node_count, order)) in shapes.into_iter().enumerate() {
        let nodes = boot_nodes(&format!("order{shape}"), seed, node_count);
        let router = boot_router(tcp_specs(&nodes), 2);
        let mut client = Client::connect(router.addr());
        for &idx in &order {
            client.ingest(&tables[idx]);
        }
        let request = query_request(77, &query, "rides", (tables.len() + 1) as u64);
        client.send_raw(&request.encode());
        let raw = client.recv_raw();
        let response = Response::decode(&raw).expect("well-formed");
        match response.result.expect("query succeeds") {
            ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
            other => panic!("expected ranking, got {other:?}"),
        }
        encoded.push(raw);
        router.shutdown();
        cleanup(nodes);
    }
    assert_eq!(encoded[0], encoded[1], "ingest order changed the bytes");
    assert_eq!(encoded[0], encoded[2], "cluster shape changed the bytes");
    fs::remove_dir_all(&twin_root).expect("cleanup");
}

#[test]
fn a_stopped_node_fails_over_to_its_replicas_bit_identically() {
    let (query, good, bad) = lake();
    let seed = 31;

    let twin_root = temp_root("failover-twin");
    let mut twin = QueryService::create(&twin_root, spec_for(seed)).expect("twin");
    twin.ingest_table(&good).expect("good");
    twin.ingest_table(&bad).expect("bad");
    let q = twin.sketch_query(&query, "rides").expect("sketch");
    let expected = twin.query_joinable(&q, 5).expect("rank");

    let mut nodes = boot_nodes("failover", seed, 3);
    let router = boot_router(tcp_specs(&nodes), 2);
    let mut client = Client::connect(router.addr());
    client.ingest(&good);
    client.ingest(&bad);

    // Healthy-cluster sanity check first.
    let response = client.call(&query_request(1, &query, "rides", 5));
    match response.result.expect("query succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
        other => panic!("expected ranking, got {other:?}"),
    }

    // Stop one node.  Replication 2 guarantees every key survives on another
    // node, and replicas hold bit-identical blobs — so the merged answer must
    // not change by a single bit.
    let stopped = nodes.remove(2);
    let stopped_addr = stopped.handle.tcp_addr().expect("tcp bound").to_string();
    stopped.handle.shutdown();
    let _ = fs::remove_dir_all(&stopped.root);

    // A fresh connection (fresh node pool) so the loss is seen as a connect
    // failure, not a broken keep-alive.
    let mut degraded = Client::connect(router.addr());
    let response = degraded.call(&query_request(2, &query, "rides", 5));
    match response.result.expect("query still succeeds") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &expected),
        other => panic!("expected ranking, got {other:?}"),
    }

    // The failover is surfaced in router stats, against the right node.
    let stats = router.stats();
    assert!(stats.failovers >= 1, "failover not counted: {stats:?}");
    let lost = stats
        .nodes
        .iter()
        .find(|n| n.addr == stopped_addr)
        .expect("stopped node listed");
    assert!(!lost.healthy, "stopped node still marked healthy");
    assert!(lost.errors >= 1);

    // Writes that need the lost node are refused with a typed `io` error
    // rather than silently under-replicated... unless no owned column landed
    // there, in which case they succeed; either way the op must not hang or
    // panic, and queries keep working after it.
    let response = degraded.call(&Request {
        id: Json::Null,
        body: RequestBody::Ingest {
            table: WireTable::from_table(&tie_tables()[0]),
            partitions: None,
        },
    });
    if let Err(error) = response.result {
        assert_eq!(error.code, ErrorCode::Io, "write failure must be typed io");
    }
    let response = degraded.call(&query_request(3, &query, "rides", 5));
    match response.result.expect("query succeeds after failed write") {
        ResponseBody::Ranking { ranking, .. } => {
            assert_eq!(ranking.len(), expected.len().max(ranking.len()).min(5));
        }
        other => panic!("expected ranking, got {other:?}"),
    }

    router.shutdown();
    cleanup(nodes);
    fs::remove_dir_all(&twin_root).expect("cleanup");
}

#[test]
fn mixed_transport_routers_answer_byte_identically() {
    let (query, good, bad) = lake();
    let seed = 37;
    let nodes = boot_nodes("transports", seed, 3);

    // One router speaks line-TCP to every node; the other mixes in the
    // HTTP/1.1 binding for two of them.  Same nodes, so same data.
    let tcp_router = boot_router(tcp_specs(&nodes), 2);
    let mixed_specs = vec![
        NodeSpec::tcp(nodes[0].handle.tcp_addr().expect("tcp").to_string()),
        NodeSpec::http(nodes[1].handle.http_addr().expect("http").to_string()),
        NodeSpec::http(nodes[2].handle.http_addr().expect("http").to_string()),
    ];
    let mixed_router = boot_router(mixed_specs, 2);

    let mut tcp_client = Client::connect(tcp_router.addr());
    tcp_client.ingest(&good);
    tcp_client.ingest(&bad);

    let request = query_request(5, &query, "rides", 4);
    tcp_client.send_raw(&request.encode());
    let via_tcp = tcp_client.recv_raw();

    let mut mixed_client = Client::connect(mixed_router.addr());
    mixed_client.send_raw(&request.encode());
    let via_mixed = mixed_client.recv_raw();
    assert_eq!(via_tcp, via_mixed, "transport changed the answer bytes");

    let stats = mixed_router.stats();
    let transports: Vec<&str> = stats.nodes.iter().map(|n| n.transport.as_str()).collect();
    assert_eq!(transports, ["tcp", "http", "http"]);

    tcp_router.shutdown();
    mixed_router.shutdown();
    cleanup(nodes);
}

#[test]
fn node_overlapping_sharded_ingest_yields_only_consistent_states() {
    let (query, good, bad) = lake();
    let seed = 41;
    let shards = 3;
    // One column, so it lands on exactly `replicas` nodes: every mid-state
    // (some owners finished, some not) merges to the same bytes as the final
    // state, because replica blobs are bit-identical and the merge dedups.
    let extra = Table::new(
        "extra",
        (150..550).collect(),
        vec![Column::new(
            "depth",
            (150..550).map(|i| 3.0 * f64::from(i) - 7.0).collect(),
        )],
    )
    .expect("table");

    // Twin computes both consistent answers via the *same* sharded path.
    let twin_root = temp_root("overlap-twin");
    let mut twin = QueryService::create(&twin_root, spec_for(seed)).expect("twin");
    twin.ingest_table(&good).expect("good");
    twin.ingest_table(&bad).expect("bad");
    let q = twin.sketch_query(&query, "rides").expect("sketch");
    let before = twin.query_joinable(&q, 5).expect("before");
    {
        let mut session = twin.begin_sharded_ingest(extra.name());
        for shard in &shard_rows(&extra, shards) {
            session.announce(shard).expect("announce");
        }
        for shard in &shard_rows(&extra, shards) {
            session.submit(twin.estimator(), shard).expect("submit");
        }
        twin.finish_sharded_ingest(session).expect("finish");
    }
    let after = twin.query_joinable(&q, 5).expect("after");
    assert_ne!(before, after, "the extra table must change the top-5");

    let nodes = boot_nodes("overlap", seed, 3);
    let router = boot_router(tcp_specs(&nodes), 2);
    let mut seed_client = Client::connect(router.addr());
    seed_client.ingest(&good);
    seed_client.ingest(&bad);

    // Queriers hammer the router while the main thread drives the two-pass
    // announced-norm protocol through it — a real cross-node round: the
    // router opens per-node sessions and forwards each owner its sub-shards.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let queriers: Vec<_> = (0..2)
        .map(|worker| {
            let stop = std::sync::Arc::clone(&stop);
            let query = query.clone();
            let before = before.clone();
            let after = after.clone();
            let mut client = Client::connect(router.addr());
            std::thread::spawn(move || {
                let mut rounds = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) || rounds == 0 {
                    rounds += 1;
                    let response =
                        client.call(&query_request(u64::from(rounds), &query, "rides", 5));
                    assert_eq!(response.id.as_u64(), Some(u64::from(rounds)));
                    let ranking = match response.result.expect("query succeeds") {
                        ResponseBody::Ranking { ranking, .. } => ranking,
                        other => panic!("worker {worker}: expected ranking, got {other:?}"),
                    };
                    // Every observation is one of the two consistent states.
                    let matches_before = ranking.len() == before.len()
                        && ranking
                            .iter()
                            .zip(&before)
                            .all(|(s, p)| s.table == p.id.table && s.column == p.id.column);
                    if matches_before {
                        assert_bit_identical(&ranking, &before);
                    } else {
                        assert_bit_identical(&ranking, &after);
                    }
                }
            })
        })
        .collect();

    // Announce and submit arrive over *different* connections: the router's
    // session map is shared, exactly like a single node's.
    let mut announce_client = Client::connect(router.addr());
    let session = match announce_client
        .call(&Request {
            id: Json::Null,
            body: RequestBody::IngestBegin {
                table: extra.name().to_string(),
            },
        })
        .result
        .expect("begin")
    {
        ResponseBody::Session(session) => session,
        other => panic!("expected session, got {other:?}"),
    };
    let wire_shards: Vec<WireTable> = shard_rows(&extra, shards)
        .iter()
        .map(WireTable::from_table)
        .collect();
    for shard in &wire_shards {
        let response = announce_client.call(&Request {
            id: Json::Null,
            body: RequestBody::IngestAnnounce {
                session,
                shard: shard.clone(),
            },
        });
        assert_eq!(
            response.result.expect("announce"),
            ResponseBody::Session(session)
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut submit_client = Client::connect(router.addr());
    for shard in &wire_shards {
        submit_client
            .call(&Request {
                id: Json::Null,
                body: RequestBody::IngestSubmit {
                    session,
                    shard: shard.clone(),
                },
            })
            .result
            .expect("submit");
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = submit_client
        .call(&Request {
            id: Json::Null,
            body: RequestBody::IngestFinish { session },
        })
        .result
        .expect("finish");
    match report {
        ResponseBody::Report {
            registered,
            skipped,
        } => {
            assert_eq!(registered, vec![("extra".to_string(), "depth".to_string())]);
            assert!(skipped.is_empty());
        }
        other => panic!("expected report, got {other:?}"),
    }

    // A finished session is consumed.
    let response = submit_client.call(&Request {
        id: Json::Null,
        body: RequestBody::IngestFinish { session },
    });
    assert_eq!(
        response.result.expect_err("double finish").code,
        ErrorCode::UnknownSession
    );

    std::thread::sleep(Duration::from_millis(20));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for querier in queriers {
        querier.join().expect("querier");
    }

    // Post-ingest answers are the after state, bit for bit.
    let response = seed_client.call(&query_request(99, &query, "rides", 5));
    match response.result.expect("post-ingest query") {
        ResponseBody::Ranking { ranking, .. } => assert_bit_identical(&ranking, &after),
        other => panic!("expected ranking, got {other:?}"),
    }

    router.shutdown();
    cleanup(nodes);
    fs::remove_dir_all(&twin_root).expect("cleanup");
}

#[test]
fn cascaded_queries_route_bit_identically_and_fall_back_deterministically() {
    let (query, good, bad) = lake();
    let seed = 43;

    // In-process twin with companions (the default layout): ground truth for
    // both the cascade answer and the flat answer it must equal.
    let twin_root = temp_root("cascade-twin");
    let mut twin = QueryService::create(&twin_root, spec_for(seed)).expect("twin");
    twin.ingest_table(&good).expect("good");
    twin.ingest_table(&bad).expect("bad");
    let q = twin.sketch_query(&query, "rides").expect("sketch");
    let cq = twin
        .sketch_query_companion(&query, "rides")
        .expect("companion sketch");
    assert!(cq.is_some(), "created catalogs store companions by default");
    let (expected, twin_note) = twin
        .query_joinable_cascade(&q, cq.as_ref(), 5, DEFAULT_CASCADE_CONFIDENCE)
        .expect("cascade");
    assert!(twin_note.is_none());
    assert_eq!(
        expected,
        twin.query_joinable(&q, 5).expect("flat"),
        "cascade must equal the flat scan at the default margin"
    );

    // A 3-node cluster populated through the router answers the cascade
    // bit-identically to the twin, and byte-identically to its own flat
    // answer — the knob must be invisible in the response bytes.
    let nodes = boot_nodes("cascade", seed, 3);
    let router = boot_router(tcp_specs(&nodes), 2);
    let mut client = Client::connect(router.addr());
    client.ingest(&good);
    client.ingest(&bad);

    client.send_raw(&cascade_request(11, &query, "rides", 5).encode());
    let raw_cascade = client.recv_raw();
    let response = Response::decode(&raw_cascade).expect("well-formed");
    match response.result.expect("routed cascade succeeds") {
        ResponseBody::Ranking { ranking, note } => {
            assert!(note.is_none(), "companion cluster must not fall back");
            assert_bit_identical(&ranking, &expected);
        }
        other => panic!("expected ranking, got {other:?}"),
    }
    client.send_raw(&query_request(11, &query, "rides", 5).encode());
    let raw_flat = client.recv_raw();
    assert_eq!(raw_cascade, raw_flat, "cascade changed the answer bytes");

    // Batch cascades route too, with no note.
    let response = client.call(&Request {
        id: Json::u64(12),
        body: RequestBody::BatchQuery {
            mode: Mode::Joinable,
            k: 5,
            min_join_size: 0.0,
            cascade: true,
            queries: vec![wire_query(&query, "rides")],
        },
    });
    match response.result.expect("routed batch cascade succeeds") {
        ResponseBody::Rankings { rankings, note } => {
            assert!(note.is_none());
            assert_eq!(rankings.len(), 1);
            assert_bit_identical(&rankings[0], &expected);
        }
        other => panic!("expected rankings, got {other:?}"),
    }

    // A cascade against `related` mode is refused node-side and the router
    // forwards the typed error verbatim.
    let response = client.call(&Request {
        id: Json::Null,
        body: RequestBody::Query {
            mode: Mode::Related,
            k: 3,
            min_join_size: 0.0,
            cascade: true,
            query: wire_query(&query, "rides"),
        },
    });
    assert_eq!(
        response.result.expect_err("related cascade refused").code,
        ErrorCode::BadRequest
    );

    router.shutdown();
    cleanup(nodes);

    // Companion-less cluster: the same cascade request falls back to the flat
    // scan with the typed note, byte-identical to one companion-less node
    // holding the whole catalog — the note carries no node-local detail.
    let old_nodes = boot_nodes_opts("cascade-nocmp", seed, 3, false);
    let old_router = boot_router(tcp_specs(&old_nodes), 2);
    let mut old_client = Client::connect(old_router.addr());
    old_client.ingest(&good);
    old_client.ingest(&bad);

    let single = boot_nodes_opts("cascade-nocmp-single", seed, 1, false);
    let mut single_client = Client::connect(single[0].handle.tcp_addr().expect("tcp"));
    single_client.ingest(&good);
    single_client.ingest(&bad);

    let request = cascade_request(21, &query, "rides", 5);
    old_client.send_raw(&request.encode());
    let via_router = old_client.recv_raw();
    single_client.send_raw(&request.encode());
    let via_single = single_client.recv_raw();
    assert_eq!(
        via_router, via_single,
        "fallback answer must not depend on cluster shape"
    );
    let response = Response::decode(&via_router).expect("well-formed");
    match response.result.expect("fallback succeeds") {
        ResponseBody::Ranking { ranking, note } => {
            let note = note.expect("companion-less catalogs must attach the note");
            assert_eq!(note.code, "cascade_fallback");
            assert!(!ranking.is_empty());
        }
        other => panic!("expected ranking, got {other:?}"),
    }

    old_router.shutdown();
    cleanup(old_nodes);
    cleanup(single);
    fs::remove_dir_all(&twin_root).expect("cleanup");
}
