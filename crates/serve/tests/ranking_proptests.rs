//! Property-based tests of ranking determinism — the invariants distributed
//! serving leans on:
//!
//! * the top-k answer (including exact ties) is invariant under the order
//!   columns were inserted into the index, and
//! * the shard-partial ingest path yields the same top-k for *any* shard
//!   count, so a cluster can repartition rows without changing answers.

use ipsketch_core::method::{AnySketcher, SketchMethod};
use ipsketch_data::{Column, Table};
use ipsketch_join::{JoinEstimator, RankedColumn, SketchIndex};
use ipsketch_serve::{shard_rows, QueryService};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::sync::atomic::{AtomicU64, Ordering};

fn estimator() -> JoinEstimator {
    JoinEstimator::new(AnySketcher::for_budget(SketchMethod::Kmv, 256.0, 7).expect("budget"))
}

/// A candidate table: `offset` picks the key range, `pattern` the values.
/// Two candidates sharing `(offset, pattern)` carry identical data under
/// different names, so their scores tie *exactly* and only the deterministic
/// `(table, column)` tie-break orders them.
fn candidate(index: usize, offset: u64, pattern: u64) -> Table {
    let keys: Vec<u64> = (offset * 50..offset * 50 + 120).collect();
    let values: Vec<f64> = (0..120u32)
        .map(|i| match pattern {
            0 => f64::from(i) + 1.0,
            1 => f64::from((i * 37) % 11) + 1.0,
            _ => f64::from(i % 7) + 1.0,
        })
        .collect();
    Table::new(
        format!("cand_{index}"),
        keys,
        vec![Column::new("v", values)],
    )
    .expect("table")
}

fn query_table() -> Table {
    Table::new(
        "q",
        (0..160).collect(),
        vec![Column::new(
            "v",
            (0..160).map(|i| f64::from(i) + 1.0).collect(),
        )],
    )
    .expect("table")
}

/// A generated lake: each `(offset, pattern)` pair becomes one candidate.
fn lake_params() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..3, 0u64..3), 2..6)
}

/// A Fisher–Yates permutation of `0..n` driven by `seed` (the shim has no
/// `prop_shuffle`; a splitmix-style step is plenty for test-case diversity).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = state
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        let j = (state >> 32) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn build_index(tables: &[Table], order: &[usize]) -> SketchIndex {
    let mut index = SketchIndex::new(estimator());
    for &i in order {
        index.insert_table(&tables[i]).expect("insert");
    }
    index
}

/// Asserts two rankings agree on the ranked keys *in order* and carry scores
/// equal to within floating-point refolding noise (shard partials sum in a
/// different grouping, so the last ulp may differ; ties only arise between
/// bit-identical candidates, which drift identically, so order is stable).
fn assert_rank_equivalent(a: &[RankedColumn], b: &[RankedColumn]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "ranking lengths differ");
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(&x.id, &y.id, "ranked keys diverge");
        let tolerance = 1e-9 * x.score.abs().max(1.0);
        prop_assert!(
            (x.score - y.score).abs() <= tolerance,
            "score drift beyond refolding noise: {} vs {}",
            x.score,
            y.score
        );
    }
    Ok(())
}

static CASE: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Insertion order must be unobservable in the ranking — bit for bit,
    /// including the relative order of exact ties.
    #[test]
    fn top_k_is_invariant_under_build_order(
        params in lake_params(),
        seed in any::<u64>(),
    ) {
        let tables: Vec<Table> = params
            .iter()
            .enumerate()
            .map(|(i, &(offset, pattern))| candidate(i, offset, pattern))
            .collect();
        let order = permutation(tables.len(), seed);
        let query = query_table();
        let baseline = build_index(&tables, &(0..tables.len()).collect::<Vec<_>>());
        let q = baseline.sketch_query(&query, "v").expect("sketch");
        let expected_join = baseline
            .top_k_joinable(&q, tables.len() + 1)
            .expect("baseline join");
        let expected_corr = baseline
            .top_k_correlated(&q, tables.len() + 1, 5.0)
            .expect("baseline corr");

        let permuted = build_index(&tables, &order);
        let q2 = permuted.sketch_query(&query, "v").expect("sketch");
        prop_assert_eq!(
            permuted.top_k_joinable(&q2, tables.len() + 1).expect("join"),
            expected_join
        );
        prop_assert_eq!(
            permuted
                .top_k_correlated(&q2, tables.len() + 1, 5.0)
                .expect("corr"),
            expected_corr
        );
    }
}

proptest! {
    // Each case builds two on-disk catalogs; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The two-pass shard-partial path must answer the same top-k whatever
    /// `shard_rows` split the rows arrived in.
    #[test]
    fn top_k_is_invariant_under_shard_count(
        values_a in proptest::collection::vec(1u32..1000, 40..100),
        values_b in proptest::collection::vec(1u32..1000, 40..100),
        shards_one in 1usize..6,
        shards_two in 1usize..6,
    ) {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let make = |name: &str, values: &[u32]| {
            Table::new(
                name,
                (0..values.len() as u64).collect(),
                vec![Column::new(
                    "v",
                    values.iter().map(|&v| f64::from(v)).collect(),
                )],
            )
            .expect("table")
        };
        let table_a = make("cand_a", &values_a);
        let table_b = make("cand_b", &values_b);
        let query = query_table();
        let spec = AnySketcher::for_budget(SketchMethod::Kmv, 256.0, 7)
            .expect("budget")
            .spec();

        let rank_with = |shards: usize, tag: &str| {
            let root = std::env::temp_dir().join(format!(
                "ipsketch-shardprop-{tag}-{case}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let mut service = QueryService::create(&root, spec).expect("create");
            for table in [&table_a, &table_b] {
                let mut session = service.begin_sharded_ingest(table.name());
                for shard in &shard_rows(table, shards) {
                    session.announce(shard).expect("announce");
                }
                for shard in &shard_rows(table, shards) {
                    session.submit(service.estimator(), shard).expect("submit");
                }
                service.finish_sharded_ingest(session).expect("finish");
            }
            let q = service.sketch_query(&query, "v").expect("sketch");
            let joinable = service.query_joinable(&q, 3).expect("rank");
            let related = service.query_related(&q, 3, 5.0).expect("rank");
            let _ = std::fs::remove_dir_all(&root);
            (joinable, related)
        };

        let (join_one, corr_one) = rank_with(shards_one, "one");
        let (join_two, corr_two) = rank_with(shards_two, "two");
        assert_rank_equivalent(&join_one, &join_two)?;
        assert_rank_equivalent(&corr_one, &corr_two)?;
    }
}
