//! Collection strategies (`proptest::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A strategy producing `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range for vec strategy");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
