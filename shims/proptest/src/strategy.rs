//! The [`Strategy`] trait and the built-in strategy implementations.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! unsigned_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u128::from(self.end) - u128::from(self.start);
                self.start + ((rng.next_u128() % span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = u128::from(end) - u128::from(start) + 1;
                start + ((rng.next_u128() % span) as $t)
            }
        }
    )+};
}

unsigned_range_strategies!(u8, u16, u32, u64);

macro_rules! signed_range_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i128::from(self.end) - i128::from(self.start)) as u128;
                (i128::from(self.start) + (rng.next_u128() % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (i128::from(end) - i128::from(start)) as u128 + 1;
                (i128::from(start) + (rng.next_u128() % span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategies!(i8, i16, i32, i64);

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u128;
        self.start + (rng.next_u128() % span) as usize
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let span = (end - start) as u128 + 1;
        start + (rng.next_u128() % span) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let value = self.start + rng.next_unit_f64() * (self.end - self.start);
        // Rounding can land exactly on the excluded endpoint; fall back to the
        // (always included) start in that rare case.
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        (start + rng.next_unit_f64_inclusive() * (end - start)).clamp(start, end)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $index:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_range_never_reaches_excluded_end() {
        let mut rng = TestRng::for_test("float_range");
        let strategy = 0.0f64..1e-300;
        for _ in 0..1000 {
            let v = strategy.generate(&mut rng);
            assert!((0.0..1e-300).contains(&v));
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = TestRng::for_test("signed");
        let strategy = -5i64..5;
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }
}
