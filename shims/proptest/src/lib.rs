//! Minimal offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! property-testing crate.
//!
//! Implements the subset the workspace's property tests use: the `proptest!`
//! macro, `any::<T>()`, integer/float range strategies, tuple strategies,
//! `collection::vec`, `prop_map`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, by design (see `shims/README.md`):
//!
//! - **Deterministic**: the RNG is seeded from the test function's name, so a
//!   failure reproduces on every run without a persisted regression file.
//! - **No shrinking**: a failing case reports its assertion message only.
//! - **Fixed case count**: [`ProptestConfig::default`] runs 64 cases per test
//!   (the `PROPTEST_CASES` environment variable overrides it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod strategy;

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped without counting.
    Reject,
    /// A `prop_assert*!` failed; the whole test fails with this message.
    Fail(String),
}

/// Everything a property-test file conventionally glob-imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds. Only usable inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal. Only
/// usable inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    left == right,
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    left,
                    right
                );
            }
        }
    };
}

/// Skips the current case (without counting it) unless the condition holds.
/// Only usable inside a `proptest!` test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)` body
/// runs against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng::TestRng::for_test(stringify!($name));
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(16);
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest shim: too many rejected cases in {} ({} attempts for {} cases)",
                    stringify!($name),
                    attempts,
                    config.cases
                );
                let ($($pat,)+) = {
                    #[allow(unused_imports)]
                    use $crate::strategy::Strategy as _;
                    ( $( ($strategy).generate(&mut rng), )+ )
                };
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case failed in {} (case {} of {}):\n{}",
                            stringify!($name),
                            executed + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn squares_are_nonnegative(x in any::<i64>()) {
            let x = x >> 1; // avoid overflow on the extremes
            prop_assert!(x.saturating_mul(x) >= 0);
        }

        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in 5u32..=9, f in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!((-2.5..2.5).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u64..100, 0.0f64..1.0).prop_map(|(i, v)| (i * 2, v)) ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 < 200);
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "only even cases survive the assumption");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn explicit_config_is_accepted(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn determinism_across_runner_instances() {
        let mut a = crate::rng::TestRng::for_test("seed");
        let mut b = crate::rng::TestRng::for_test("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::rng::TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
