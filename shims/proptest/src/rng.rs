//! Deterministic pseudo-random generator backing the shim's strategies.

/// A splitmix64 generator seeded from the test name, so every run of a given
/// test sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `test_name`.
    #[must_use]
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a folds the name into a 64-bit seed; distinct tests get
        // distinct, fixed streams.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128 uniformly distributed bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1]` (both endpoints reachable).
    pub fn next_unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64
    }
}
