//! `any::<T>()` — full-domain strategies for primitive types.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Generates a uniformly distributed value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

/// A strategy producing arbitrary values of `T` over its full domain.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
