//! Strategies producing `Option<T>` values, mirroring `proptest::option`.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Wraps `strategy` so roughly half the generated values are `Some` and the
/// rest `None` (the real crate defaults to a 50% `Some` probability as well).
pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
    OptionStrategy { inner: strategy }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() % 2 == 0 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_both_variants() {
        let mut rng = TestRng::for_test("option");
        let strategy = of(0u64..10);
        let mut some = 0usize;
        let mut none = 0usize;
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                Some(v) => {
                    assert!(v < 10);
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }
}
