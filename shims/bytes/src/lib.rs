//! Minimal offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements exactly the subset used by `ipsketch-core`'s binary sketch
//! serialization: an owned immutable buffer ([`Bytes`]), a growable write
//! buffer ([`BytesMut`]), little-endian cursor reads on `&[u8]` ([`Buf`]) and
//! little-endian appends ([`BufMut`]). See `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable, contiguous byte buffer (backed by a plain `Vec<u8>` here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer for building a [`Bytes`] value.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes preallocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

/// Write access to a byte buffer, little-endian only (the subset used here).
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends an `i64` in little-endian order.
    fn put_i64_le(&mut self, value: i64) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends an `f64` in little-endian order.
    fn put_f64_le(&mut self, value: f64) {
        self.put_slice(&value.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte cursor, little-endian only (the subset used here).
///
/// Every `get_*` method panics if fewer than the required number of bytes
/// remain, matching the real crate; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Reads `N` bytes and advances the cursor.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.split_at(N);
        *self = tail;
        head.try_into().expect("split_at returns exactly N bytes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 7);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        let bytes = buf.freeze();
        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.remaining(), 1 + 4 + 8 + 8 + 8);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 7);
        assert_eq!(cursor.get_i64_le(), -42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let mut buf = BytesMut::with_capacity(4);
        buf.put_slice(b"abcd");
        let bytes = buf.freeze();
        assert_eq!(&bytes[1..3], b"bc");
        assert_eq!(bytes.to_vec(), b"abcd".to_vec());
    }
}
