//! Minimal offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate: an unbounded MPMC channel with clonable senders and receivers,
//! matching `crossbeam::channel`'s disconnect semantics for the subset the
//! workspace uses. See `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every [`Receiver`] is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and every
    /// [`Sender`] has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        ///
        /// # Errors
        ///
        /// Returns the value back if no receiver can ever observe it. (This
        /// shim keeps the queue alive as long as any endpoint exists, so in
        /// practice `send` succeeds whenever the call can be made.)
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders += 1;
            drop(state);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender has disconnected.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and no sender
        /// remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let received: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(received, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn work_is_distributed_across_cloned_receivers() {
        let (tx, rx) = channel::unbounded();
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || {
                        let mut sum = 0;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0..100).sum());
    }
}
