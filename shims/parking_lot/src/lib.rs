//! Minimal offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: a [`Mutex`] and an [`RwLock`] whose lock methods return the guard
//! directly (no poisoning), backed by their `std::sync` counterparts. See
//! `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic in another thread while holding the lock does not
    /// poison it — the guard is returned regardless.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s non-poisoning API: any number of
/// concurrent readers, or one writer.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until no writer holds the lock.
    ///
    /// Unlike `std`, a panic in a thread holding the lock does not poison it.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until the lock is free.
    ///
    /// Unlike `std`, a panic in a thread holding the lock does not poison it.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_read_write_and_into_inner() {
        let lock = RwLock::new(10);
        {
            let r1 = lock.read();
            let r2 = lock.read();
            assert_eq!(*r1 + *r2, 20);
        }
        *lock.write() += 5;
        assert_eq!(*lock.read(), 15);
        assert_eq!(lock.into_inner(), 15);
    }

    #[test]
    fn rwlock_survives_a_poisoning_panic() {
        let lock = std::sync::Arc::new(RwLock::new(1));
        let held = lock.clone();
        let _ = std::thread::spawn(move || {
            let _guard = held.write();
            panic!("poison the std rwlock underneath");
        })
        .join();
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }
}
