//! Minimal offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: a [`Mutex`] whose `lock()` returns the guard directly (no poisoning),
//! backed by `std::sync::Mutex`. See `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::PoisonError;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic in another thread while holding the lock does not
    /// poison it — the guard is returned regardless.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
