//! Minimal offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! Implements the subset the workspace's benches use: benchmark groups with
//! `sample_size` / `measurement_time`, `bench_function` / `bench_with_input`,
//! `Bencher::iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a straightforward wall-clock mean
//! over `sample_size` timed batches — no outlier analysis, no HTML reports —
//! printed one line per benchmark. See `shims/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifies one benchmark within a group: a function name plus an optional
/// parameter rendering (`name/parameter`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"{function_name}/{parameter}"`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { id: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call warms caches and amortizes lazy setup.
        std_black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark manager handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            last_mean_ns: None,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    last_mean_ns: Option<f64>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches to run per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the wall-clock budget a single benchmark should aim for.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: R,
    ) {
        self.run(id.into(), &mut |bencher| routine(bencher));
    }

    /// Benchmarks `routine` under `id`, passing `input` through by reference.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) {
        self.run(id.into(), &mut |bencher| routine(bencher, input));
    }

    /// Finishes the group. (No summary state to flush in this shim.)
    pub fn finish(self) {}

    /// The mean nanoseconds per iteration of the most recent benchmark in this group.
    ///
    /// **Shim-only extension** (upstream criterion exposes results through its
    /// `target/criterion` report files instead): the `kernels` baseline suite uses
    /// this to export machine-readable throughput numbers to `BENCH_kernels.json`.
    /// Swapping this shim for the real crate means replacing call sites with a parse
    /// of criterion's own JSON output.
    #[must_use]
    pub fn last_mean_ns(&self) -> Option<f64> {
        self.last_mean_ns
    }

    fn run(&mut self, id: BenchmarkId, routine: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: time a single iteration, then size batches so the whole
        // benchmark stays within the group's measurement budget.
        let mut calibration = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut calibration);
        let per_iteration = calibration.elapsed.max(Duration::from_nanos(1));
        let budget_per_sample = self.measurement_time / self.sample_size as u32;
        let iterations =
            (budget_per_sample.as_nanos() / per_iteration.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iterations,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            let per_iter = bencher.elapsed / iterations as u32;
            total += per_iter;
            best = best.min(per_iter);
        }
        let mean = total / self.sample_size as u32;
        self.last_mean_ns = Some(mean.as_nanos() as f64);
        println!(
            "{}/{}  time: [mean {:?}  best {:?}]  ({} samples x {} iters)",
            self.name, id.id, mean, best, self.sample_size, iterations
        );
    }
}

/// Declares a function that runs each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench target compiled with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo forwards harness flags (e.g. `--bench`); nothing to parse
            // in this shim.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x + 1));
        });
        group.finish();
    }

    #[test]
    fn group_runs_to_completion() {
        let mut criterion = Criterion::default();
        trivial_bench(&mut criterion);
    }

    #[test]
    fn last_mean_ns_reports_the_most_recent_benchmark() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("accessor");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        assert!(group.last_mean_ns().is_none());
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..1000 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            });
        });
        let measured = group.last_mean_ns().expect("a benchmark ran");
        assert!(measured > 0.0);
        group.finish();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("method", 400).id, "method/400");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
