//! Minimal offline stand-in for the [`polling`](https://docs.rs/polling) crate: a
//! level-triggered readiness reactor over `poll(2)`, with a self-pipe waker.  See
//! `shims/README.md` for the shim design rules.
//!
//! The subset mirrors `polling` 2.x: register file descriptors with a `key` and an
//! interest [`Event`], block in [`Poller::wait`] until any registered descriptor is
//! ready (or a timeout elapses, or another thread calls [`Poller::notify`]), and
//! adjust interests with [`Poller::modify`] / [`Poller::delete`].  Like the real
//! crate, readiness is **level-triggered**: a descriptor that stays ready keeps
//! reporting until the condition is consumed, so callers must read/write until
//! `WouldBlock` or drop the interest.
//!
//! The implementation is deliberately tiny: a registration table snapshotted into a
//! `pollfd` array per wait.  That is O(n) per call where epoll would be O(ready), but
//! the serving layer built on top multiplexes tens of connections, not tens of
//! thousands, and `poll(2)` is portable POSIX with no registration syscalls to keep
//! in sync.  The only unsafe code is the single foreign call to `poll` itself
//! (`std` offers no readiness API), kept behind a safe wrapper.
//!
//! Callers are responsible for putting registered descriptors into non-blocking mode
//! (`set_nonblocking(true)`); the poller only reports readiness, it never performs
//! I/O on registered descriptors.

#![warn(missing_docs)]
// The one permitted unsafe item: the foreign `poll(2)` declaration and its call.
#![deny(unsafe_op_in_unsafe_fn)]

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Interest in, or readiness of, a registered descriptor.
///
/// As an *interest* (passed to [`Poller::add`] / [`Poller::modify`]) the flags select
/// which conditions to wait for; as a *readiness report* (returned from
/// [`Poller::wait`]) they describe what happened.  Error and hang-up conditions are
/// folded into both flags, matching the real crate: a closed peer wakes readers and
/// writers, whose next I/O call observes the actual error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier echoed back in readiness reports.
    pub key: usize,
    /// Interest in / readiness for reading.
    pub readable: bool,
    /// Interest in / readiness for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    #[must_use]
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    #[must_use]
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both readability and writability.
    #[must_use]
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest: the descriptor stays registered but reports nothing.
    #[must_use]
    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLL_IN: i16 = 0x001;
const POLL_OUT: i16 = 0x004;
const POLL_ERR: i16 = 0x008;
const POLL_HUP: i16 = 0x010;
const POLL_NVAL: i16 = 0x020;

// `std` links libc on every supported Unix, so the symbol is always present; this
// declaration is the entire FFI surface of the shim.
extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Calls `poll(2)` on the given descriptor set, retrying on `EINTR`.
fn sys_poll(fds: &mut [PollFd], timeout_ms: c_int) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of `#[repr(C)]`
        // pollfd records for the duration of the call, and `nfds` is its length.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// One registered descriptor.
#[derive(Debug, Clone, Copy)]
struct Registration {
    fd: RawFd,
    interest: Event,
}

/// A `poll(2)`-backed readiness reactor.
///
/// All methods take `&self`: registration lives behind an internal mutex so I/O
/// threads can [`notify`](Self::notify) or re-arm interests while another thread
/// blocks in [`wait`](Self::wait).  Registration changes take effect at the next
/// `wait` call (use `notify` to cut a blocked one short).
#[derive(Debug)]
pub struct Poller {
    registrations: Mutex<Vec<Registration>>,
    /// Read side of the self-pipe; registered implicitly in every `wait`.
    notify_recv: UnixStream,
    /// Write side of the self-pipe; `notify` sends one byte here.
    notify_send: UnixStream,
}

impl Poller {
    /// Creates a reactor with an armed waker.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the internal waker socket pair cannot be created.
    pub fn new() -> io::Result<Self> {
        let (notify_send, notify_recv) = UnixStream::pair()?;
        notify_send.set_nonblocking(true)?;
        notify_recv.set_nonblocking(true)?;
        Ok(Poller {
            registrations: Mutex::new(Vec::new()),
            notify_recv,
            notify_send,
        })
    }

    /// Registers `source` under `interest.key`.  The caller must keep `source` open
    /// for as long as it is registered and should put it into non-blocking mode.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::AlreadyExists`] if the key or the descriptor is
    /// already registered.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut regs = lock(&self.registrations);
        if regs
            .iter()
            .any(|r| r.fd == fd || r.interest.key == interest.key)
        {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "descriptor or key already registered",
            ));
        }
        regs.push(Registration { fd, interest });
        Ok(())
    }

    /// Replaces the interest of the registration for `source`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::NotFound`] if the descriptor is not registered.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut regs = lock(&self.registrations);
        match regs.iter_mut().find(|r| r.fd == fd) {
            Some(reg) => {
                reg.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "descriptor not registered",
            )),
        }
    }

    /// Removes the registration for `source`.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::NotFound`] if the descriptor is not registered.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut regs = lock(&self.registrations);
        match regs.iter().position(|r| r.fd == fd) {
            Some(at) => {
                regs.remove(at);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "descriptor not registered",
            )),
        }
    }

    /// Blocks until at least one registered descriptor is ready, the timeout elapses
    /// (`None` blocks indefinitely), or [`notify`](Self::notify) is called.  Ready
    /// events are appended to `events` (which is *not* cleared first, matching the
    /// real crate); the return value is the number appended.  A wake via `notify`
    /// returns `Ok(0)` with no events.
    ///
    /// # Errors
    ///
    /// Returns the OS error from `poll(2)` (after transparent `EINTR` retries).
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            // Snapshot the table: slot 0 is always the waker's read side.
            let snapshot: Vec<Registration> = lock(&self.registrations).clone();
            let mut fds = Vec::with_capacity(snapshot.len() + 1);
            fds.push(PollFd {
                fd: self.notify_recv.as_raw_fd(),
                events: POLL_IN,
                revents: 0,
            });
            for reg in &snapshot {
                let mut mask = 0;
                if reg.interest.readable {
                    mask |= POLL_IN;
                }
                if reg.interest.writable {
                    mask |= POLL_OUT;
                }
                fds.push(PollFd {
                    fd: reg.fd,
                    events: mask,
                    revents: 0,
                });
            }
            let timeout_ms = match deadline {
                None => -1,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    // Round up so a positive remaining time never busy-spins as 0ms.
                    c_int::try_from(
                        left.as_millis() + u128::from(left.subsec_nanos() % 1_000_000 != 0),
                    )
                    .unwrap_or(c_int::MAX)
                }
            };
            let ready = sys_poll(&mut fds, timeout_ms)?;
            if ready == 0 {
                // Timed out (poll never returns 0 in infinite-timeout mode).
                return Ok(0);
            }
            let mut woken = false;
            if fds[0].revents != 0 {
                self.drain_notifications();
                woken = true;
            }
            let mut appended = 0;
            for (fd, reg) in fds[1..].iter().zip(&snapshot) {
                if fd.revents == 0 {
                    continue;
                }
                let error = fd.revents & (POLL_ERR | POLL_HUP | POLL_NVAL) != 0;
                events.push(Event {
                    key: reg.interest.key,
                    readable: fd.revents & POLL_IN != 0 || error,
                    writable: fd.revents & POLL_OUT != 0 || error,
                });
                appended += 1;
            }
            if appended > 0 || woken {
                return Ok(appended);
            }
            // Spurious wakeup (e.g. a descriptor re-armed between snapshot and
            // poll): go around, honoring the original deadline.
        }
    }

    /// Wakes the thread blocked in [`wait`](Self::wait), making it return `Ok(0)`.
    /// Notifications coalesce: many `notify` calls before a `wait` produce one wake.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the waker byte cannot be written (never merely
    /// because a notification is already pending).
    pub fn notify(&self) -> io::Result<()> {
        match (&self.notify_send).write(&[1]) {
            Ok(_) => Ok(()),
            // The pipe is full of unconsumed wakes: the waiter is already pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consumes every pending waker byte.
    fn drain_notifications(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.notify_recv).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Locks a mutex, ignoring poisoning (the table is plain data, valid at every step).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;

    #[test]
    fn timeout_returns_zero_events() {
        let poller = Poller::new().expect("poller");
        let mut events = Vec::new();
        let started = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .expect("wait");
        assert_eq!(n, 0);
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().expect("poller"));
        let waker = std::sync::Arc::clone(&poller);
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            waker.notify().expect("notify");
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert_eq!(n, 0, "a notify wake carries no descriptor events");
        handle.join().expect("join");
        // Notifications coalesce and drain: the next wait times out quietly.
        poller.notify().expect("notify");
        poller.notify().expect("notify");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert_eq!(n, 0);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn listener_reports_readable_on_incoming_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().expect("addr");
        let poller = Poller::new().expect("poller");
        poller.add(&listener, Event::readable(7)).expect("add");

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert_eq!(n, 0, "no connection yet");

        let _client = TcpStream::connect(addr).expect("connect");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn stream_readiness_follows_interest_and_peer_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        let (mut served, _) = listener.accept().expect("accept");

        let poller = Poller::new().expect("poller");
        // A fresh stream is writable but not readable.
        poller.add(&client, Event::all(1)).expect("add");
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(events.iter().any(|e| e.key == 1 && e.writable));
        assert!(!events.iter().any(|e| e.readable));

        // With write interest dropped and bytes arriving, it reports readable.
        poller.modify(&client, Event::readable(1)).expect("modify");
        served.write_all(b"hello\n").expect("peer write");
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(events.iter().any(|e| e.key == 1 && e.readable));

        // Deleted registrations stop reporting even though data is still pending.
        poller.delete(&client).expect("delete");
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn peer_close_reports_readiness_for_readers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        client.set_nonblocking(true).expect("nonblocking");
        let (served, _) = listener.accept().expect("accept");
        let poller = Poller::new().expect("poller");
        poller.add(&client, Event::readable(3)).expect("add");
        drop(served);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert!(
            events.iter().any(|e| e.key == 3 && e.readable),
            "a hang-up must wake readers so they observe EOF: {events:?}"
        );
    }

    #[test]
    fn duplicate_and_missing_registrations_are_typed_errors() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let other = TcpListener::bind("127.0.0.1:0").expect("bind");
        let poller = Poller::new().expect("poller");
        poller.add(&listener, Event::readable(1)).expect("add");
        assert_eq!(
            poller
                .add(&listener, Event::readable(2))
                .expect_err("same fd")
                .kind(),
            io::ErrorKind::AlreadyExists
        );
        assert_eq!(
            poller
                .add(&other, Event::readable(1))
                .expect_err("same key")
                .kind(),
            io::ErrorKind::AlreadyExists
        );
        assert_eq!(
            poller
                .modify(&other, Event::none(9))
                .expect_err("missing")
                .kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(
            poller.delete(&other).expect_err("missing").kind(),
            io::ErrorKind::NotFound
        );
    }
}
