//! Facade crate re-exporting the full `ipsketch` public API.
//!
//! See the individual crates for details:
//! - [`hash`]: hashing substrate
//! - [`vector`]: sparse/dense vectors, statistics and rounding
//! - [`core`]: the sketching algorithms and estimators
//! - [`data`]: synthetic workload generators
//! - [`join`]: the dataset-search application
//! - [`serve`]: persistent sketch catalogs and the query service
//! - [`bench`]: the experiment harness

#![forbid(unsafe_code)]

pub use ipsketch_bench as bench;
pub use ipsketch_core as core;
pub use ipsketch_data as data;
pub use ipsketch_hash as hash;
pub use ipsketch_join as join;
pub use ipsketch_serve as serve;
pub use ipsketch_vector as vector;
