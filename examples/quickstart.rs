//! Quickstart: sketch two sparse vectors with Weighted MinHash and estimate their
//! inner product, comparing against the exact value and the classic linear-sketch
//! baselines.
//!
//! Run with: `cargo run --release --example quickstart`

use ipsketch::core::method::{AnySketcher, SketchMethod};
use ipsketch::core::traits::{Sketch, Sketcher};
use ipsketch::core::wmh::WeightedMinHasher;
use ipsketch::vector::{inner_product, SparseVector};

fn main() {
    // Two sparse vectors over a huge (implicit) index domain: only the non-zero
    // entries are ever materialized.  They overlap on a small set of indices, the
    // regime where Weighted MinHash shines (Theorem 2 of the paper).
    let a = SparseVector::from_pairs((0..2_000u64).map(|i| (i, 1.0 + (i % 7) as f64)))
        .expect("finite values");
    let b = SparseVector::from_pairs((1_900..3_900u64).map(|i| (i, 2.0 - (i % 5) as f64)))
        .expect("finite values");
    let exact = inner_product(&a, &b);
    println!("exact inner product  : {exact:.2}");
    println!("norm product |a||b|  : {:.2}\n", a.norm() * b.norm());

    // --- Direct use of the Weighted MinHash sketcher -------------------------------
    // m = 256 samples, shared seed 42, discretization L = 2^24.
    let sketcher = WeightedMinHasher::new(256, 42, 1 << 24).expect("valid parameters");
    let sketch_a = sketcher.sketch(&a).expect("non-zero vector");
    let sketch_b = sketcher.sketch(&b).expect("non-zero vector");
    let estimate = sketcher
        .estimate_inner_product(&sketch_a, &sketch_b)
        .expect("compatible sketches");
    println!(
        "WMH (m=256)          : {estimate:.2}   (sketch storage: {:.0} doubles each)",
        sketch_a.storage_doubles()
    );

    // --- The budget-driven front end, comparing all the paper's baselines ----------
    println!("\nAll methods at an equal 400-double storage budget:");
    for method in SketchMethod::paper_baselines() {
        let sketcher = AnySketcher::for_budget(method, 400.0, 42).expect("budget fits");
        let sa = sketcher.sketch(&a).expect("sketchable");
        let sb = sketcher.sketch(&b).expect("sketchable");
        let est = sketcher
            .estimate_inner_product(&sa, &sb)
            .expect("compatible");
        println!(
            "  {:>4}: estimate {est:>10.2}   |error|/(|a||b|) = {:.4}",
            method.label(),
            (est - exact).abs() / (a.norm() * b.norm())
        );
    }
}
