//! End-to-end loopback demo of the network front end (requires `--features server`):
//!
//! ```sh
//! cargo run --release --features server --example serve_loopback
//! ```
//!
//! Builds a catalog in a temp directory, serves it on an ephemeral loopback port,
//! connects a real TCP client, runs a batched joinability query plus the sharded
//! two-pass ingest over the wire, and asserts the served answers are **bit-identical**
//! to the in-process `QueryService` answers — the acceptance criterion of the
//! serving layer.  A final step repeats a query over the HTTP/1.1 framer and checks
//! the response body is byte-identical to the TCP line.  Exits non-zero on any
//! mismatch, so CI can run it as a smoke test.

use ipsketch::core::method::{AnySketcher, SketchMethod};
use ipsketch::data::{Column, Table};
use ipsketch::serve::protocol::{
    Mode, Request, RequestBody, Response, ResponseBody, WireQuery, WireTable,
};
use ipsketch::serve::server::{serve, ServerConfig};
use ipsketch::serve::wire::Json;
use ipsketch::serve::{shard_rows, QueryService};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("ipsketch-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // A tiny lake: "weather.precip" joins heavily with the taxi query column.
    let taxi = Table::new(
        "taxi",
        (0..300).collect(),
        vec![Column::new(
            "rides",
            (0..300).map(|i| f64::from(i % 23) + 1.0).collect(),
        )],
    )?;
    let weather = Table::new(
        "weather",
        (100..400).collect(),
        vec![Column::new(
            "precip",
            (100..400).map(|i| 3.0 * f64::from(i % 23) + 2.0).collect(),
        )],
    )?;
    let depth = Table::new(
        "river",
        (50..350).collect(),
        vec![Column::new(
            "depth",
            (50..350).map(|i| 2.0 * f64::from(i) - 9.0).collect(),
        )],
    )?;

    let spec = AnySketcher::for_budget(SketchMethod::WeightedMinHash, 300.0, 7)?.spec();
    let mut service = QueryService::create(&root, spec)?;
    service.ingest_table(&weather)?;

    // In-process ground truth for the batched query (computed before serving, and —
    // for the post-ingest check — on a twin ingest of the same shards).
    let q = service.sketch_query(&taxi, "rides")?;
    let expected = service.query_joinable_batch(std::slice::from_ref(&q), 3)?;
    {
        let mut session = service.begin_sharded_ingest(depth.name());
        for shard in &shard_rows(&depth, 3) {
            session.announce(shard)?;
        }
        for shard in &shard_rows(&depth, 3) {
            session.submit(service.estimator(), shard)?;
        }
        service.finish_sharded_ingest(session)?;
    }
    let expected_after = service.query_joinable(&q, 3)?;

    // Rebuild the served catalog without the river table: the client will ingest it
    // over the wire and must then see `expected_after`.
    let _ = std::fs::remove_dir_all(&root);
    let mut service = QueryService::create(&root, spec)?;
    service.ingest_table(&weather)?;

    let config = ServerConfig::builder()
        .tcp("127.0.0.1:0")
        .http("127.0.0.1:0")
        .build()?;
    let handle = serve(service, config)?;
    let tcp_addr = handle.tcp_addr().expect("tcp bound");
    let http_addr = handle.http_addr().expect("http bound");
    println!("serving tcp on {tcp_addr}, http on {http_addr}");

    let stream = TcpStream::connect(tcp_addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut send = |request: &Request| -> Result<Response, Box<dyn std::error::Error>> {
        let mut line = request.encode();
        line.push('\n');
        (&stream).write_all(line.as_bytes())?;
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        Ok(Response::decode(reply.trim_end())?)
    };

    // 1. Batched query over the wire: bit-identical to the in-process batch.
    let query = WireQuery {
        table: "taxi".to_string(),
        column: "rides".to_string(),
        keys: taxi.keys().to_vec(),
        values: taxi.columns()[0].values.clone(),
    };
    let response = send(&Request {
        id: Json::u64(1),
        body: RequestBody::BatchQuery {
            mode: Mode::Joinable,
            k: 3,
            min_join_size: 0.0,
            cascade: false,
            queries: vec![query.clone()],
        },
    })?;
    let ResponseBody::Rankings { rankings, .. } = response.result.map_err(|e| e.to_string())?
    else {
        return Err("expected rankings".into());
    };
    assert_eq!(rankings.len(), 1);
    for (served, in_process) in rankings[0].iter().zip(&expected[0]) {
        assert_eq!(served.table, in_process.id.table);
        assert_eq!(served.column, in_process.id.column);
        assert_eq!(
            served.join_size.to_bits(),
            in_process.estimated_join_size.to_bits(),
            "served join size must be bit-identical to the in-process estimate"
        );
    }
    println!(
        "batch query over the wire: {} results, top hit {}.{} (join size {:.1}) — bit-identical",
        rankings[0].len(),
        rankings[0][0].table,
        rankings[0][0].column,
        rankings[0][0].join_size,
    );

    // 2. Sharded two-pass ingest over the wire.
    let ResponseBody::Session(session) = send(&Request {
        id: Json::u64(2),
        body: RequestBody::IngestBegin {
            table: depth.name().to_string(),
        },
    })?
    .result
    .map_err(|e| e.to_string())?
    else {
        return Err("expected session".into());
    };
    let shards: Vec<WireTable> = shard_rows(&depth, 3)
        .iter()
        .map(WireTable::from_table)
        .collect();
    for shard in &shards {
        send(&Request {
            id: Json::Null,
            body: RequestBody::IngestAnnounce {
                session,
                shard: shard.clone(),
            },
        })?
        .result
        .map_err(|e| e.to_string())?;
    }
    for shard in &shards {
        send(&Request {
            id: Json::Null,
            body: RequestBody::IngestSubmit {
                session,
                shard: shard.clone(),
            },
        })?
        .result
        .map_err(|e| e.to_string())?;
    }
    let ResponseBody::Report { registered, .. } = send(&Request {
        id: Json::Null,
        body: RequestBody::IngestFinish { session },
    })?
    .result
    .map_err(|e| e.to_string())?
    else {
        return Err("expected report".into());
    };
    println!("sharded wire ingest registered {registered:?}");

    // 3. Post-ingest query: bit-identical to the in-process post-ingest answer.
    let response = send(&Request {
        id: Json::u64(3),
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k: 3,
            min_join_size: 0.0,
            cascade: false,
            query: query.clone(),
        },
    })?;
    let ResponseBody::Ranking { ranking, .. } = response.result.map_err(|e| e.to_string())? else {
        return Err("expected ranking".into());
    };
    assert_eq!(ranking.len(), expected_after.len());
    for (served, in_process) in ranking.iter().zip(&expected_after) {
        assert_eq!(served.table, in_process.id.table);
        assert_eq!(
            served.join_size.to_bits(),
            in_process.estimated_join_size.to_bits(),
            "post-ingest served answers must stay bit-identical"
        );
    }
    println!(
        "post-ingest query: top hit {}.{} — bit-identical to the in-process twin",
        ranking[0].table, ranking[0].column
    );

    // 4. The same query over the HTTP/1.1 framer: the response body must be
    // byte-identical to the line the TCP framer sends.
    let raw_request = Request {
        id: Json::u64(4),
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k: 3,
            min_join_size: 0.0,
            cascade: false,
            query,
        },
    }
    .encode();
    (&stream).write_all(raw_request.as_bytes())?;
    (&stream).write_all(b"\n")?;
    let mut tcp_line = String::new();
    reader.read_line(&mut tcp_line)?;

    let http_stream = TcpStream::connect(http_addr)?;
    let mut http_reader = BufReader::new(http_stream.try_clone()?);
    (&http_stream).write_all(
        format!(
            "POST /v1/query HTTP/1.1\r\nHost: demo\r\nContent-Length: {}\r\n\r\n{raw_request}",
            raw_request.len()
        )
        .as_bytes(),
    )?;
    let mut status = String::new();
    http_reader.read_line(&mut status)?;
    if !status.starts_with("HTTP/1.1 200") {
        return Err(format!("expected 200 over HTTP, got {}", status.trim_end()).into());
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        http_reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = value.trim().parse()?;
        }
    }
    let mut body = vec![0u8; content_length];
    http_reader.read_exact(&mut body)?;
    assert_eq!(
        String::from_utf8(body)?,
        tcp_line,
        "HTTP response body must be byte-identical to the TCP line"
    );
    println!("http query on {http_addr}: 200, body byte-identical to the TCP framer");

    handle.shutdown();
    std::fs::remove_dir_all(&root)?;
    println!("loopback smoke passed");
    Ok(())
}
