//! Document similarity estimation from sketches (the paper's Figure-6 workload).
//!
//! Builds a synthetic topic-model corpus, vectorizes it with TF-IDF (unigrams +
//! bigrams), sketches every document once, and then estimates pairwise cosine
//! similarities from the sketches alone — comparing Weighted MinHash with the
//! unweighted MinHash and JL baselines at the same storage budget.
//!
//! Run with: `cargo run --release --example document_similarity`

use ipsketch::core::method::{AnySketcher, SketchMethod};
use ipsketch::core::traits::Sketcher;
use ipsketch::data::text::CorpusConfig;
use ipsketch::data::tfidf::{TfIdfConfig, TfIdfVectorizer};
use ipsketch::vector::cosine_similarity;

fn main() {
    // A 200-document corpus over 8 topics; document lengths follow a heavy-tailed
    // distribution like real newsgroup posts.
    let corpus = CorpusConfig {
        documents: 200,
        vocabulary: 4_000,
        topics: 8,
        ..CorpusConfig::default()
    }
    .generate(2024)
    .expect("valid corpus configuration");
    let tokenized: Vec<Vec<String>> = corpus.documents.iter().map(|d| d.tokens.clone()).collect();

    let vectorizer =
        TfIdfVectorizer::fit(&tokenized, TfIdfConfig::default()).expect("non-empty vocabulary");
    let vectors = vectorizer.vectorize_all(&tokenized);
    println!(
        "corpus: {} documents, TF-IDF dimension {} (unigrams + bigrams)",
        vectors.len(),
        vectorizer.dimension()
    );

    // Sketch every document once per method at a 200-double budget, then estimate a few
    // interesting pairs.
    let budget = 200.0;
    let pairs = [(0usize, 1usize), (0, 50), (10, 11), (20, 120), (3, 150)];
    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10}",
        "pair", "exact", "WMH", "MH", "JL"
    );
    for &(i, j) in &pairs {
        let exact = cosine_similarity(&vectors[i], &vectors[j]);
        let mut row = format!("({i:>3},{j:>3})   {exact:>10.4}");
        for method in [
            SketchMethod::WeightedMinHash,
            SketchMethod::MinHash,
            SketchMethod::Jl,
        ] {
            let sketcher = AnySketcher::for_budget(method, budget, 7).expect("budget fits");
            let sa = sketcher.sketch(&vectors[i]).expect("sketchable");
            let sb = sketcher.sketch(&vectors[j]).expect("sketchable");
            // The TF-IDF vectors are unit-normalized, so the inner product *is* the
            // cosine similarity.
            let est = sketcher
                .estimate_inner_product(&sa, &sb)
                .expect("compatible");
            row.push_str(&format!(" {est:>10.4}"));
        }
        println!("{row}");
    }

    // Average error over many pairs, per method — a miniature Figure 6(a).
    println!("\naverage |error| over 2000 random pairs at storage {budget}:");
    let mut rng_state = 0x5EEDu64;
    let mut next = move || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng_state >> 33) as usize
    };
    let sample_pairs: Vec<(usize, usize)> = (0..2_000)
        .map(|_| (next() % vectors.len(), next() % vectors.len()))
        .filter(|(i, j)| i != j)
        .collect();
    for method in SketchMethod::paper_baselines() {
        let sketcher = AnySketcher::for_budget(method, budget, 7).expect("budget fits");
        let sketches: Vec<_> = vectors
            .iter()
            .map(|v| sketcher.sketch(v).expect("sketchable"))
            .collect();
        let mut total = 0.0;
        for &(i, j) in &sample_pairs {
            let est = sketcher
                .estimate_inner_product(&sketches[i], &sketches[j])
                .expect("compatible");
            total += (est - cosine_similarity(&vectors[i], &vectors[j])).abs();
        }
        println!(
            "  {:>4}: {:.4}",
            method.label(),
            total / sample_pairs.len() as f64
        );
    }
}
