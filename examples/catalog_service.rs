//! Serving a persistent sketch catalog.
//!
//! The paper's workflow sketches every column of a data lake *once* and answers
//! joinability/relatedness queries from the summaries forever after.  This example
//! exercises that full lifecycle through `ipsketch-serve`:
//!
//! 1. initialize an on-disk catalog with a Weighted MinHash sketcher;
//! 2. ingest a planted "weather" table one-shot and a synthetic lake through the
//!    shard-partial path (two-pass announced-norm protocol, partial sketches folded at
//!    registration);
//! 3. drop the service, reopen the catalog cold, and show that lazily hydrated
//!    queries surface the planted table with estimates identical to an in-memory
//!    index built from scratch.
//!
//! Run with: `cargo run --release --example catalog_service`

use ipsketch::core::method::{AnySketcher, SketchMethod};
use ipsketch::data::{Column, DataLakeConfig, Table};
use ipsketch::join::{JoinEstimator, SketchIndex};
use ipsketch::serve::{shard_rows, QueryService};

fn main() {
    let root = std::env::temp_dir().join(format!("ipsketch-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // The analyst's query table: a year of daily ride anomalies keyed by day index.
    let query = Table::new(
        "taxi",
        (0..365).collect(),
        vec![Column::new(
            "rides",
            (0..365)
                .map(|day| 120.0 * f64::from(day % 7 != 0) - 60.0 + f64::from(day % 11))
                .collect(),
        )],
    )
    .expect("well-formed table");

    // A planted weather table covering an overlapping range of days, whose
    // precipitation column co-varies with ride anomalies.
    let weather = Table::new(
        "weather",
        (100..465).collect(),
        vec![
            Column::new(
                "precip",
                (100..465)
                    .map(|day| 60.0 * f64::from(day % 7 != 0) - 30.0 + f64::from(day % 11) / 2.0)
                    .collect(),
            ),
            Column::new(
                "pressure",
                (100..465)
                    .map(|day| f64::from((day * 31) % 17) - 8.0)
                    .collect(),
            ),
        ],
    )
    .expect("well-formed table");

    // --- 1. Initialize the catalog. -------------------------------------------------
    let spec = AnySketcher::for_budget(SketchMethod::WeightedMinHash, 600.0, 7)
        .expect("budget fits")
        .spec();
    let mut service = QueryService::create(&root, spec).expect("fresh directory");
    println!("initialized catalog at {} with {spec}", root.display());

    // --- 2. Ingest: one-shot and shard-partial. -------------------------------------
    let report = service.ingest_table(&weather).expect("weather ingests");
    println!(
        "one-shot ingest of `weather`: {} columns registered",
        report.registered.len()
    );

    // The synthetic lake arrives "sharded": each table is split into 3 row ranges, the
    // shards exchange Σv² partial sums so WMH can agree on every column's norm, then
    // each shard sketches locally and the service folds the partials.
    let lake = DataLakeConfig {
        tables: 5,
        columns_per_table: 2,
        min_rows: 200,
        max_rows: 400,
        key_universe: 1_000,
    }
    .generate(21)
    .expect("valid config");
    for table in lake.tables() {
        let shards = shard_rows(table, 3);
        let mut session = service.begin_sharded_ingest(table.name());
        for shard in &shards {
            session.announce(shard).expect("norm exchange");
        }
        for shard in &shards {
            session
                .submit(service.estimator(), shard)
                .expect("shard sketches");
        }
        let report = service
            .finish_sharded_ingest(session)
            .expect("registration");
        println!(
            "shard-partial ingest of `{}`: {} columns from {} shards",
            table.name(),
            report.registered.len(),
            shards.len()
        );
    }
    let total = service.catalog().len();
    drop(service);

    // --- 3. Reopen cold and query. --------------------------------------------------
    let mut reopened = QueryService::open(&root).expect("catalog persists");
    assert_eq!(reopened.catalog().len(), total);
    assert_eq!(reopened.hydrated_len(), 0, "hydration is lazy");
    let q = reopened
        .sketch_query(&query, "rides")
        .expect("query sketches");
    let ranked = reopened.query_related(&q, 3, 50.0).expect("query runs");
    assert_eq!(
        reopened.hydrated_len(),
        total,
        "first query hydrates the catalog"
    );
    println!("\ntop related columns for taxi.rides (reopened catalog):");
    for (rank, r) in ranked.iter().enumerate() {
        println!(
            "  {}. {}.{} — join ≈ {:.0}, corr ≈ {:+.2}",
            rank + 1,
            r.id.table,
            r.id.column,
            r.estimated_join_size,
            r.estimated_correlation
        );
    }
    assert_eq!(
        ranked[0].id.table, "weather",
        "planted table is the top hit"
    );
    assert_eq!(ranked[0].id.column, "precip");

    // The served estimates are identical to an in-memory index built from scratch
    // with the same configuration — persistence is transparent.
    let estimator = JoinEstimator::new(spec.build().expect("spec round-trips"));
    let mut in_memory = SketchIndex::new(estimator);
    in_memory.insert_table(&weather).expect("weather indexes");
    let mem_q = in_memory.sketch_query(&query, "rides").expect("sketches");
    let mem_top = &in_memory.top_k_correlated(&mem_q, 1, 50.0).expect("ranks")[0];
    assert_eq!(mem_top.id.table, "weather");
    let served_precip = ranked
        .iter()
        .find(|r| r.id.column == "precip")
        .expect("precip ranked");
    assert_eq!(
        served_precip.estimated_correlation, mem_top.estimated_correlation,
        "served estimate equals the in-memory estimate bit-for-bit"
    );
    println!("\nserved estimates match the in-memory index bit-for-bit ✓");

    std::fs::remove_dir_all(&root).expect("cleanup");
}
