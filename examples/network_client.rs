//! A standalone client for a running `ipsketch serve` instance:
//!
//! ```sh
//! # terminal 1 (needs a catalog and the server feature):
//! cargo run --release --features server -p ipsketch-serve --bin ipsketch -- \
//!     serve ./lake --addr 127.0.0.1:7878
//! # terminal 2:
//! cargo run --release --example network_client -- \
//!     127.0.0.1:7878 taxi.csv rides [top_k]
//! ```
//!
//! Reads the query column from a CSV file (`key,<col>,…`, as the CLI ingests),
//! sends one `query` request over the line-delimited JSON protocol
//! (`docs/PROTOCOL.md`), and prints the ranking.  This example needs no server
//! feature — the protocol module is plain data; any language that can write a line
//! of JSON to a TCP socket can do what this file does.

use ipsketch::serve::csv::load_table;
use ipsketch::serve::protocol::{Mode, Request, RequestBody, Response, ResponseBody, WireQuery};
use ipsketch::serve::wire::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

/// Default per-request deadline: a stalled or wedged server turns into a typed
/// I/O timeout instead of hanging the client forever (`docs/PROTOCOL.md`
/// § Timeouts, retries, and idempotency).  `query` is idempotent, so retrying
/// after a timeout is always safe.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [addr, csv, column, rest @ ..] = args.as_slice() else {
        eprintln!("usage: network_client <host:port> <query.csv> <column> [top_k]");
        std::process::exit(2);
    };
    let k: u64 = match rest {
        [] => 10,
        [k, ..] => k.parse()?,
    };

    let table = load_table(Path::new(csv), None)?;
    let values = table.column(column)?.values.clone();
    let request = Request {
        id: Json::u64(1),
        body: RequestBody::Query {
            mode: Mode::Joinable,
            k,
            min_join_size: 0.0,
            cascade: false,
            query: WireQuery {
                table: table.name().to_string(),
                column: column.clone(),
                keys: table.keys().to_vec(),
                values,
            },
        },
    };

    let socket_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("`{addr}` does not resolve to an address"))?;
    let stream = TcpStream::connect_timeout(&socket_addr, CONNECT_TIMEOUT)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(READ_TIMEOUT))?;
    let mut line = request.encode();
    line.push('\n');
    (&stream).write_all(line.as_bytes())?;
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply)?;
    let response = Response::decode(reply.trim_end())?;
    match response.result {
        Ok(ResponseBody::Ranking { ranking, .. }) => {
            println!(
                "top {} joinable columns for {}.{column}:",
                ranking.len(),
                table.name()
            );
            println!(
                "{:<4} {:<28} {:>12} {:>10}",
                "rank", "column", "join_size", "corr"
            );
            for (rank, result) in ranking.iter().enumerate() {
                println!(
                    "{:<4} {:<28} {:>12.2} {:>10.4}",
                    rank + 1,
                    format!("{}.{}", result.table, result.column),
                    result.join_size,
                    result.correlation,
                );
            }
            Ok(())
        }
        Ok(other) => Err(format!("unexpected response payload: {other:?}").into()),
        Err(e) => Err(format!("server error: {e}").into()),
    }
}
