//! Accuracy versus storage on the paper's synthetic workload — a runnable miniature of
//! Figure 4 that prints the error of every method at several storage budgets for a
//! low-overlap and a high-overlap pair, illustrating exactly when Weighted MinHash
//! beats linear sketching and when the two are comparable.
//!
//! Run with: `cargo run --release --example synthetic_accuracy`

use ipsketch::bench::experiments::fig4::{format, run, Fig4Config};
use ipsketch::bench::experiments::Scale;
use ipsketch::data::SyntheticPairConfig;

fn main() {
    // A reduced Figure-4 configuration (full parameters: pass Scale::Paper or run the
    // `fig4 --full` binary of the ipsketch-bench crate).
    let mut config = Fig4Config::for_scale(Scale::Quick);
    config.overlaps = vec![0.01, 0.50];
    config.storage_sizes = vec![100, 200, 400];
    config.trials = 5;
    config.data = SyntheticPairConfig {
        dimension: 6_000,
        nonzeros: 1_200,
        ..SyntheticPairConfig::default()
    };

    let cells = run(&config);
    print!("{}", format(&config, &cells));

    println!(
        "Reading the tables: at 1% overlap the WMH column should be clearly smaller than \
         JL/CS at every storage size; at 50% overlap the columns should be comparable — \
         the behaviour of Figure 4(a) and 4(d) in the paper."
    );
}
