//! A standalone fault-injection TCP proxy for chaos-testing a cluster by hand:
//!
//! ```sh
//! # terminal 1: a catalog node
//! cargo run --release --features server -p ipsketch-serve --bin ipsketch -- \
//!     serve ./lake --addr 127.0.0.1:7878
//! # terminal 2: a stalling proxy in front of it
//! cargo run --release --features server --example fault_proxy -- \
//!     127.0.0.1:7900 127.0.0.1:7878 stall
//! # terminal 3: a router that only knows the proxy address
//! cargo run --release --features server -p ipsketch-serve --bin ipsketch -- \
//!     route --addr 127.0.0.1:8000 --node 127.0.0.1:7900 --read-timeout-ms 500
//! ```
//!
//! Modes (`ipsketch_serve::faults::FaultMode::parse` spellings):
//! `passthrough`, `stall`, `stall-then-resume:<ms>`, `drop-after:<n>`,
//! `garbage`, `reset`.  The same proxy backs the in-tree chaos suite
//! (`crates/serve/tests/chaos_loopback.rs`) and the CI chaos-smoke job; this
//! binary exposes it for manual experiments and shell-scripted scenarios.

use ipsketch::serve::faults::{FaultMode, FaultProxy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [listen, upstream, mode] = args.as_slice() else {
        eprintln!("usage: fault_proxy <listen-host:port> <upstream-host:port> <mode>");
        eprintln!("modes: passthrough | stall | stall-then-resume:<ms> | drop-after:<n> | garbage | reset");
        std::process::exit(2);
    };
    let mode = FaultMode::parse(mode).ok_or_else(|| format!("unknown fault mode `{mode}`"))?;
    let proxy = FaultProxy::bind(listen.parse()?, upstream.clone(), mode)?;
    println!(
        "fault proxy on {} -> {upstream} ({mode:?}); ctrl-c to stop",
        proxy.addr()
    );
    // Serve until killed: the proxy runs on background threads, so park here.
    loop {
        std::thread::park();
    }
}
