//! Dataset search: the motivating application of the paper (Section 1.2).
//!
//! A data analyst has a table of daily taxi-ride counts and wants to find, in a data
//! lake, other tables that are joinable with it and contain related variables — without
//! joining anything.  This example:
//!
//! 1. reproduces the paper's worked example (Figure 2) exactly, via the Figure 3
//!    vector reduction;
//! 2. builds a `SketchIndex` over a synthetic data lake plus a planted "weather" table
//!    whose precipitation column is strongly correlated with the query, and shows that
//!    the index surfaces it.
//!
//! Run with: `cargo run --release --example dataset_search`

use ipsketch::data::{Column, DataLakeConfig, Table};
use ipsketch::join::{exact_join_statistics, JoinEstimator, SketchIndex};

fn main() {
    figure_2_walkthrough();
    data_lake_search();
}

/// Reproduces Figure 2 of the paper: post-join statistics of T_A ⋈ T_B, exactly and
/// from sketches.
fn figure_2_walkthrough() {
    println!("=== Figure 2 worked example ===");
    let (t_a, t_b) = Table::figure_2_tables();
    let exact = exact_join_statistics(&t_a, "V_A", &t_b, "V_B").expect("columns exist");
    println!(
        "exact:     SIZE = {}, SUM(V_A) = {}, SUM(V_B) = {}, MEAN(V_A) = {}",
        exact.join_size, exact.sum_a, exact.sum_b, exact.mean_a
    );

    let estimator = JoinEstimator::weighted_minhash(400.0, 7).expect("budget fits");
    let sa = estimator.sketch_column(&t_a, "V_A").expect("sketchable");
    let sb = estimator.sketch_column(&t_b, "V_B").expect("sketchable");
    let approx = estimator.estimate(&sa, &sb).expect("compatible sketches");
    println!(
        "sketched:  SIZE ≈ {:.1}, SUM(V_A) ≈ {:.1}, SUM(V_B) ≈ {:.1}, MEAN(V_A) ≈ {:.1}\n",
        approx.join_size, approx.sum_a, approx.sum_b, approx.mean_a
    );
}

/// Builds a small data lake, plants a correlated weather table, and queries the index.
fn data_lake_search() {
    println!("=== Data-lake search ===");
    // The analyst's table: 365 days of taxi rides, where ridership drops on rainy days.
    // The query column is *centered* (ride anomalies rather than raw counts): the
    // correlation estimator assembles n·Σab − Σa·Σb from sketched moments, and for a
    // far-from-zero-mean column (raw rides: mean ≈ 774, std ≈ 111) that subtraction
    // cancels to a few percent of its operands, amplifying sketch noise ~50×.  Centering
    // the query — standard practice in the correlation-sketch literature — keeps the
    // post-join moments well conditioned, so a realistic sketch budget suffices.
    let days: Vec<u64> = (0..365).collect();
    let rainfall: Vec<f64> = days
        .iter()
        .map(|&d| ((d * 37 % 97) as f64) / 10.0)
        .collect();
    let rides: Vec<f64> = rainfall.iter().map(|r| 1_000.0 - 40.0 * r).collect();
    let mean_rides = rides.iter().sum::<f64>() / rides.len() as f64;
    let ride_anomaly: Vec<f64> = rides.iter().map(|r| r - mean_rides).collect();
    let taxi = Table::new(
        "taxi_rides",
        days.clone(),
        vec![Column::new("ride_anomaly", ride_anomaly)],
    )
    .expect("well formed");
    // The weather table lives in the lake, covers a longer date range, and contains the
    // precipitation values that explain the ridership variation.
    let weather_days: Vec<u64> = (0..1_000).collect();
    let weather_precip: Vec<f64> = weather_days
        .iter()
        .map(|&d| {
            if d < 365 {
                rainfall[d as usize]
            } else {
                ((d * 17 % 89) as f64) / 10.0
            }
        })
        .collect();
    let weather = Table::new(
        "weather",
        weather_days,
        vec![Column::new("precipitation", weather_precip)],
    )
    .expect("well formed");

    // A pile of unrelated tables.
    let lake = DataLakeConfig {
        tables: 20,
        columns_per_table: 3,
        min_rows: 200,
        max_rows: 800,
        key_universe: 3_000,
    }
    .generate(99)
    .expect("valid configuration");

    // Index everything once (this is the offline, reusable work) at a realistic
    // per-vector budget.  The weather table goes through the partitioned path —
    // sketched as four independently-built row-chunks that are merged — exercising
    // exactly the code a sharded ingest pipeline would run; partitioned and one-shot
    // entries are interchangeable in the same index.
    let mut index = SketchIndex::new(JoinEstimator::weighted_minhash(600.0, 1).expect("budget"));
    index
        .insert_table_partitioned(&weather, 4)
        .expect("indexable");
    for table in lake.tables() {
        index.insert_table(table).expect("indexable");
    }
    println!(
        "indexed {} columns from {} tables (weather sketched as 4 merged row-chunks)",
        index.len(),
        lake.tables().len() + 1
    );

    // Query: which columns are joinable and correlated with taxi ridership?
    let query = index
        .sketch_query(&taxi, "ride_anomaly")
        .expect("sketchable");
    let top = index
        .top_k_correlated(&query, 5, 50.0)
        .expect("compatible sketches");
    println!("top related columns (by |estimated post-join correlation|):");
    for (rank, result) in top.iter().enumerate() {
        println!(
            "  {}. {}.{}  join≈{:.0} rows, correlation≈{:+.2}",
            rank + 1,
            result.id.table,
            result.id.column,
            result.estimated_join_size,
            result.estimated_correlation
        );
    }
    assert_eq!(
        top[0].id.table, "weather",
        "the planted weather table should be the top hit"
    );
    println!("\nthe weather table is correctly surfaced as the most related dataset");
}
