//! Cross-method conformance suite.
//!
//! One parameterized battery per guarantee, asserted for **every** method behind
//! [`AnySketcher`] — so a new method (or a refactor of an old one) cannot ship without
//! these holding:
//!
//! 1. serialize → deserialize → estimate is **bit-for-bit** identical to the in-memory
//!    estimate, at both the sketch level (`AnySketch` blobs) and the column level
//!    (`SketchedColumn` blobs, the catalog's unit of storage);
//! 2. merging or estimating across mismatched configurations (seed, budget, method)
//!    is a typed error — never a silently wrong estimate;
//! 3. empty and degenerate columns fail with typed errors at every layer.

use ipsketch::core::method::{AnySketch, AnySketcher, SketchMethod};
use ipsketch::core::serialize::BinarySketch;
use ipsketch::core::traits::Sketcher;
use ipsketch::core::SketchError;
use ipsketch::data::{Column, Table};
use ipsketch::join::{JoinError, JoinEstimator, SketchedColumn};
use ipsketch::vector::SparseVector;

const BUDGET: f64 = 160.0;
const SEED: u64 = 29;

fn vectors() -> (SparseVector, SparseVector) {
    let a = SparseVector::from_pairs((0..300u64).map(|i| (i, 1.0 + (i % 5) as f64)))
        .expect("finite values");
    let b = SparseVector::from_pairs((150..450u64).map(|i| (i, 2.0 - (i % 3) as f64)))
        .expect("finite values");
    (a, b)
}

fn tables() -> (Table, Table) {
    let ta = Table::new(
        "ta",
        (0..250).collect(),
        vec![Column::new(
            "v",
            (0..250).map(|i| f64::from(i % 17) + 1.0).collect(),
        )],
    )
    .expect("well-formed table");
    let tb = Table::new(
        "tb",
        (100..350).collect(),
        vec![Column::new(
            "w",
            (100..350).map(|i| f64::from(i % 13) - 4.0).collect(),
        )],
    )
    .expect("well-formed table");
    (ta, tb)
}

/// Battery 1a: sketch → `AnySketch` blob → decode → estimate equals the in-memory
/// estimate bit-for-bit, for every method.
#[test]
fn serialized_sketches_estimate_bit_for_bit() {
    let (a, b) = vectors();
    for method in SketchMethod::all() {
        let sketcher = AnySketcher::for_budget(method, BUDGET, SEED).expect("budget fits");
        let sa = sketcher.sketch(&a).expect("sketches");
        let sb = sketcher.sketch(&b).expect("sketches");
        let in_memory = sketcher
            .estimate_inner_product(&sa, &sb)
            .expect("estimates");

        let decoded_a = AnySketch::from_bytes(&sa.to_bytes()).expect("decodes");
        let decoded_b = AnySketch::from_bytes(&sb.to_bytes()).expect("decodes");
        assert_eq!(
            decoded_a, sa,
            "{method:?}: decoded sketch must be identical"
        );
        assert_eq!(decoded_b, sb, "{method:?}");
        let from_disk = sketcher
            .estimate_inner_product(&decoded_a, &decoded_b)
            .expect("decoded sketches estimate");
        assert_eq!(
            from_disk.to_bits(),
            in_memory.to_bits(),
            "{method:?}: estimate from serialized sketches must be bit-for-bit equal \
             ({from_disk} vs {in_memory})"
        );
    }
}

/// Battery 1b: the same guarantee through the catalog's unit of storage — the full
/// `SketchedColumn` blob with its three Figure-3 sketches.
#[test]
fn serialized_columns_estimate_bit_for_bit() {
    let (ta, tb) = tables();
    for method in SketchMethod::all() {
        let est =
            JoinEstimator::new(AnySketcher::for_budget(method, BUDGET, SEED).expect("budget fits"));
        let ca = est.sketch_column(&ta, "v").expect("sketches");
        let cb = est.sketch_column(&tb, "w").expect("sketches");
        let in_memory = est.estimate(&ca, &cb).expect("estimates");

        let decoded_a = SketchedColumn::from_bytes(&ca.to_bytes()).expect("decodes");
        let decoded_b = SketchedColumn::from_bytes(&cb.to_bytes()).expect("decodes");
        assert_eq!(decoded_a, ca, "{method:?}");
        assert_eq!(decoded_b, cb, "{method:?}");
        let from_disk = est.estimate(&decoded_a, &decoded_b).expect("estimates");
        assert_eq!(
            from_disk.join_size.to_bits(),
            in_memory.join_size.to_bits(),
            "{method:?}: join size must round-trip bit-for-bit"
        );
        assert_eq!(
            from_disk.correlation.to_bits(),
            in_memory.correlation.to_bits(),
            "{method:?}: correlation must round-trip bit-for-bit"
        );
    }
}

/// Battery 2: mismatched configurations error loudly.  Merging — and estimating —
/// across different seeds, budgets, or methods must be a typed
/// [`SketchError::IncompatibleSketches`], never a silent estimate.
#[test]
fn mismatched_configurations_never_silently_estimate() {
    let (a, b) = vectors();
    let all: Vec<AnySketcher> = SketchMethod::all()
        .into_iter()
        .map(|m| AnySketcher::for_budget(m, BUDGET, SEED).expect("budget fits"))
        .collect();
    for sketcher in &all {
        let method = sketcher.method();
        let sa = sketcher.sketch(&a).expect("sketches");

        // Different seed, same method and budget.
        let reseeded = AnySketcher::for_budget(method, BUDGET, SEED + 1).expect("budget fits");
        let sb_reseeded = reseeded.sketch(&b).expect("sketches");
        assert!(
            matches!(
                sketcher.estimate_inner_product(&sa, &sb_reseeded),
                Err(SketchError::IncompatibleSketches { .. })
            ),
            "{method:?}: cross-seed estimate must error"
        );
        assert!(
            matches!(
                sketcher.merge_sketches(&sa, &sb_reseeded),
                Err(SketchError::IncompatibleSketches { .. })
            ),
            "{method:?}: cross-seed merge must error"
        );

        // Different budget (different sketch size), same seed.
        let resized = AnySketcher::for_budget(method, BUDGET * 2.0, SEED).expect("budget fits");
        let sb_resized = resized.sketch(&b).expect("sketches");
        assert!(
            sketcher.estimate_inner_product(&sa, &sb_resized).is_err(),
            "{method:?}: cross-budget estimate must error"
        );
        assert!(
            sketcher.merge_sketches(&sa, &sb_resized).is_err(),
            "{method:?}: cross-budget merge must error"
        );

        // Every other method's sketch.
        for other in &all {
            if other.method() == method {
                continue;
            }
            let foreign = other.sketch(&b).expect("sketches");
            assert!(
                matches!(
                    sketcher.estimate_inner_product(&sa, &foreign),
                    Err(SketchError::IncompatibleSketches { .. })
                ),
                "{method:?} vs {:?}: cross-method estimate must error",
                other.method()
            );
            assert!(
                sketcher.merge_sketches(&sa, &foreign).is_err(),
                "{method:?} vs {:?}: cross-method merge must error",
                other.method()
            );
        }
    }
}

/// Battery 2b: the same guarantee one layer up — estimators over mismatched seeds
/// reject each other's sketched columns.
#[test]
fn mismatched_estimators_reject_each_others_columns() {
    let (ta, tb) = tables();
    for method in SketchMethod::all() {
        let est1 =
            JoinEstimator::new(AnySketcher::for_budget(method, BUDGET, SEED).expect("budget fits"));
        let est2 = JoinEstimator::new(
            AnySketcher::for_budget(method, BUDGET, SEED + 1).expect("budget fits"),
        );
        let ca = est1.sketch_column(&ta, "v").expect("sketches");
        let cb = est2.sketch_column(&tb, "w").expect("sketches");
        assert!(
            matches!(est1.estimate(&ca, &cb), Err(JoinError::Sketch(_))),
            "{method:?}: cross-seed column estimate must error"
        );
        assert!(
            est1.merge_sketched_columns(&ca, &cb).is_err(),
            "{method:?}: partials of different columns/configs must not merge"
        );
    }
}

/// Battery 3: empty and degenerate inputs fail with typed errors at every layer —
/// the empty vector at the sketcher layer (for the norm-dependent samplers), and the
/// all-zero / zero-row column at the estimator layer for every method.
#[test]
fn degenerate_inputs_fail_with_typed_errors() {
    // Sampling methods reject the empty (all-zero) vector outright; the linear maps
    // accept it (the zero vector has a perfectly good linear image).
    for method in SketchMethod::all() {
        let sketcher = AnySketcher::for_budget(method, BUDGET, SEED).expect("budget fits");
        let empty = sketcher.sketch(&SparseVector::new());
        match method {
            SketchMethod::Jl | SketchMethod::CountSketch => {
                assert!(empty.is_ok(), "{method:?}: linear sketch of 0 is defined");
            }
            _ => assert!(
                matches!(
                    empty,
                    Err(SketchError::Vector(_) | SketchError::EmptySketch)
                ),
                "{method:?}: sampling methods must reject the empty vector"
            ),
        }
    }

    // At the column layer the guarantee is uniform: all-zero and zero-row columns are
    // typed `EmptyColumn` errors for every method, and unknown columns are data
    // errors.
    let zero_column = Table::new(
        "z",
        vec![1, 2, 3],
        vec![Column::new("v", vec![0.0, 0.0, 0.0])],
    )
    .expect("well-formed table");
    let no_rows =
        Table::new("e", vec![], vec![Column::new("v", vec![])]).expect("well-formed table");
    for method in SketchMethod::all() {
        let est =
            JoinEstimator::new(AnySketcher::for_budget(method, BUDGET, SEED).expect("budget fits"));
        assert!(
            matches!(
                est.sketch_column(&zero_column, "v"),
                Err(JoinError::EmptyColumn { .. })
            ),
            "{method:?}: all-zero column must be a typed EmptyColumn error"
        );
        assert!(
            matches!(
                est.sketch_column(&no_rows, "v"),
                Err(JoinError::EmptyColumn { .. })
            ),
            "{method:?}: zero-row column must be a typed EmptyColumn error"
        );
        assert!(
            matches!(
                est.sketch_column(&zero_column, "missing"),
                Err(JoinError::Data(_))
            ),
            "{method:?}: unknown column must be a typed data error"
        );
        // The partitioned path gives the same typed errors.
        assert!(
            matches!(
                est.sketch_column_partitioned(&zero_column, "v", 2),
                Err(JoinError::EmptyColumn { .. })
            ),
            "{method:?}: partitioned path must agree on EmptyColumn"
        );
    }
}

/// Decoding rejects blobs of the wrong sketch type with a typed error, for every
/// ordered pair of methods.
#[test]
fn any_sketch_decode_is_self_describing_and_validated() {
    let (a, _) = vectors();
    let sketches: Vec<(SketchMethod, AnySketch)> = SketchMethod::all()
        .into_iter()
        .map(|m| {
            let s = AnySketcher::for_budget(m, BUDGET, SEED).expect("budget fits");
            (m, s.sketch(&a).expect("sketches"))
        })
        .collect();
    for (method, sketch) in &sketches {
        let bytes = sketch.to_bytes();
        // Self-describing: decoding lands on the same variant.
        let decoded = AnySketch::from_bytes(&bytes).expect("decodes");
        assert_eq!(&decoded, sketch, "{method:?}");
        // Corruption is typed at every truncation point.
        for cut in [0, 3, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    AnySketch::from_bytes(&bytes[..cut]),
                    Err(SketchError::Corrupt { .. })
                ),
                "{method:?}: truncation at {cut} must be typed corruption"
            );
        }
        let mut bad_tag = bytes.to_vec();
        bad_tag[5] = 99;
        assert!(
            AnySketch::from_bytes(&bad_tag).is_err(),
            "{method:?}: unknown tag must fail"
        );
    }
}
