//! Cross-crate integration tests: the full pipeline from workload generation through
//! sketching to estimation, exercised through the public facade (`ipsketch::*`) exactly
//! as a downstream user would.

use ipsketch::core::method::{AnySketcher, SketchMethod};
use ipsketch::core::serialize::BinarySketch;
use ipsketch::core::traits::{MergeableSketcher, Sketch, Sketcher};
use ipsketch::core::wmh::{WeightedMinHashSketch, WeightedMinHasher};
use ipsketch::data::{DataLakeConfig, SyntheticPairConfig, Table};
use ipsketch::join::{exact_join_statistics, JoinEstimator, SketchIndex};
use ipsketch::vector::{inner_product, BoundTerms, SparseVector};

/// The headline claim, end to end: on sparse vectors with small support overlap,
/// Weighted MinHash achieves lower error than the linear sketches at equal storage.
#[test]
fn wmh_beats_linear_sketching_on_sparse_low_overlap_vectors() {
    let config = SyntheticPairConfig {
        dimension: 8_000,
        nonzeros: 1_600,
        overlap: 0.02,
        ..SyntheticPairConfig::default()
    };
    let storage = 300.0;
    let trials = 6;
    let mut total_error = std::collections::HashMap::new();
    for trial in 0..trials {
        let pair = config.generate(1_000 + trial).unwrap();
        let exact = inner_product(&pair.a, &pair.b);
        let scale = pair.a.norm() * pair.b.norm();
        for method in [
            SketchMethod::WeightedMinHash,
            SketchMethod::Jl,
            SketchMethod::CountSketch,
        ] {
            let sketcher = AnySketcher::for_budget(method, storage, 77 + trial).unwrap();
            let sa = sketcher.sketch(&pair.a).unwrap();
            let sb = sketcher.sketch(&pair.b).unwrap();
            let est = sketcher.estimate_inner_product(&sa, &sb).unwrap();
            *total_error.entry(method.label()).or_insert(0.0) += (est - exact).abs() / scale;
        }
    }
    let wmh = total_error["WMH"];
    assert!(
        wmh < total_error["JL"],
        "WMH ({wmh}) should beat JL ({})",
        total_error["JL"]
    );
    assert!(
        wmh < total_error["CS"],
        "WMH ({wmh}) should beat CountSketch ({})",
        total_error["CS"]
    );
}

/// Theorem 2's error bound holds empirically with a comfortable constant across many
/// random pairs, and the bound itself is far below the Fact-1 bound for sparse pairs.
#[test]
fn theorem_2_bound_holds_empirically() {
    let config = SyntheticPairConfig {
        dimension: 5_000,
        nonzeros: 1_000,
        overlap: 0.05,
        ..SyntheticPairConfig::default()
    };
    let samples = 400;
    let epsilon = 1.0 / (samples as f64).sqrt();
    let mut violations = 0;
    let trials = 10;
    for trial in 0..trials {
        let pair = config.generate(trial).unwrap();
        let sketcher = WeightedMinHasher::new(samples, trial ^ 0xBEEF, 1 << 24).unwrap();
        let sa = sketcher.sketch(&pair.a).unwrap();
        let sb = sketcher.sketch(&pair.b).unwrap();
        let est = sketcher.estimate_inner_product(&sa, &sb).unwrap();
        let error = (est - inner_product(&pair.a, &pair.b)).abs();
        let terms = BoundTerms::compute(&pair.a, &pair.b);
        // Allow a constant factor of 5 on the O(1/sqrt(m)) guarantee: the estimator is
        // heavy-tailed (a single mismatched-outlier collision can dominate a trial), so
        // a small number of excursions beyond the constant-probability bound is expected.
        if error > 5.0 * epsilon * terms.weighted_minhash {
            violations += 1;
        }
        assert!(terms.weighted_minhash < 0.5 * terms.linear);
    }
    assert!(
        violations <= 2,
        "{violations} of {trials} trials violated 5x the Theorem-2 bound"
    );
}

/// Sketches survive serialization and are still usable for estimation afterwards —
/// the "precompute once, query later" dataset-search workflow.
#[test]
fn serialized_sketches_round_trip_and_estimate() {
    let a = SparseVector::from_pairs((0..500u64).map(|i| (i * 3, 1.0 + (i % 7) as f64))).unwrap();
    let b =
        SparseVector::from_pairs((600..1_100u64).map(|i| (i * 3 % 2_000, 0.5 + (i % 5) as f64)))
            .unwrap();
    let sketcher = WeightedMinHasher::new(256, 9, 1 << 22).unwrap();
    let sa = sketcher.sketch(&a).unwrap();
    let sb = sketcher.sketch(&b).unwrap();
    let direct = sketcher.estimate_inner_product(&sa, &sb).unwrap();

    let decoded_a = WeightedMinHashSketch::from_bytes(&sa.to_bytes()).unwrap();
    let decoded_b = WeightedMinHashSketch::from_bytes(&sb.to_bytes()).unwrap();
    let from_disk = sketcher
        .estimate_inner_product(&decoded_a, &decoded_b)
        .unwrap();
    assert_eq!(direct.to_bits(), from_disk.to_bits());
    // Encoded size is proportional to the sample count (sanity check on the format).
    assert!(sa.to_bytes().len() < 300 * 24);
}

/// The dataset-search pipeline: exact statistics from a real join vs. statistics
/// estimated purely from sketches, across a generated data lake.
#[test]
fn join_statistics_estimation_tracks_ground_truth_across_a_lake() {
    let lake = DataLakeConfig {
        tables: 6,
        columns_per_table: 2,
        min_rows: 400,
        max_rows: 900,
        key_universe: 2_000,
    }
    .generate(31)
    .unwrap();
    let estimator = JoinEstimator::weighted_minhash(500.0, 3).unwrap();
    let mut checked = 0;
    for i in 0..lake.tables().len() {
        for j in (i + 1)..lake.tables().len() {
            let ta = &lake.tables()[i];
            let tb = &lake.tables()[j];
            let ca = &ta.columns()[0].name;
            let cb = &tb.columns()[0].name;
            let exact = exact_join_statistics(ta, ca, tb, cb).unwrap();
            if exact.join_size < 100.0 {
                continue;
            }
            let sa = estimator.sketch_column(ta, ca).unwrap();
            let sb = estimator.sketch_column(tb, cb).unwrap();
            let approx = estimator.estimate(&sa, &sb).unwrap();
            assert!(
                (approx.join_size - exact.join_size).abs() / exact.join_size < 0.4,
                "join size estimate {} too far from {}",
                approx.join_size,
                exact.join_size
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 3,
        "expected several overlapping table pairs, got {checked}"
    );
}

/// The sketch index finds a planted joinable-and-correlated table in a lake of
/// distractors, querying only sketches.
#[test]
fn sketch_index_finds_planted_related_table() {
    let days: Vec<u64> = (0..400).collect();
    let signal: Vec<f64> = days
        .iter()
        .map(|&d| ((d * 13 % 101) as f64) - 50.0)
        .collect();
    let query_values: Vec<f64> = signal.iter().map(|s| 3.0 * s + 10.0).collect();
    let query_table = Table::new(
        "query",
        days.clone(),
        vec![ipsketch::data::Column::new("metric", query_values)],
    )
    .unwrap();
    let planted = Table::new(
        "planted",
        days,
        vec![ipsketch::data::Column::new("signal", signal)],
    )
    .unwrap();
    let lake = DataLakeConfig {
        tables: 12,
        columns_per_table: 2,
        min_rows: 200,
        max_rows: 600,
        key_universe: 3_000,
    }
    .generate(8)
    .unwrap();

    let mut index = SketchIndex::new(JoinEstimator::weighted_minhash(400.0, 5).unwrap());
    index.insert_table(&planted).unwrap();
    for table in lake.tables() {
        index.insert_table(table).unwrap();
    }
    let query = index.sketch_query(&query_table, "metric").unwrap();
    let top = index.top_k_correlated(&query, 3, 100.0).unwrap();
    assert!(!top.is_empty());
    assert_eq!(top[0].id.table, "planted");
    assert!(top[0].estimated_correlation.abs() > 0.6);
}

/// The distributed-sketching story end to end: columns sketched as independently-built,
/// merged row-chunks produce the same join-statistic estimates as one-shot sketching —
/// bit-exact sketches for the pure sampling methods, identical up to floating-point
/// addition order for the linear sketches, and within grid-rounding tolerance for WMH.
#[test]
fn partitioned_sketching_matches_one_shot_across_methods() {
    let lake = DataLakeConfig {
        tables: 4,
        columns_per_table: 2,
        min_rows: 400,
        max_rows: 800,
        key_universe: 1_500,
    }
    .generate(55)
    .unwrap();
    let ta = &lake.tables()[0];
    let tb = &lake.tables()[1];
    let col_a = ta.columns()[0].name.clone();
    let col_b = tb.columns()[0].name.clone();
    for method in [
        SketchMethod::Jl,
        SketchMethod::CountSketch,
        SketchMethod::MinHash,
        SketchMethod::Kmv,
        SketchMethod::WeightedMinHash,
        SketchMethod::Icws,
    ] {
        let est = JoinEstimator::new(AnySketcher::for_budget(method, 400.0, 23).unwrap());
        let one_a = est.sketch_column(ta, &col_a).unwrap();
        let one_b = est.sketch_column(tb, &col_b).unwrap();
        for partitions in [2, 7] {
            let part_a = est
                .sketch_column_partitioned(ta, &col_a, partitions)
                .unwrap();
            let part_b = est
                .sketch_column_partitioned(tb, &col_b, partitions)
                .unwrap();
            if matches!(
                method,
                SketchMethod::MinHash | SketchMethod::Kmv | SketchMethod::Icws
            ) {
                assert_eq!(part_a, one_a, "{method:?}/{partitions}");
            }
            let from_one = est.estimate(&one_a, &one_b).unwrap();
            let from_parts = est.estimate(&part_a, &part_b).unwrap();
            let tolerance = match method {
                SketchMethod::WeightedMinHash => 0.15 * from_one.join_size.max(100.0),
                _ => 1e-6 * (1.0 + from_one.join_size.abs()),
            };
            assert!(
                (from_parts.join_size - from_one.join_size).abs() <= tolerance,
                "{method:?}/{partitions}: partitioned join size {} vs one-shot {}",
                from_parts.join_size,
                from_one.join_size
            );
        }
    }
}

/// Streaming construction through the public facade: a WMH sketch built one coordinate
/// at a time under the announced-norm protocol estimates like its one-shot twin.
#[test]
fn streaming_wmh_updates_estimate_like_one_shot() {
    let a = SparseVector::from_pairs((0..400u64).map(|i| (i, 1.0 + (i % 9) as f64))).unwrap();
    let b = SparseVector::from_pairs((200..600u64).map(|i| (i, 0.5 + (i % 6) as f64))).unwrap();
    let sketcher = WeightedMinHasher::new(256, 41, 1 << 22).unwrap();
    let mut streamed_a = sketcher.empty_sketch_with_norm(a.norm()).unwrap();
    for (index, value) in a.iter() {
        sketcher.update(&mut streamed_a, index, value).unwrap();
    }
    let one_b = sketcher.sketch(&b).unwrap();
    let est_streamed = sketcher
        .estimate_inner_product(&streamed_a, &one_b)
        .unwrap();
    let exact = inner_product(&a, &b);
    let scale = a.norm() * b.norm();
    assert!(
        (est_streamed - exact).abs() < 0.2 * scale,
        "streamed estimate {est_streamed} vs exact {exact} (scale {scale})"
    );
}

/// All methods respect a shared storage budget and produce finite estimates across the
/// three workload generators (synthetic, data lake, text).
#[test]
fn every_method_handles_every_workload_within_budget() {
    let budget = 250.0;
    // Synthetic.
    let pair = SyntheticPairConfig {
        dimension: 3_000,
        nonzeros: 600,
        ..SyntheticPairConfig::default()
    }
    .generate(4)
    .unwrap();
    // Data lake columns.
    let lake = DataLakeConfig {
        tables: 2,
        columns_per_table: 1,
        min_rows: 300,
        max_rows: 400,
        key_universe: 900,
    }
    .generate(4)
    .unwrap();
    let lake_a = lake.column_vector(ipsketch::data::worldbank::ColumnRef {
        table: 0,
        column: 0,
    });
    let lake_b = lake.column_vector(ipsketch::data::worldbank::ColumnRef {
        table: 1,
        column: 0,
    });
    // Text.
    let corpus = ipsketch::data::text::CorpusConfig {
        documents: 30,
        vocabulary: 800,
        topics: 3,
        ..ipsketch::data::text::CorpusConfig::default()
    }
    .generate(4)
    .unwrap();
    let tokenized: Vec<Vec<String>> = corpus.documents.iter().map(|d| d.tokens.clone()).collect();
    let vectorizer = ipsketch::data::tfidf::TfIdfVectorizer::fit(
        &tokenized,
        ipsketch::data::tfidf::TfIdfConfig::default(),
    )
    .unwrap();
    let docs = vectorizer.vectorize_all(&tokenized);

    let workloads = [
        ("synthetic", &pair.a, &pair.b),
        ("lake", &lake_a, &lake_b),
        ("text", &docs[0], &docs[1]),
    ];
    for (name, a, b) in workloads {
        let scale = a.norm() * b.norm();
        for method in SketchMethod::all() {
            let sketcher = AnySketcher::for_budget(method, budget, 13).unwrap();
            let sa = sketcher.sketch(a).unwrap();
            let sb = sketcher.sketch(b).unwrap();
            assert!(
                sa.storage_doubles() <= budget + 1e-9,
                "{name}/{method:?} exceeded budget"
            );
            let est = sketcher.estimate_inner_product(&sa, &sb).unwrap();
            assert!(
                est.is_finite(),
                "{name}/{method:?} produced a non-finite estimate"
            );
            assert!(
                (est - inner_product(a, b)).abs() <= 1.5 * scale.max(1.0),
                "{name}/{method:?} estimate {est} is wildly off"
            );
        }
    }
}
