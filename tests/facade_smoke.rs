//! Workspace-level smoke test: every crate re-exported by the `ipsketch`
//! facade is constructible and usable through the root crate alone, and the
//! re-exports agree with the underlying crates' types.

use ipsketch::bench::runner::parallel_map;
use ipsketch::core::method::{AnySketcher, SketchMethod};
use ipsketch::core::traits::Sketcher;
use ipsketch::data::synthetic::SyntheticPairConfig;
use ipsketch::data::tables::Table;
use ipsketch::hash::mix::splitmix64;
use ipsketch::join::exact::exact_join_statistics;
use ipsketch::vector::SparseVector;

#[test]
fn hash_reexport_is_usable() {
    assert_eq!(splitmix64(42), ipsketch_hash::mix::splitmix64(42));
}

#[test]
fn vector_reexport_is_usable() {
    let v = SparseVector::from_pairs([(1u64, 2.0), (5, -3.0)]).unwrap();
    assert_eq!(v.nnz(), 2);
    // The facade path and the direct crate path name the same type.
    let direct: ipsketch_vector::SparseVector = v;
    assert_eq!(direct.nnz(), 2);
}

#[test]
fn core_reexport_sketches_through_the_facade() {
    let a = SparseVector::from_pairs((0..32u64).map(|i| (i, 1.0 + i as f64))).unwrap();
    for method in SketchMethod::all() {
        let sketcher = AnySketcher::for_budget(method, 64.0, 7).unwrap();
        let sketch = sketcher.sketch(&a).unwrap();
        let estimate = sketcher.estimate_inner_product(&sketch, &sketch).unwrap();
        assert!(
            estimate.is_finite(),
            "{method:?} produced a non-finite self estimate"
        );
    }
}

#[test]
fn data_reexport_generates_vectors() {
    let pair = SyntheticPairConfig::with_overlap(0.5).generate(3).unwrap();
    assert!(pair.a.nnz() > 0 && pair.b.nnz() > 0);
}

#[test]
fn join_reexport_computes_statistics() {
    let (table_a, table_b) = Table::figure_2_tables();
    let column_a = table_a.columns()[0].name.clone();
    let column_b = table_b.columns()[0].name.clone();
    let stats = exact_join_statistics(&table_a, &column_a, &table_b, &column_b).unwrap();
    assert!(stats.join_size > 0.0);
}

#[test]
fn bench_reexport_runs_the_parallel_runner() {
    let squares = parallel_map(&[1u64, 2, 3, 4], 2, |x| x * x);
    assert_eq!(squares, vec![1, 4, 9, 16]);
}
