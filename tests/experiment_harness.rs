//! Integration tests for the experiment harness: every figure/table driver runs end to
//! end at quick scale and reproduces the paper's qualitative findings.

use ipsketch::bench::experiments::{
    extensions, fig4, fig5, fig6, hash_sweep, l_sweep, storage, table1, Scale,
};
use ipsketch::core::method::SketchMethod;
use ipsketch::data::SyntheticPairConfig;

#[test]
fn figure_4_quick_run_reproduces_the_crossover_story() {
    let mut config = fig4::Fig4Config::for_scale(Scale::Quick);
    config.trials = 3;
    config.storage_sizes = vec![200, 400];
    config.data = SyntheticPairConfig {
        dimension: 3_000,
        nonzeros: 600,
        ..SyntheticPairConfig::default()
    };
    let cells = fig4::run(&config);
    assert_eq!(
        cells.len(),
        config.overlaps.len() * config.storage_sizes.len() * config.methods.len()
    );
    // WMH wins at 1% overlap / storage 400.
    let error = |method, overlap| {
        cells
            .iter()
            .find(|c| c.method == method && c.overlap == overlap && c.storage == 400)
            .unwrap()
            .mean_error
    };
    assert!(error(SketchMethod::WeightedMinHash, 0.01) < error(SketchMethod::Jl, 0.01));
    // And the WMH-over-JL advantage shrinks by 50% overlap.
    let advantage_low = error(SketchMethod::Jl, 0.01) / error(SketchMethod::WeightedMinHash, 0.01);
    let advantage_high = error(SketchMethod::Jl, 0.5) / error(SketchMethod::WeightedMinHash, 0.5);
    assert!(advantage_low > advantage_high);
}

#[test]
fn figure_5_quick_run_produces_populated_winning_tables() {
    let mut config = fig5::Fig5Config::for_scale(Scale::Quick);
    config.pairs = 150;
    let result = fig5::run(&config);
    assert_eq!(result.pairs, 150);
    let populated: usize = result.cells.iter().map(|c| c.pairs).sum();
    assert_eq!(populated, 150);
    // Overall (averaged over all pairs) WMH should not lose to JL on this lake.
    let mut total = 0.0;
    for cell in &result.cells {
        total += cell.wmh_minus_jl * cell.pairs as f64;
    }
    assert!(
        total / 150.0 < 0.01,
        "overall WMH-JL difference {}",
        total / 150.0
    );
}

#[test]
fn figure_6_quick_run_shows_sampling_sketches_winning_on_text() {
    let mut config = fig6::Fig6Config::for_scale(Scale::Quick);
    config.corpus.documents = 60;
    config.max_pairs = 400;
    config.storage_sizes = vec![200];
    let cells = fig6::run(&config);
    let error = |method| {
        cells
            .iter()
            .find(|c| !c.long_documents_only && c.method == method)
            .unwrap()
            .mean_error
    };
    assert!(error(SketchMethod::WeightedMinHash) < error(SketchMethod::Jl));
    // Unweighted MinHash is competitive on TF-IDF vectors but its advantage over JL is
    // not guaranteed at this reduced corpus size; only require that it is not far worse.
    assert!(error(SketchMethod::MinHash) < 2.0 * error(SketchMethod::Jl));
}

#[test]
fn table_1_quick_run_orders_the_bounds_correctly() {
    let config = table1::Table1Config {
        trials: 4,
        samples: 256,
        data: SyntheticPairConfig {
            dimension: 3_000,
            nonzeros: 600,
            ..SyntheticPairConfig::default()
        },
        ..table1::Table1Config::for_scale(Scale::Quick)
    };
    let rows = table1::run(&config);
    let bound = |method| rows.iter().find(|r| r.method == method).unwrap().bound_term;
    // Table 1's ordering: WMH bound <= linear bound; for these real-valued vectors with
    // outliers the unweighted MinHash bound (c²-scaled) is the loosest.
    assert!(bound(SketchMethod::WeightedMinHash) <= bound(SketchMethod::Jl) * 1.0001);
    assert!(bound(SketchMethod::MinHash) > bound(SketchMethod::WeightedMinHash));
}

#[test]
fn storage_accounting_grants_the_paper_ratios() {
    let rows = storage::run(&[400], 2);
    let samples = |method| rows.iter().find(|r| r.method == method).unwrap().samples;
    assert_eq!(samples(SketchMethod::Jl), 400);
    assert_eq!(samples(SketchMethod::MinHash), 266);
    assert_eq!(samples(SketchMethod::CountSketch), 80 * 5);
    assert!(rows.iter().all(|r| r.utilization <= 1.0 + 1e-9));
}

#[test]
fn ablations_run_at_quick_scale() {
    // L-sweep: error at generous L is no worse than at L = nnz/10.
    let l_config = l_sweep::LSweepConfig {
        trials: 2,
        ..l_sweep::LSweepConfig::for_scale(Scale::Quick)
    };
    let points = l_sweep::run(&l_config);
    assert_eq!(points.len(), l_config.discretizations.len());
    assert!(points.last().unwrap().mean_error <= points[0].mean_error + 1e-9);

    // Hash sweep: all families give comparable error (a loose factor — with only a
    // handful of trials the between-family noise is substantial).
    let h_config = hash_sweep::HashSweepConfig {
        trials: 4,
        ..hash_sweep::HashSweepConfig::for_scale(Scale::Quick)
    };
    let rows = hash_sweep::run(&h_config);
    let min = rows
        .iter()
        .map(|r| r.mean_error)
        .fold(f64::INFINITY, f64::min);
    let max = rows.iter().map(|r| r.mean_error).fold(0.0, f64::max);
    assert!(
        max < 5.0 * min,
        "hash families disagree too much: {min} vs {max}"
    );

    // Extensions: SimHash and ICWS produce finite errors alongside the baselines.
    let mut e_config = extensions::config_for_scale(Scale::Quick);
    e_config.overlaps = vec![0.05];
    e_config.storage_sizes = vec![200];
    e_config.trials = 2;
    e_config.data = SyntheticPairConfig {
        dimension: 2_000,
        nonzeros: 400,
        ..SyntheticPairConfig::default()
    };
    let cells = extensions::run(&e_config);
    assert_eq!(cells.len(), SketchMethod::all().len());
    assert!(cells.iter().all(|c| c.mean_error.is_finite()));
}
