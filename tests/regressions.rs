//! Regression locks for behavior fixed in PR 2, so later refactors cannot quietly
//! reintroduce the bugs:
//!
//! * **KMV under-filled sketches estimate exactly.**  When both sketches retain their
//!   whole supports (fewer than `k` distinct hashes in the union), the estimator has
//!   enumerated every element — it must return the exact inner product, not the biased
//!   `(K−1)/τ` order-statistic extrapolation.
//! * **All-infinity MinHash/WMH partials are rejected.**  A streaming partial that was
//!   never updated has `+∞` in every hash slot; estimating with it must be a typed
//!   [`SketchError::EmptySketch`], never a silent `0.0` (which would rank real columns
//!   below garbage) or an opaque parameter error from the union estimator.

use ipsketch::core::kmv::KmvSketcher;
use ipsketch::core::method::{AnySketch, AnySketcher, SketchMethod};
use ipsketch::core::minhash::MinHasher;
use ipsketch::core::serialize::BinarySketch;
use ipsketch::core::traits::{MergeableSketcher, Sketcher};
use ipsketch::core::wmh::WeightedMinHasher;
use ipsketch::core::SketchError;
use ipsketch::vector::{inner_product, SparseVector};

#[test]
fn kmv_under_filled_sketches_return_the_exact_inner_product() {
    // Supports of 3 against capacity 64: both sketches are exhaustive samples.
    let a_vec = SparseVector::from_pairs([(1, 2.0), (5, 3.0), (9, -1.0)]).expect("finite");
    let b_vec = SparseVector::from_pairs([(5, 4.0), (9, 2.0), (20, 7.0)]).expect("finite");
    let exact = inner_product(&a_vec, &b_vec); // 3·4 + (−1)·2 = 10

    let sketcher = KmvSketcher::new(64, 9).expect("valid parameters");
    let sa = sketcher.sketch(&a_vec).expect("sketches");
    let sb = sketcher.sketch(&b_vec).expect("sketches");
    let estimate = sketcher
        .estimate_inner_product(&sa, &sb)
        .expect("estimates");
    assert_eq!(
        estimate, exact,
        "under-filled KMV must enumerate exactly, not extrapolate"
    );

    // The same lock holds through the dynamic front end and across every seed (the
    // old (K−1)/τ path was seed-dependent noise; exactness is not).
    for seed in 0..20 {
        let any = AnySketcher::for_budget(SketchMethod::Kmv, 400.0, seed).expect("budget fits");
        let sa = any.sketch(&a_vec).expect("sketches");
        let sb = any.sketch(&b_vec).expect("sketches");
        assert_eq!(
            any.estimate_inner_product(&sa, &sb).expect("estimates"),
            exact,
            "seed {seed}"
        );
    }
}

#[test]
fn kmv_disjoint_under_filled_sketches_estimate_zero_not_error() {
    let sketcher = KmvSketcher::new(64, 3).expect("valid parameters");
    let sa = sketcher
        .sketch(&SparseVector::indicator(0..5u64))
        .expect("sketches");
    let sb = sketcher
        .sketch(&SparseVector::indicator(100..103u64))
        .expect("sketches");
    assert_eq!(
        sketcher
            .estimate_inner_product(&sa, &sb)
            .expect("estimates"),
        0.0,
        "tiny disjoint supports are an exact empty intersection"
    );
}

#[test]
fn minhash_all_infinity_partials_are_rejected_not_estimated() {
    let sketcher = MinHasher::new(16, 7).expect("valid parameters");
    let real = sketcher
        .sketch(&SparseVector::from_pairs((0..40u64).map(|i| (i, 1.0 + i as f64))).expect("finite"))
        .expect("sketches");
    let never_updated = sketcher.empty_sketch();

    // From either side, and against itself.
    assert_eq!(
        sketcher.estimate_inner_product(&never_updated, &real),
        Err(SketchError::EmptySketch)
    );
    assert_eq!(
        sketcher.estimate_inner_product(&real, &never_updated),
        Err(SketchError::EmptySketch)
    );
    assert_eq!(
        sketcher.estimate_inner_product(&never_updated, &never_updated),
        Err(SketchError::EmptySketch)
    );

    // The rejection survives a serialization round trip: +∞ hash slots are encoded
    // exactly, so a persisted never-updated partial is still rejected after reload.
    let reloaded = match AnySketch::from_bytes(&AnySketch::MinHash(never_updated).to_bytes()) {
        Ok(AnySketch::MinHash(s)) => s,
        other => panic!("expected a MinHash sketch back, got {other:?}"),
    };
    assert_eq!(
        sketcher.estimate_inner_product(&reloaded, &real),
        Err(SketchError::EmptySketch)
    );
}

#[test]
fn wmh_all_infinity_partials_are_rejected_not_estimated() {
    let sketcher = WeightedMinHasher::new(16, 7, 1 << 12).expect("valid parameters");
    let vector = SparseVector::from_pairs((0..40u64).map(|i| (i, 1.0 + i as f64))).expect("finite");
    let real = sketcher.sketch(&vector).expect("sketches");

    // A trait-level empty sketch (no announced norm, all-∞ hashes).
    let never_updated = sketcher.empty_sketch();
    assert_eq!(
        sketcher.estimate_inner_product(&never_updated, &real),
        Err(SketchError::EmptySketch)
    );
    assert_eq!(
        sketcher.estimate_inner_product(&real, &never_updated),
        Err(SketchError::EmptySketch)
    );

    // An announced-norm partial that was never updated is equally rejected.
    let empty_partial = sketcher
        .empty_sketch_with_norm(vector.norm())
        .expect("positive norm");
    assert_eq!(
        sketcher.estimate_inner_product(&empty_partial, &real),
        Err(SketchError::EmptySketch)
    );

    // And a partition whose entries all round below the 1/L grid (L far too small for
    // the spread of values) is rejected rather than estimated as zero.
    let tiny_l = WeightedMinHasher::new(8, 7, 2).expect("valid parameters");
    let spread = SparseVector::from_pairs((0..64u64).map(|i| (i, 1.0))).expect("finite");
    let below_grid = tiny_l
        .sketch_partition(
            &SparseVector::from_pairs([(0, 1.0)]).expect("finite"),
            spread.norm(),
        )
        .expect("partition sketches");
    let real_tiny = tiny_l.sketch(&spread).expect("sketches");
    assert_eq!(
        tiny_l.estimate_inner_product(&below_grid, &real_tiny),
        Err(SketchError::EmptySketch)
    );
}
